//! Offline stand-in for `serde_json`: renders and parses the vendored
//! serde's [`Value`] data model as real JSON text. Covers the calls the
//! workspace makes — [`to_string`], [`to_string_pretty`], [`from_str`] —
//! with strict RFC 8259 syntax (the PAWS tests round-trip through it, so
//! the wire format stays honest).

#![forbid(unsafe_code)]

pub use serde::Error;
pub use serde::Value;

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON (two spaces, like upstream).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; upstream errors, we emit null like JS.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values print without a fraction ("38", not "38.0"),
        // matching serde_json's integer formatting.
        let _ = {
            use std::fmt::Write as _;
            write!(out, "{}", n as i64)
        };
    } else {
        let _ = {
            use std::fmt::Write as _;
            write!(out, "{n}")
        };
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected , or }} in object, got {other:?}"
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected , or ] in array, got {other:?}"
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        let text = std::str::from_utf8(self.bytes).map_err(|_| Error::msg("invalid UTF-8"))?;
        let mut chars = text[self.pos..].char_indices();
        while let Some((off, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += off + 1;
                    return Ok(s);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => s.push('"'),
                    Some((_, '\\')) => s.push('\\'),
                    Some((_, '/')) => s.push('/'),
                    Some((_, 'n')) => s.push('\n'),
                    Some((_, 'r')) => s.push('\r'),
                    Some((_, 't')) => s.push('\t'),
                    Some((_, 'b')) => s.push('\u{8}'),
                    Some((_, 'f')) => s.push('\u{c}'),
                    Some((u_off, 'u')) => {
                        let start = self.pos + u_off + 1;
                        let hex = text
                            .get(start..start + 4)
                            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                        // Surrogate pairs are not needed by our writers.
                        s.push(
                            char::from_u32(code).ok_or_else(|| Error::msg("bad \\u code point"))?,
                        );
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    other => {
                        return Err(Error::msg(format!("bad escape {other:?}")));
                    }
                },
                c => s.push(c),
            }
        }
        Err(Error::msg("unterminated string"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| Error::msg(format!("bad number at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn numbers_print_like_serde_json() {
        assert_eq!(to_string(&38u32).unwrap(), "38");
        assert_eq!(to_string(&-2i64).unwrap(), "-2");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1");
    }

    #[test]
    fn maps_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("alpha".to_string(), 1.25f64);
        m.insert("beta".to_string(), 2.0f64);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"alpha\":1.25,\"beta\":2}");
        let back: BTreeMap<String, f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_is_indented() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 3f64);
        let pretty = to_string_pretty(&m).unwrap();
        assert_eq!(pretty, "{\n  \"k\": 3\n}");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "a \"quoted\"\nline\\end".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn vectors_and_options_round_trip() {
        let v = vec![1u32, 2, 3];
        let back: Vec<u32> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let none: Option<u32> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<f64>("[").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<f64>("nope").is_err());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [std::f64::consts::PI, 1e-17, 123456.789, -0.125] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back, x);
        }
    }
}
