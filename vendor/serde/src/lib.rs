//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy visitor framework; this workspace only
//! ever round-trips small config/protocol structs through `serde_json`
//! strings, so the stand-in collapses the data model to one JSON-shaped
//! [`Value`] tree. `#[derive(Serialize, Deserialize)]` (re-exported from
//! the vendored `serde_derive`) generates `to_value`/`from_value` for
//! plain structs and unit enums — exactly the shapes the workspace
//! defines.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the single data model of the stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; u64/i64 round-trip exactly up to
    /// 2^53, which covers every integer the workspace serializes).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with ordered keys.
    Object(BTreeMap<String, Value>),
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build an error.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the JSON data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the JSON data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_num {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::Number(*self as f64)
                }
            }
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, Error> {
                    match v {
                        Value::Number(n) => Ok(*n as $t),
                        other => Err(Error::msg(format!(
                            "expected number, got {other:?}"
                        ))),
                    }
                }
            }
        )+
    };
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
