//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach a registry, so the workspace
//! vendors the *API subset it actually uses* — `Rng`, `SeedableRng`,
//! `rngs::StdRng`, `seq::SliceRandom` — implemented over xoshiro256++
//! seeded through SplitMix64. Draw *values* differ from upstream rand's
//! ChaCha-backed `StdRng`, but every property the simulator relies on
//! holds: deterministic streams from a seed, independent streams from
//! independent seeds, uniform output.

#![forbid(unsafe_code)]

/// Low-level entropy source: the object-safe core every generator
/// implements (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from a generator (stands in for
/// `Standard`-distribution sampling, i.e. `rng.gen::<T>()`).
pub trait Uniformable {
    /// Draw a uniform value.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $via:ident),+ $(,)?) => {
        $(impl Uniformable for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        })+
    };
}
uniform_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
             usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
             i64 => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64);

impl Uniformable for bool {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Uniformable for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's convention).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniformable for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A half-open or inclusive range a value can be drawn from
/// (stands in for `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),+ $(,)?) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start + (bounded_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    if span == u64::MAX {
                        return <$t as Uniformable>::sample_uniform(rng);
                    }
                    lo + (bounded_u64(rng, span + 1) as $t)
                }
            }
        )+
    };
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw in `[0, n)` by rejection on the widening
/// multiply (Lemire's method).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n || lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! range_float {
    ($($t:ty),+ $(,)?) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let u = <$t as Uniformable>::sample_uniform(rng);
                    let v = self.start + (self.end - self.start) * u;
                    // Floating rounding can land exactly on `end`; nudge back
                    // inside the half-open interval.
                    if v >= self.end {
                        <$t>::max(self.start, self.end - (self.end - self.start) * <$t>::EPSILON)
                    } else {
                        v
                    }
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let u = <$t as Uniformable>::sample_uniform(rng);
                    lo + (hi - lo) * u
                }
            }
        )+
    };
}
range_float!(f32, f64);

/// The user-facing generator interface (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Uniformable>(&mut self) -> T {
        T::sample_uniform(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion (rand's own
    /// convention for `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    /// Fast, well-distributed, and (unlike upstream's ChaCha12) trivially
    /// auditable — cryptographic strength is irrelevant to a simulator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; perturb it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = r.gen_range(3u32..17);
            assert!((3..17).contains(&a));
            let b = r.gen_range(0u32..=15);
            assert!(b <= 15);
            let c = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&c));
            let d = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert!(v.choose(&mut r).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(15);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }
}
