//! Offline stand-in for `proptest`.
//!
//! The real proptest shrinks failing inputs and persists regression
//! seeds; this stand-in keeps the part the workspace's tests rely on —
//! running each property over a spread of deterministically generated
//! random inputs — with the same source-level API: the `proptest!`
//! macro (`pattern in strategy` arguments), `prop_assert!` /
//! `prop_assert_eq!`, the [`Strategy`] trait with `prop_map`, range and
//! tuple strategies, `any::<bool>()`, and `collection::vec`. Failing
//! cases report their case index and seed instead of a shrunk value.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and basic combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategies are used by shared reference inside tuples/vecs.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// The combinator returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),+ $(,)?) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(
                            self.start < self.end,
                            "empty integer range strategy"
                        );
                        let width = (self.end as i128 - self.start as i128) as u128;
                        let draw = rng.below_u128(width);
                        (self.start as i128 + draw as i128) as $t
                    }
                }
            )+
        };
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),+ $(,)?) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty float range strategy");
                        let unit = rng.unit_f64() as $t;
                        let x = self.start + (self.end - self.start) * unit;
                        // Guard the end-exclusive contract against rounding.
                        if x >= self.end {
                            <$t>::from_bits(self.end.to_bits() - 1)
                        } else {
                            x
                        }
                    }
                }
            )+
        };
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($(($($s:ident / $idx:tt),+))+) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn sample(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.sample(rng),)+)
                    }
                }
            )+
        };
    }
    impl_tuple! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
    }

    /// Types with a canonical "any value" strategy ([`any`]).
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+ $(,)?) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )+
        };
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// An unconstrained value of `T`: `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A length spec for [`vec`]: an exact `usize` or a `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u128;
            let len = self.size.start + rng.below_u128(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! The deterministic RNG and failure type behind `proptest!`.

    /// Property-failure payload carried by `prop_assert!` back to the
    /// case loop (a plain message; no shrinking).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 — deterministic per (test, case index), so failures
    /// reproduce exactly on re-run without persisted seeds.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of one property test.
        pub fn deterministic(test_name: &str, case: u64) -> TestRng {
            // FNV-1a over the test name spreads streams across tests.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero and
        /// fit the caller's target type.
        pub fn below_u128(&mut self, bound: u128) -> u128 {
            assert!(bound > 0, "below_u128 with zero bound");
            if bound == 1 {
                return 0;
            }
            // Rejection sampling on the top bits — unbiased and cheap
            // for the small bounds tests use.
            let bits = 128 - (bound - 1).leading_zeros();
            loop {
                let raw = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
                let candidate = raw >> (128 - bits);
                if candidate < bound {
                    return candidate;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u64,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u64) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 96 }
        }
    }

    /// Number of cases per property (`PROPTEST_CASES` overrides).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| ProptestConfig::default().cases)
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many generated inputs. An
/// optional leading `#![proptest_config(...)]` sets the case count for
/// the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::__proptest_body! { cases = ($cfg).cases; $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::__proptest_body! { cases = $crate::test_runner::case_count(); $($rest)+ }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cases = $cases:expr; $($(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                for case in 0..$cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        stringify!($name),
                        case,
                    );
                    // Bind in declaration order; each strategy draws
                    // from the shared per-case stream.
                    $(let $p = $crate::strategy::Strategy::sample(&$s, &mut rng);)+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}: {e}",
                            stringify!($name),
                        );
                    }
                }
            }
        )+
    };
}

/// `assert!` that reports through the proptest case loop.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest case loop.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, bool)> {
        (0u32..100, any::<bool>()).prop_map(|(n, b)| (n * 2, b))
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in crate::collection::vec(any::<bool>(), 7),
            ranged in crate::collection::vec(0u8..10, 2..5),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..5).contains(&ranged.len()));
        }

        #[test]
        fn prop_map_applies(pair in arb_pair()) {
            prop_assert_eq!(pair.0 % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let draw = |case| {
            let mut rng = crate::test_runner::TestRng::deterministic("d", case);
            s.sample(&mut rng)
        };
        assert_eq!(draw(0), draw(0));
        assert_ne!(draw(0), draw(1));
    }

    #[test]
    fn failure_reports_case() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
