//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored serde's `Serialize` (`to_value`) and
//! `Deserialize` (`from_value`) for the item shapes this workspace
//! defines: structs with named fields, single-field newtype structs, and
//! enums of unit variants. Anything fancier (generics, data-carrying
//! variants, serde attributes) is rejected with a compile error rather
//! than silently mis-serialized. Built on bare `proc_macro` token
//! parsing because the offline environment has no syn/quote.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item being derived.
enum Item {
    /// `struct Name { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T);`
    Newtype { name: String },
    /// `enum Name { A, B, C }`
    UnitEnum { name: String, variants: Vec<String> },
}

/// Skip `#[...]` attribute groups (including expanded doc comments).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip `pub` / `pub(...)` visibility markers.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "derive(Serialize/Deserialize) stand-in: generics on `{name}` unsupported"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if top_level_commas(&inner) > 0 {
                    return Err(format!(
                        "stand-in derive: multi-field tuple struct `{name}` unsupported"
                    ));
                }
                Ok(Item::Newtype { name })
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::UnitEnum {
                variants: parse_unit_variants(&g.stream().into_iter().collect::<Vec<_>>(), &name)?,
                name,
            }),
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}`")),
    }
}

/// Count commas outside nested `<...>` runs (groups are already nested
/// by the tokenizer, so only angle brackets need manual depth tracking).
fn top_level_commas(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut commas = 0;
    // A trailing comma does not separate anything.
    let last_meaningful = tokens
        .iter()
        .rposition(|t| !matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
        .map_or(0, |p| p + 1);
    for t in &tokens[..last_meaningful] {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    commas
}

fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(tokens, skip_attrs(tokens, i));
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{field}`, got {other:?}")),
        }
        // Skip the type: everything up to the next comma outside `<...>`.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(tokens: &[TokenTree], enum_name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "stand-in derive: data-carrying variant `{enum_name}::{variant}` unsupported"
                ));
            }
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

/// Derive the stand-in `serde::Serialize` (`to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!("map.insert({f:?}.to_string(), serde::Serialize::to_value(&self.{f}));")
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut map = std::collections::BTreeMap::new();\n\
                         {inserts}\n\
                         serde::Value::Object(map)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Newtype { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Serialize::to_value(&self.0) }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::String({v:?}.to_string()),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derive the stand-in `serde::Deserialize` (`from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let builds: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(map.get({f:?}).ok_or_else(|| \
                         serde::Error::msg(concat!(\"missing field `\", {f:?}, \"` in \", \
                         {name:?})))?)?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Object(map) => Ok({name} {{ {builds} }}),\n\
                             other => Err(serde::Error::msg(format!(\n\
                                 \"expected object for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Newtype { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     Ok({name}(serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::String(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(serde::Error::msg(format!(\n\
                                     \"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             other => Err(serde::Error::msg(format!(\n\
                                 \"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
