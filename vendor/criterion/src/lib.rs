//! Offline stand-in for `criterion`.
//!
//! Keeps the source-level API the bench targets use — [`Criterion`],
//! `bench_function`, `benchmark_group` / `bench_with_input`,
//! [`BenchmarkId`], `criterion_group!`, `criterion_main!` — but measures
//! with plain wall-clock timing and prints `[min mean max]` per-iteration
//! lines instead of statistical analysis and HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Bench harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.parent.bench_function(&full, f);
        self
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.0, |b| f(b, input))
    }

    /// Close the group (formatting no-op; kept for API parity).
    pub fn finish(self) {}
}

/// A label for one parameterised benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label a benchmark by its parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

/// Passed to each benchmark closure; runs and times the hot loop.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, once per sample after one untimed warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no measurement: iter was never called)");
            return;
        }
        let min = self.samples.iter().min().expect("nonempty");
        let max = self.samples.iter().max().expect("nonempty");
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<44} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into one named runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Run every benchmark target registered in this group.
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure_and_samples() {
        let mut counter = 0u64;
        Criterion::default()
            .sample_size(5)
            .bench_function("shim/count", |b| b.iter(|| counter += 1));
        // 1 warm-up + 5 timed samples.
        assert_eq!(counter, 6);
    }

    #[test]
    fn groups_prefix_names_and_pass_inputs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        let mut seen = 0u32;
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
            b.iter(|| seen = n)
        });
        g.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default().sample_size(2);
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("shim/noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        shim_group();
    }
}
