//! Spectrum sharing: two independent CellFi operators, one TV channel.
//!
//! The paper's core scenario — "multiple cellular providers are sharing
//! the spectrum and may not even be aware of one another" (§5). Two
//! cells from different operators land on the same channel; with plain
//! LTE the cell-edge clients drown, with CellFi the cells partition the
//! subchannels within seconds using only passive sensing.
//!
//! Run with: `cargo run --release --example spectrum_sharing`

use cellfi::propagation::antenna::Antenna;
use cellfi::propagation::link::LinkEnd;
use cellfi::sim::engine::{ImMode, LteEngine, LteEngineConfig};
use cellfi::sim::topology::{Scenario, ScenarioConfig};
use cellfi::types::geo::Point;
use cellfi::types::rng::SeedSeq;
use cellfi::types::time::Instant;
use cellfi::types::units::Db;

fn two_operator_scenario() -> Scenario {
    let mut cfg = ScenarioConfig::paper_default(2, 0);
    cfg.shadowing_sigma = 0.0;
    cfg.fading = false;
    let mut s = Scenario::generate(cfg, SeedSeq::new(1));
    // Operator A at x=0, operator B at x=800 m; each serves two clients,
    // one comfortable and one at the contested edge.
    s.aps = vec![
        LinkEnd::new(
            0,
            Point::new(0.0, 0.0),
            Antenna::Isotropic { gain: Db(6.0) },
        ),
        LinkEnd::new(
            1,
            Point::new(800.0, 0.0),
            Antenna::Isotropic { gain: Db(6.0) },
        ),
    ];
    s.ues = vec![
        LinkEnd::new(1000, Point::new(120.0, 50.0), Antenna::client()), // A, near
        LinkEnd::new(1001, Point::new(500.0, 0.0), Antenna::client()),  // A, edge
        LinkEnd::new(1002, Point::new(700.0, -60.0), Antenna::client()), // B, near
        LinkEnd::new(1003, Point::new(300.0, 0.0), Antenna::client()),  // B, edge
    ];
    s.assoc = vec![0, 0, 1, 1];
    s
}

fn run(mode: ImMode, label: &str) {
    let mut e = LteEngine::new(
        two_operator_scenario(),
        LteEngineConfig::paper_default(mode),
        SeedSeq::new(99),
    );
    e.backlog_all(u64::MAX / 4);
    e.run_until(Instant::from_secs(20));
    let t = e.throughputs_bps();
    println!("\n{label}:");
    for (u, name) in ["A-near", "A-edge", "B-near", "B-edge"].iter().enumerate() {
        println!("  {name}: {:>8.0} kbps", t[u] / 1e3);
    }
    let masks: Vec<String> = (0..2)
        .map(|c| {
            e.cell_mask(c)
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect()
        })
        .collect();
    println!("  operator A mask: {}", masks[0]);
    println!("  operator B mask: {}", masks[1]);
    let overlap = e
        .cell_mask(0)
        .iter()
        .zip(e.cell_mask(1))
        .filter(|(a, b)| **a && *b)
        .count();
    println!("  overlapping subchannels: {overlap}");
}

fn main() {
    println!("Two unplanned CellFi operators share one TV channel (5 MHz, 13 subchannels).");
    run(ImMode::PlainLte, "Plain LTE (no coordination)");
    run(ImMode::CellFi, "CellFi distributed interference management");
    println!(
        "\nNo X2 interface, no controller, no operator agreement — the cells\n\
         partitioned the channel purely from PRACH overhearing and CQI drops."
    );
}
