//! Primary user protection: a wireless microphone takes the channel.
//!
//! Replays the regulatory story of §4.2/§6.2 with a scheduled incumbent:
//! a theatre's licensed microphone reserves the channel for an evening
//! show; the CellFi network must vacate before the event, stay off the
//! channel for its duration, and may return afterwards. Also
//! demonstrates the client-side compliance property: once the AP stops,
//! clients are instantly silent because they have no grants.
//!
//! Run with: `cargo run --release --example primary_user`

use cellfi::lte::cell::{Cell, CellConfig};
use cellfi::lte::earfcn::{Band, Earfcn};
use cellfi::lte::ue::{Ue, UeTimings};
use cellfi::spectrum::client::{ClientState, DatabaseClient, ETSI_VACATE_DEADLINE};
use cellfi::spectrum::database::SpectrumDatabase;
use cellfi::spectrum::incumbent::Incumbent;
use cellfi::spectrum::paws::GeoLocation;
use cellfi::spectrum::plan::ChannelPlan;
use cellfi::types::geo::Point;
use cellfi::types::time::{Duration, Instant};
use cellfi::types::units::Dbm;
use cellfi::types::{ApId, ChannelId, UeId};

fn main() {
    // The show runs 19:00–23:00 (simulation hours 19–23).
    let show_start = Instant::from_secs(19 * 3600);
    let show_end = Instant::from_secs(23 * 3600);
    let theatre = Incumbent::WirelessMic {
        channel: ChannelId::new(36),
        location: Point::new(400.0, 0.0),
        protected_radius: 2_000.0,
        events: vec![(show_start, show_end)],
    };
    let mut db = SpectrumDatabase::new(ChannelPlan::Eu, vec![theatre]);
    let ap_pos = Point::new(0.0, 0.0);
    let mut dbc = DatabaseClient::new("cellfi-ap", 5, GeoLocation::gps(ap_pos));
    let mut cell = Cell::new(CellConfig::paper_default(ApId::new(0)));
    let mut ue = Ue::new(UeId::new(0), UeTimings::single_band(), Instant::ZERO);

    // Morning: the channel is free, the network comes up on ch36.
    let morning = Instant::from_secs(9 * 3600);
    dbc.refresh(&mut db, morning)
        .expect("the in-process database transport is infallible");
    assert!(dbc.grants().iter().any(|g| g.channel == ChannelId::new(36)));
    dbc.start_operation(&mut db, ChannelId::new(36), 36.0, morning)
        .expect("channel 36 was just confirmed granted");
    let centre = ChannelPlan::Eu.channel(36).expect("in plan").centre;
    let carrier = Earfcn::from_frequency(Band::Tvws, centre);
    cell.set_carrier(carrier, Dbm(20.0), morning);
    ue.cell_found(ApId::new(0), morning);
    ue.attach_complete();
    cell.attach(UeId::new(0));
    println!("09:00  network up on ch36 ({centre}); client attached");
    println!(
        "09:00  client may transmit: {}",
        ue.may_transmit(cell.sib(), Dbm(15.0))
    );

    // Evening poll just after the show starts: the channel is gone.
    let poll = show_start + Duration::from_secs(30);
    let state = dbc
        .refresh(&mut db, poll)
        .expect("the in-process database transport is infallible");
    let ClientState::Vacating { deadline, .. } = state else {
        panic!("expected Vacating, got {state:?}");
    };
    println!(
        "19:00  mic event started; lease lost, must stop by +{}",
        ETSI_VACATE_DEADLINE
    );
    assert_eq!(deadline, poll + ETSI_VACATE_DEADLINE);
    cell.radio_off();
    dbc.confirm_stopped();
    ue.lost_cell(poll);
    println!(
        "19:00  AP off; client may transmit: {} (no grants — instant silence)",
        ue.may_transmit(cell.sib(), Dbm(15.0))
    );

    // During the show: the database refuses the channel.
    let mid_show = Instant::from_secs(21 * 3600);
    dbc.refresh(&mut db, mid_show)
        .expect("the in-process database transport is infallible");
    assert!(
        !dbc.grants().iter().any(|g| g.channel == ChannelId::new(36)),
        "channel must stay blocked during the event"
    );
    println!("21:00  ch36 still reserved for the incumbent; network stays off it");

    // After the show: channel returns; network re-acquires.
    let late = show_end + Duration::from_secs(60);
    dbc.refresh(&mut db, late)
        .expect("the in-process database transport is infallible");
    assert!(dbc.grants().iter().any(|g| g.channel == ChannelId::new(36)));
    dbc.start_operation(&mut db, ChannelId::new(36), 36.0, late)
        .expect("channel 36 was just confirmed granted again");
    cell.set_carrier(carrier, Dbm(20.0), late);
    ue.cell_found(ApId::new(0), late);
    ue.attach_complete();
    cell.attach(UeId::new(0));
    println!("23:01  mic event over; network re-acquired ch36 and clients reattach");
    println!(
        "23:01  client may transmit: {}",
        ue.may_transmit(cell.sib(), Dbm(15.0))
    );
    println!("\nIncumbent protected for the entire event; zero manual intervention.");
}
