//! Coverage map: the Fig 1 drive test as a runnable tool.
//!
//! Sweeps a client outward from a 36 dBm-EIRP CellFi cell over the
//! calibrated urban propagation model and prints the throughput/quality
//! profile — the experiment behind the paper's "1 km range at 1 Mbps"
//! headline.
//!
//! Run with: `cargo run --release --example coverage_map`

use cellfi::sim::experiments::fig1::drive_test;
use cellfi::sim::experiments::ExpConfig;

fn main() {
    let points = drive_test(ExpConfig {
        seed: 7,
        quick: false,
    });
    println!("distance    TCP tput     median code rate   HARQ usage");
    for p in &points {
        let mcr = {
            let mut rates = p.dl_code_rates.clone();
            rates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            if rates.is_empty() {
                f64::NAN
            } else {
                rates[rates.len() / 2]
            }
        };
        let bar_len = (p.dl_tcp_bps / 1e6 * 4.0).round() as usize;
        println!(
            "{:>6.0} m  {:>7.2} Mbps   {:>6.2}            {:>5.1}%  |{}",
            p.distance,
            p.dl_tcp_bps / 1e6,
            mcr,
            p.harq_usage * 100.0,
            "#".repeat(bar_len.min(60)),
        );
    }
    let covered = points.iter().filter(|p| p.dl_tcp_bps >= 1e6).count();
    let furthest = points
        .iter()
        .filter(|p| p.dl_tcp_bps >= 1e6)
        .map(|p| p.distance)
        .fold(0.0, f64::max);
    println!(
        "\n>= 1 Mbps at {}/{} locations ({}%); furthest 1 Mbps point: {:.0} m",
        covered,
        points.len(),
        covered * 100 / points.len(),
        furthest
    );
    println!("(paper: 1 Mbps at 85% of locations, 1.3 km urban range)");
}
