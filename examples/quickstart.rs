//! Quickstart: bring up a CellFi access point end to end.
//!
//! Walks the full paper pipeline on one machine:
//! 1. query the TVWS spectrum database (PAWS) for available channels;
//! 2. run channel selection with a network-listen survey;
//! 3. configure the LTE cell on the chosen carrier and attach clients;
//! 4. run the distributed interference manager for a few epochs and show
//!    the scheduler mask it hands to the stock LTE scheduler.
//!
//! Run with: `cargo run --release --example quickstart`

use cellfi::im::manager::{ClientEpochStats, EpochInput, InterferenceManager, ManagerConfig};
use cellfi::lte::cell::{Cell, CellConfig};
use cellfi::lte::earfcn::{Band, Earfcn};
use cellfi::spectrum::client::DatabaseClient;
use cellfi::spectrum::database::SpectrumDatabase;
use cellfi::spectrum::incumbent::Incumbent;
use cellfi::spectrum::paws::GeoLocation;
use cellfi::spectrum::plan::ChannelPlan;
use cellfi::spectrum::selection::{ChannelSelector, ListenObservation, OccupantKind};
use cellfi::types::geo::Point;
use cellfi::types::time::Instant;
use cellfi::types::units::Dbm;
use cellfi::types::{ApId, ChannelId, UeId};

fn main() {
    // --- 1. The regulator's database knows about one TV station. -----
    let mut db = SpectrumDatabase::new(
        ChannelPlan::Eu,
        vec![Incumbent::TvStation {
            channel: ChannelId::new(30),
            location: Point::new(3_000.0, 0.0),
            protected_radius: 10_000.0,
        }],
    );
    let ap_position = Point::new(0.0, 0.0);
    let mut client = DatabaseClient::new("cellfi-quickstart-ap", 3, GeoLocation::gps(ap_position));
    let now = Instant::ZERO;
    client
        .refresh(&mut db, now)
        .expect("the in-process database transport is infallible");
    println!("database granted {} channels", client.grants().len());
    assert!(
        client
            .grants()
            .iter()
            .all(|g| g.channel != ChannelId::new(30)),
        "protected channel must not be granted"
    );

    // --- 2. Channel selection with network listen. --------------------
    let listen = vec![
        ListenObservation {
            channel: ChannelId::new(21),
            energy: Dbm(-75.0),
            occupant: OccupantKind::Foreign, // an 802.11af network
        },
        ListenObservation {
            channel: ChannelId::new(22),
            energy: Dbm(-82.0),
            occupant: OccupantKind::CellFi, // another CellFi cell: shareable
        },
    ];
    let selector = ChannelSelector::new(ChannelPlan::Eu);
    let choice = selector
        .choose(client.grants(), client.grants(), &listen, now)
        .expect("some channel is free");
    println!(
        "selected {} at {} (occupant: {:?}, max EIRP {} dBm)",
        choice.channel, choice.centre, choice.occupant, choice.max_eirp_dbm
    );
    client
        .start_operation(&mut db, choice.channel, choice.max_eirp_dbm, now)
        .expect("the selector only returns granted channels");

    // --- 3. LTE cell up, clients attach. ------------------------------
    let mut cell = Cell::new(CellConfig::paper_default(ApId::new(0)));
    let carrier = Earfcn::from_frequency(Band::Tvws, choice.centre);
    cell.set_carrier(carrier, Dbm(20.0), now);
    for u in 0..3 {
        cell.attach(UeId::new(u));
        cell.enqueue(UeId::new(u), 1_000_000);
    }
    println!(
        "cell radiating on EARFCN {} with {} clients",
        carrier.number,
        cell.attached_ues().len()
    );

    // --- 4. Interference management epochs. ---------------------------
    let n_sub = cell.grid().num_subchannels();
    let mut im = InterferenceManager::new(n_sub, ManagerConfig::default(), 42);
    // Sensing says: our 3 active clients plus 3 overheard from a
    // neighbouring CellFi cell (we chose to share its channel).
    let input = EpochInput {
        own_active: 3,
        heard_active: 6,
        clients: (0..3)
            .map(|u| ClientEpochStats {
                ue: UeId::new(u),
                frac_scheduled: vec![0.0; n_sub as usize],
                interfered: vec![false; n_sub as usize],
                est_throughput: vec![1_000.0; n_sub as usize],
                free_streak: vec![0; n_sub as usize],
            })
            .collect(),
    };
    for epoch in 1..=3 {
        let decision = im.epoch(&input);
        println!(
            "epoch {epoch}: share {} of {} subchannels, mask {}",
            decision.share,
            n_sub,
            decision
                .mask
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect::<String>()
        );
        cell.set_allowed_mask(decision.mask);
    }
    println!(
        "scheduler now restricted to {} subchannels — co-existence without any AP-to-AP protocol",
        cell.allowed_mask().iter().filter(|&&b| b).count()
    );
}
