//! Web browsing: application-level comparison (the Fig 9c scenario).
//!
//! A small unplanned deployment serves web traffic; we compare page load
//! times under CellFi and plain LTE on the same topology, workload and
//! channel realization — the experiment behind the paper's "2.3×
//! faster than Wi-Fi, LTE has a bad interference tail" result.
//!
//! Run with: `cargo run --release --example web_browsing`

use cellfi::sim::engine::{ImMode, LteEngine, LteEngineConfig};
use cellfi::sim::metrics::Cdf;
use cellfi::sim::topology::{Scenario, ScenarioConfig};
use cellfi::sim::workload::{WebWorkload, WebWorkloadConfig};
use cellfi::types::rng::SeedSeq;
use cellfi::types::time::Instant;

fn page_loads(mode: ImMode) -> Vec<f64> {
    let seeds = SeedSeq::new(2026).child("web-browsing");
    let scenario = Scenario::generate(ScenarioConfig::paper_default(6, 4), seeds);
    let mut e = LteEngine::new(scenario, LteEngineConfig::paper_default(mode), seeds);
    let n = e.scenario().n_ues();
    let mut web = WebWorkload::new(WebWorkloadConfig::default(), n, seeds.child("web"));
    let mut bit_acc = vec![0u64; n];
    let mut handed = vec![0u64; n];
    let horizon = Instant::from_secs(45);
    while e.now() < horizon {
        for (client, bytes) in web.poll(e.now()) {
            e.enqueue(client, bytes * 8);
        }
        for (ue, bits) in e.step_subframe() {
            bit_acc[ue] += bits;
            let bytes = bit_acc[ue] / 8;
            if bytes > handed[ue] {
                web.delivered(ue, bytes - handed[ue], e.now());
                handed[ue] = bytes;
            }
        }
    }
    web.completed
        .iter()
        .map(|p| p.duration().as_secs_f64())
        .collect()
}

fn main() {
    println!("Simulating 45 s of web browsing over 6 unplanned cells x 4 clients...");
    let lte = Cdf::new(page_loads(ImMode::PlainLte));
    let cellfi = Cdf::new(page_loads(ImMode::CellFi));
    println!("\n                      plain LTE    CellFi");
    for q in [0.25, 0.5, 0.75, 0.9, 0.95] {
        println!(
            "  p{:<3.0} page load    {:>7.2} s   {:>7.2} s",
            q * 100.0,
            lte.quantile_or(q, 0.0),
            cellfi.quantile_or(q, 0.0)
        );
    }
    println!(
        "\n  pages completed: LTE {}, CellFi {}",
        lte.len(),
        cellfi.len()
    );
    println!(
        "  median speedup: {:.2}x; tail (p95) speedup: {:.2}x",
        lte.median_or(0.0) / cellfi.median_or(0.0).max(1e-9),
        lte.quantile_or(0.95, 0.0) / cellfi.quantile_or(0.95, 0.0).max(1e-9)
    );
    println!("  (paper: LTE slightly better at low percentiles, much worse in the tail)");
}
