//! Golden report values: every experiment's quick-mode headline
//! numbers, pinned byte-for-byte against `tests/goldens/values_*.json`.
//!
//! The goldens were captured from `exp <name> --quick --json` at the
//! default seed before the engine was decomposed into layered PHY/MAC/IM
//! modules; this test is the refactor's behaviour-preservation gate. To
//! refresh after an *intentional* result change, re-run that command and
//! commit the new JSON alongside the change that explains it.

use cellfi::sim::experiments::{self, ExpConfig};
use std::path::Path;

#[test]
fn quick_mode_values_match_committed_goldens() {
    let config = ExpConfig {
        quick: true,
        ..ExpConfig::default()
    };
    let reports = experiments::run_many(experiments::ALL, config);
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    let mut diverged = Vec::new();
    for rep in &reports {
        let path = dir.join(format!("values_{}.json", rep.id));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        let mut actual =
            serde_json::to_string_pretty(&rep.values).expect("experiment values serialize");
        actual.push('\n');
        if actual != golden {
            diverged.push(rep.id.clone());
            eprintln!(
                "--- {} golden ---\n{golden}--- {} actual ---\n{actual}",
                rep.id, rep.id
            );
        }
    }
    assert!(
        diverged.is_empty(),
        "experiment values diverged from goldens: {diverged:?}"
    );
}

#[test]
fn every_experiment_has_a_committed_golden() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    for name in experiments::ALL {
        assert!(
            dir.join(format!("values_{name}.json")).exists(),
            "no golden for {name}; run `exp {name} --quick --json` and commit it"
        );
    }
}
