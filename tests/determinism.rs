//! Reproducibility contract: every experiment is a pure function of its
//! seed. Scientific results that cannot be regenerated bit-for-bit are
//! not results; these tests pin the property end-to-end through the
//! facade, for the fast experiment drivers.

use cellfi::sim::experiments::{self, ExpConfig};

fn run_twice(name: &str) -> (String, String) {
    let cfg = ExpConfig {
        seed: 99,
        quick: true,
    };
    let a = experiments::run(name, cfg).expect("known experiment");
    let b = experiments::run(name, cfg).expect("known experiment");
    (format!("{:?}", a.values), format!("{:?}", b.values))
}

#[test]
fn fast_experiments_are_bit_reproducible() {
    for name in [
        "table1", "fig6", "fig7b", "fig7c", "fig8", "overhead", "theorem1",
    ] {
        let (a, b) = run_twice(name);
        assert_eq!(a, b, "{name} not reproducible");
    }
}

#[test]
fn different_seeds_change_stochastic_experiments() {
    let a = experiments::run(
        "fig8",
        ExpConfig {
            seed: 1,
            quick: true,
        },
    )
    .expect("fig8 exists");
    let b = experiments::run(
        "fig8",
        ExpConfig {
            seed: 2,
            quick: true,
        },
    )
    .expect("fig8 exists");
    assert_ne!(
        format!("{:?}", a.values),
        format!("{:?}", b.values),
        "fig8 ignored its seed"
    );
}

/// The parallel engine contract: thread count changes who computes, not
/// what. A 2-simulated-second CellFi run must produce bit-identical
/// delivered bits, manager hop counts, and cell subchannel masks whether
/// the row/column fan-out uses 1 worker or several.
#[test]
fn engine_run_is_identical_for_any_thread_count() {
    use cellfi::sim::{parallel, ImMode, LteEngine, LteEngineConfig, Scenario, ScenarioConfig};
    use cellfi::types::rng::SeedSeq;
    use cellfi::types::time::Instant;

    let run = |threads: usize| {
        parallel::with_threads(threads, || {
            let seeds = SeedSeq::new(4242).child("thread-determinism");
            let scenario = Scenario::generate(ScenarioConfig::paper_default(4, 3), seeds);
            let n_cells = scenario.aps.len();
            let mut e = LteEngine::new(
                scenario,
                LteEngineConfig::paper_default(ImMode::CellFi),
                seeds.child("engine"),
            );
            e.backlog_all(u64::MAX / 4);
            e.run_until(Instant::from_secs(2));
            let masks: Vec<Vec<bool>> = (0..n_cells).map(|c| e.cell_mask(c)).collect();
            (e.delivered_bits().to_vec(), e.manager_hops(), masks)
        })
    };
    let serial = run(1);
    for threads in [2usize, 4] {
        let parallel_run = run(threads);
        assert_eq!(
            parallel_run.0, serial.0,
            "delivered bits, threads={threads}"
        );
        assert_eq!(parallel_run.1, serial.1, "manager hops, threads={threads}");
        assert_eq!(parallel_run.2, serial.2, "cell masks, threads={threads}");
    }
}

/// The tracing contract extends the parallel-engine contract: per-entity
/// event sinks merge in entity order, so the serialized event stream —
/// not just the aggregate counters — is byte-identical whether the
/// fan-out uses 1, 2 or 8 workers.
#[test]
fn trace_bytes_are_identical_for_any_thread_count() {
    use cellfi::obs::Tracer;
    use cellfi::sim::{parallel, ImMode, LteEngine, LteEngineConfig, Scenario, ScenarioConfig};
    use cellfi::types::rng::SeedSeq;
    use cellfi::types::time::Instant;

    let run = |threads: usize| {
        parallel::with_threads(threads, || {
            let seeds = SeedSeq::new(4242).child("trace-determinism");
            let scenario = Scenario::generate(ScenarioConfig::paper_default(4, 3), seeds);
            let mut e = LteEngine::new(
                scenario,
                LteEngineConfig::paper_default(ImMode::CellFi),
                seeds.child("engine"),
            );
            e.obs_mut().tracer = Tracer::new(true);
            e.backlog_all(u64::MAX / 4);
            e.run_until(Instant::from_secs(2));
            (
                e.obs().tracer.to_jsonl(),
                e.obs().metrics.snapshot_jsonl(e.now()),
            )
        })
    };
    let (serial_trace, serial_metrics) = run(1);
    assert!(
        !serial_trace.is_empty(),
        "traced engine run emitted no events"
    );
    for threads in [2usize, 8] {
        let (trace, metrics) = run(threads);
        assert_eq!(trace, serial_trace, "trace bytes, threads={threads}");
        assert_eq!(metrics, serial_metrics, "metrics bytes, threads={threads}");
    }
}

/// The spatial-index contract: culling is an *optimisation*, never a
/// semantic change. A floor set so low that no link can fall below it
/// keeps every candidate, and the grid-built neighbor tables must then
/// drive the engine to the same serialized trace and metrics bytes as
/// the dense (floor off) run — at 1 worker and at 8.
#[test]
fn no_op_cull_floor_reproduces_dense_trace_bytes() {
    use cellfi::obs::Tracer;
    use cellfi::sim::{parallel, ImMode, LteEngine, LteEngineConfig, Scenario, ScenarioConfig};
    use cellfi::types::rng::SeedSeq;
    use cellfi::types::time::Instant;

    let run = |floor: Option<f64>, threads: usize| {
        parallel::with_threads(threads, || {
            let seeds = SeedSeq::new(4242).child("cull-determinism");
            let mut cfg = ScenarioConfig::paper_default(4, 3);
            cfg.cull_floor_dbm = floor;
            let scenario = Scenario::generate(cfg, seeds);
            let mut e = LteEngine::new(
                scenario,
                LteEngineConfig::paper_default(ImMode::CellFi),
                seeds.child("engine"),
            );
            e.obs_mut().tracer = Tracer::new(true);
            e.backlog_all(u64::MAX / 4);
            e.run_until(Instant::from_secs(1));
            (
                e.obs().tracer.to_jsonl(),
                e.obs().metrics.snapshot_jsonl(e.now()),
            )
        })
    };
    let dense = run(None, 1);
    assert!(!dense.0.is_empty(), "dense run emitted no events");
    for threads in [1usize, 8] {
        let culled = run(Some(-1_000.0), threads);
        assert_eq!(culled.0, dense.0, "trace bytes, threads={threads}");
        assert_eq!(culled.1, dense.1, "metrics bytes, threads={threads}");
    }
}

/// The chaos experiment extends the tracing contract to the fault
/// injector and lease lifecycles: the resilience event stream
/// (`fault_inject`, `lease_renew`, `degrade`, `recover`) and metrics
/// snapshot are byte-identical at 1 and 8 workers.
#[test]
fn chaos_trace_bytes_identical_for_any_thread_count() {
    use cellfi::sim::experiments::trace_run;
    use cellfi::sim::parallel;

    let cfg = ExpConfig {
        seed: 7,
        quick: true,
    };
    let run = |threads: usize| {
        parallel::with_threads(threads, || {
            let out = trace_run::traced("chaos", cfg).expect("chaos is a known experiment");
            (out.events, out.metrics)
        })
    };
    let serial = run(1);
    assert!(
        serial.0.contains("\"ev\":\"lease_renew\""),
        "chaos trace carries lease lifecycle events"
    );
    let threaded = run(8);
    assert_eq!(threaded.0, serial.0, "chaos trace bytes, threads=8");
    assert_eq!(threaded.1, serial.1, "chaos metrics bytes, threads=8");
}

#[test]
fn experiment_registry_is_complete_and_unique() {
    let mut names: Vec<&str> = experiments::ALL.to_vec();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate experiment names");
    // Every listed experiment dispatches.
    for n in experiments::ALL {
        // Don't run the heavy ones; just check the name resolves by
        // probing the dispatcher with an unknown-name contrast.
        assert!(experiments::ALL.contains(n), "registry self-consistency");
    }
    assert!(experiments::run("no-such-figure", ExpConfig::default()).is_none());
}
