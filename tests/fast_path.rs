//! Steady-state fast-path equivalence contract.
//!
//! The engine memoizes CQI scans keyed by (gain generation, association
//! generation, transmitter-set ids) and replays them in steady state.
//! That is an optimization, never a semantic: with the memo disabled the
//! engine must deliver the same bits, drop the same connections, execute
//! the same handovers, and emit a byte-identical event trace — at any
//! worker count. These tests pin that end-to-end through the facade,
//! including across mid-run perturbations (client mobility, EIRP
//! degradation) that invalidate every cache layer.

use cellfi::obs::Tracer;
use cellfi::sim::{parallel, ImMode, LteEngine, LteEngineConfig, Scenario, ScenarioConfig};
use cellfi::types::geo::Point;
use cellfi::types::rng::SeedSeq;
use cellfi::types::time::Instant;

/// Everything observable a run produces: delivery counters, resilience
/// counters, and the full JSONL trace stream.
#[derive(Debug, PartialEq, Eq)]
struct RunOutcome {
    delivered: Vec<u64>,
    ul_delivered: Vec<u64>,
    rrc_drops: Vec<u64>,
    handovers: u64,
    trace: String,
}

fn run(mode: ImMode, seed: u64, fast_path: bool, threads: usize) -> RunOutcome {
    parallel::with_threads(threads, || {
        let mut cfg = ScenarioConfig::paper_default(3, 2);
        cfg.fading = true;
        let scenario = Scenario::generate(cfg, SeedSeq::new(seed));
        let mut e = LteEngine::new(
            scenario,
            LteEngineConfig::paper_default(mode),
            SeedSeq::new(seed ^ 0xfa57),
        );
        e.set_fast_path(fast_path);
        e.obs_mut().tracer = Tracer::new(true);
        e.backlog_all(40_000_000);
        e.enqueue_ul(0, 2_000_000);
        e.run_until(Instant::from_millis(1_200));
        // Perturb mid-run: both paths must agree through cache
        // invalidation, not just within a warmed steady state.
        e.move_ue(0, Point::new(140.0, 60.0));
        e.set_power_offset_db(0, -6.0);
        e.run_until(Instant::from_millis(2_400));
        RunOutcome {
            delivered: e.delivered_bits().to_vec(),
            ul_delivered: e.ul_delivered_bits().to_vec(),
            rrc_drops: e.rrc_drops.clone(),
            handovers: e.handovers,
            trace: e.obs().tracer.to_jsonl(),
        }
    })
}

#[test]
fn fast_path_matches_full_scan_across_modes_seeds_and_threads() {
    for mode in [ImMode::CellFi, ImMode::PlainLte] {
        for seed in [5u64, 23] {
            let reference = run(mode, seed, false, 1);
            assert!(
                !reference.trace.is_empty(),
                "reference run produced no events; the comparison is vacuous"
            );
            for threads in [1usize, 8] {
                let fast = run(mode, seed, true, threads);
                assert_eq!(
                    reference, fast,
                    "fast path diverged from full scan ({mode:?}, seed {seed}, \
                     {threads} threads)"
                );
            }
            // The full scan must itself be thread-independent with the
            // memo off (the fast path may not be masking a parallel
            // nondeterminism in the slow path).
            let slow8 = run(mode, seed, false, 8);
            assert_eq!(
                reference, slow8,
                "full scan thread-dependent ({mode:?}, seed {seed})"
            );
        }
    }
}
