//! TVWS regulatory-compliance integration tests.
//!
//! These span `cellfi-spectrum`, `cellfi-lte` and `cellfi-types` and pin
//! the properties the paper's §2/§4.2 argue make an LTE-based
//! architecture *naturally* compliant:
//!
//! * no device transmits without a valid database lease;
//! * transmissions stop within the ETSI minute of losing the channel;
//! * clients are silent the instant their cell stops radiating;
//! * client EIRP never exceeds the TVWS 20 dBm cap;
//! * incumbents are never granted away, regardless of load.

use cellfi::lte::cell::{Cell, CellConfig};
use cellfi::lte::earfcn::{Band, Earfcn};
use cellfi::lte::ue::{RrcState, Ue, UeTimings};
use cellfi::spectrum::client::{ClientState, DatabaseClient, OperationError, ETSI_VACATE_DEADLINE};
use cellfi::spectrum::database::SpectrumDatabase;
use cellfi::spectrum::faults::{FaultInjector, FaultPlan};
use cellfi::spectrum::fleet::{FleetConfig, SpectrumFleet};
use cellfi::spectrum::incumbent::Incumbent;
use cellfi::spectrum::lifecycle::{LeaseLifecycle, LifecycleConfig};
use cellfi::spectrum::paws::GeoLocation;
use cellfi::spectrum::plan::ChannelPlan;
use cellfi::spectrum::profile::RuleProfile;
use cellfi::types::geo::Point;
use cellfi::types::time::{Duration, Instant};
use cellfi::types::units::Dbm;
use cellfi::types::{ApId, ChannelId, UeId};
use proptest::prelude::*;

fn fresh_network() -> (SpectrumDatabase, DatabaseClient, Cell, Ue) {
    let db = SpectrumDatabase::new(ChannelPlan::Eu, vec![]);
    let client = DatabaseClient::new("it-ap", 4, GeoLocation::gps(Point::ORIGIN));
    let cell = Cell::new(CellConfig::paper_default(ApId::new(0)));
    let ue = Ue::new(UeId::new(0), UeTimings::single_band(), Instant::ZERO);
    (db, client, cell, ue)
}

fn bring_up(
    db: &mut SpectrumDatabase,
    client: &mut DatabaseClient,
    cell: &mut Cell,
    ue: &mut Ue,
    at: Instant,
) -> ChannelId {
    client
        .refresh(db, at)
        .expect("the in-process database transport is infallible");
    let ch = client.grants()[0].channel;
    client
        .start_operation(db, ch, 36.0, at)
        .expect("channel comes from the grant list just fetched");
    let centre = ChannelPlan::Eu
        .channel(ch.0)
        .expect("granted channel")
        .centre;
    cell.set_carrier(Earfcn::from_frequency(Band::Tvws, centre), Dbm(20.0), at);
    ue.cell_found(ApId::new(0), at);
    ue.attach_complete();
    cell.attach(UeId::new(0));
    ch
}

#[test]
fn no_lease_no_transmission() {
    let (_db, client, cell, ue) = fresh_network();
    assert!(!client.may_transmit(Instant::ZERO));
    assert!(!cell.radio_on());
    assert!(!ue.may_transmit(cell.sib(), Dbm(10.0)));
}

#[test]
fn full_bringup_then_instant_client_silence_on_vacate() {
    let (mut db, mut client, mut cell, mut ue) = fresh_network();
    let ch = bring_up(&mut db, &mut client, &mut cell, &mut ue, Instant::ZERO);
    assert!(client.may_transmit(Instant::from_secs(1)));
    assert!(ue.may_transmit(cell.sib(), Dbm(20.0)));

    // Regulator withdraws the channel.
    db.withdraw_channel(ch, None);
    let t = Instant::from_secs(100);
    let state = client
        .refresh(&mut db, t)
        .expect("the in-process database transport is infallible");
    assert!(matches!(state, ClientState::Vacating { .. }));
    // The AP shuts down; the client is silent in the same instant — the
    // §4.2 LTE-architecture compliance property.
    cell.radio_off();
    client.confirm_stopped();
    ue.lost_cell(t);
    assert!(!ue.may_transmit(cell.sib(), Dbm(1.0)));
    assert!(!client.may_transmit(t + Duration::from_millis(1)));
}

#[test]
fn vacate_deadline_is_the_etsi_minute() {
    assert_eq!(ETSI_VACATE_DEADLINE, Duration::from_secs(60));
    let (mut db, mut client, mut cell, mut ue) = fresh_network();
    let ch = bring_up(&mut db, &mut client, &mut cell, &mut ue, Instant::ZERO);
    db.withdraw_channel(ch, None);
    let t = Instant::from_secs(50);
    client
        .refresh(&mut db, t)
        .expect("the in-process database transport is infallible");
    // Even before shutdown completes, transmission past the deadline is
    // forbidden.
    assert!(client.may_transmit(t + Duration::from_secs(59)));
    assert!(!client.may_transmit(t + Duration::from_secs(60)));
}

/// The grant-expiry boundary is *exclusive* on both sides of the
/// protocol: a grant with `expires == now` is already invalid to the
/// client (`valid_at`, `may_transmit`), matching the database, which
/// also treats a withdrawal's `until == now` as already lifted
/// (`now < until`). Pinning this here keeps client and database from
/// drifting apart on the off-by-one that decides regulatory legality.
#[test]
fn grant_expiry_boundary_is_exclusive_end_to_end() {
    let validity = Duration::from_secs(100);
    let mut db = SpectrumDatabase::new(ChannelPlan::Eu, vec![]).with_lease_validity(validity);
    let mut client = DatabaseClient::new("it-ap", 4, GeoLocation::gps(Point::ORIGIN));
    client
        .refresh(&mut db, Instant::ZERO)
        .expect("the in-process database transport is infallible");
    let g = client.grants()[0];
    let last_valid = Instant::from_micros(validity.as_micros() - 1);
    assert!(g.valid_at(last_valid), "valid up to the final microsecond");
    assert!(!g.valid_at(Instant::from_secs(100)), "invalid AT expiry");
    client
        .start_operation(&mut db, g.channel, 30.0, Instant::ZERO)
        .expect("channel comes from the grant list just fetched");
    assert!(client.may_transmit(last_valid));
    assert!(!client.may_transmit(Instant::from_secs(100)));
    // The database side of the same convention: a withdrawal `until`
    // boundary is exclusive too — the channel is available again AT
    // `until`, not one tick later.
    let until = Instant::from_secs(40);
    db.withdraw_channel(g.channel, Some(until));
    assert!(!db.is_available(g.channel, Point::ORIGIN, until - Duration::from_micros(1)));
    assert!(db.is_available(g.channel, Point::ORIGIN, until));
}

/// Zero-duration (and by extension already-expired) grants must be
/// refused outright — no operation starts, and nothing underflows when
/// computing margins against an expiry that is not in the future.
#[test]
fn zero_duration_grants_refused_without_margin_underflow() {
    let mut db = SpectrumDatabase::new(ChannelPlan::Eu, vec![]).with_lease_validity(Duration::ZERO);
    let mut client = DatabaseClient::new("it-ap", 4, GeoLocation::gps(Point::ORIGIN));
    let now = Instant::from_secs(5);
    client
        .refresh(&mut db, now)
        .expect("the in-process database transport is infallible");
    assert!(
        !client.grants().is_empty(),
        "grants are issued, just dead on arrival"
    );
    let ch = client.grants()[0].channel;
    let err = client
        .start_operation(&mut db, ch, 30.0, now)
        .expect_err("a grant expiring now must not start an operation");
    assert_eq!(err, OperationError::NoValidGrant { channel: ch });
    assert!(matches!(client.state(), ClientState::Idle));
    assert!(!client.may_transmit(now));
    // Already-expired: asking later than the expiry must behave the same.
    let err = client
        .start_operation(&mut db, ch, 30.0, now + Duration::from_secs(30))
        .expect_err("an expired grant must not start an operation");
    assert!(matches!(err, OperationError::NoValidGrant { .. }));
    // And the resilient lifecycle never gets on the air under such a
    // database — but also never panics or wedges.
    let mut lc = LeaseLifecycle::new(
        "it-ap-lc",
        4,
        GeoLocation::gps(Point::ORIGIN),
        ChannelPlan::Eu,
        LifecycleConfig::paper_default(30.0),
        1,
    );
    let mut inj = FaultInjector::new(db, FaultPlan::none());
    let mut t = Instant::ZERO;
    while t < Instant::from_secs(120) {
        lc.step(&mut inj, &[], t);
        assert!(
            !lc.may_transmit(t),
            "no transmission on a dead-on-arrival lease"
        );
        t += Duration::from_secs(1);
    }
    assert_eq!(lc.stats().missed_deadlines, 0);
}

/// Grant-cache staleness, end to end: a cached availability response is
/// never served at or past `min(cache TTL, lease expiry)` — both
/// boundaries exclusive — and a client operating off a replayed
/// response anchors its regulatory clock at the response's original
/// timestamp, so transmission still dies exactly at lease expiry.
#[test]
fn cached_grants_never_served_or_honored_past_staleness_boundary() {
    use cellfi::spectrum::cache::AvailabilityCache;
    use cellfi::spectrum::faults::{PawsFailure, PawsTransport};
    use cellfi::spectrum::paws::{
        AvailSpectrumReq, AvailSpectrumResp, DeviceDescriptor, InitReq, InitResp, SpectrumUseNotify,
    };

    /// A transport that only replays cached responses — a stale-serving
    /// worst case: the database is never consulted again.
    struct CacheReplay {
        cache: AvailabilityCache,
    }
    impl PawsTransport for CacheReplay {
        fn init(&mut self, _req: &InitReq, _now: Instant) -> Result<InitResp, PawsFailure> {
            Err(PawsFailure::Unreachable)
        }
        fn avail_spectrum(
            &mut self,
            req: &AvailSpectrumReq,
            now: Instant,
        ) -> Result<AvailSpectrumResp, PawsFailure> {
            self.cache
                .get(&req.location, now)
                .ok_or(PawsFailure::Unreachable)
        }
        fn notify_use(
            &mut self,
            _notify: SpectrumUseNotify,
            _now: Instant,
        ) -> Result<(), PawsFailure> {
            Ok(())
        }
    }

    let validity = Duration::from_secs(10);
    let mut db = SpectrumDatabase::new(ChannelPlan::Eu, vec![]).with_lease_validity(validity);
    let loc = GeoLocation::gps(Point::ORIGIN);
    let req = AvailSpectrumReq {
        device: DeviceDescriptor::master_with_clients("cache-ap", 2),
        location: loc,
        request_time_us: 0,
    };
    let resp = PawsTransport::avail_spectrum(&mut db, &req, Instant::ZERO)
        .expect("the in-process database transport is infallible");
    let expiry = Instant::from_secs(10);

    // Lease expiry binds when the TTL is longer: served up to the final
    // microsecond, never AT expiry.
    let mut long_ttl = AvailabilityCache::new(500.0, Duration::from_secs(60));
    long_ttl.insert(&loc, resp.clone(), Instant::ZERO);
    assert!(long_ttl
        .get(&loc, expiry - Duration::from_micros(1))
        .is_some());
    assert!(
        long_ttl.get(&loc, expiry).is_none(),
        "served AT lease expiry"
    );

    // TTL binds when it is shorter, same exclusive convention.
    let mut short_ttl = AvailabilityCache::new(500.0, Duration::from_secs(3));
    short_ttl.insert(&loc, resp.clone(), Instant::ZERO);
    let ttl_edge = Instant::from_secs(3);
    assert!(short_ttl
        .get(&loc, ttl_edge - Duration::from_micros(1))
        .is_some());
    assert!(
        short_ttl.get(&loc, ttl_edge).is_none(),
        "served AT cache TTL"
    );

    // End to end: a client fed only replayed responses anchors its
    // clock at the response's original timestamp and still stops at
    // lease expiry.
    let mut cache = AvailabilityCache::new(500.0, Duration::from_secs(60));
    cache.insert(&loc, resp, Instant::ZERO);
    let mut replay = CacheReplay { cache };
    let mut client = DatabaseClient::new("cache-ap", 2, loc);
    let t = Instant::from_secs(9);
    client
        .refresh(&mut replay, t)
        .expect("the cached response is still fresh at 9 s");
    assert_eq!(
        client.last_response_time(),
        Some(Instant::ZERO),
        "the compliance anchor is the response's birth, not the replay"
    );
    let ch = client.grants()[0].channel;
    client
        .start_operation(&mut replay, ch, 30.0, t)
        .expect("channel comes from the replayed grant list");
    assert!(client.may_transmit(expiry - Duration::from_micros(1)));
    assert!(
        !client.may_transmit(expiry),
        "a replayed grant must die at its original expiry"
    );
}

#[test]
fn connected_clients_cap_at_20_dbm() {
    let (mut db, mut client, mut cell, mut ue) = fresh_network();
    bring_up(&mut db, &mut client, &mut cell, &mut ue, Instant::ZERO);
    assert!(matches!(ue.state(), RrcState::Connected { .. }));
    assert!(ue.may_transmit(cell.sib(), Dbm(20.0)));
    assert!(!ue.may_transmit(cell.sib(), Dbm(20.1)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wherever the AP sits and whenever it asks, a channel owned by an
    /// active incumbent within range is never granted.
    #[test]
    fn incumbents_never_granted(
        ap_x in -5_000.0..5_000.0f64,
        ap_y in -5_000.0..5_000.0f64,
        t_secs in 0u64..100_000,
        mic_start in 0u64..50_000,
        mic_len in 1u64..50_000,
    ) {
        let mic_channel = ChannelId::new(40);
        let db = SpectrumDatabase::new(
            ChannelPlan::Eu,
            vec![
                Incumbent::TvStation {
                    channel: ChannelId::new(30),
                    location: Point::ORIGIN,
                    protected_radius: 8_000.0,
                },
                Incumbent::WirelessMic {
                    channel: mic_channel,
                    location: Point::ORIGIN,
                    protected_radius: 8_000.0,
                    events: vec![(
                        Instant::from_secs(mic_start),
                        Instant::from_secs(mic_start + mic_len),
                    )],
                },
            ],
        );
        let mut db = db;
        let mut client =
            DatabaseClient::new("prop-ap", 1, GeoLocation::gps(Point::new(ap_x, ap_y)));
        let now = Instant::from_secs(t_secs);
        client
            .refresh(&mut db, now)
            .expect("the in-process database transport is infallible");
        let dist = Point::new(ap_x, ap_y).distance(Point::ORIGIN).value();
        // Within the protected contour (plus the client's own location
        // uncertainty), protected channels must be absent.
        if dist <= 8_000.0 - 15.0 {
            prop_assert!(
                client.grants().iter().all(|g| g.channel != ChannelId::new(30)),
                "TV channel granted inside contour at {dist} m"
            );
            let mic_active =
                (mic_start..mic_start + mic_len).contains(&t_secs);
            if mic_active {
                prop_assert!(
                    client.grants().iter().all(|g| g.channel != mic_channel),
                    "mic channel granted during event"
                );
            }
        }
        // Every grant carries the ETSI power cap and a finite lease.
        for g in client.grants() {
            prop_assert!(g.max_eirp_dbm <= 36.0);
            prop_assert!(g.valid_at(now));
        }
    }

    /// A UE can only ever transmit while Connected under a radiating SIB
    /// and within both power caps, regardless of event ordering.
    #[test]
    fn ue_transmission_invariant(
        power in 0.0..40.0f64,
        drop_cell in any::<bool>(),
        bar_cell in any::<bool>(),
    ) {
        let (mut db, mut client, mut cell, mut ue) = fresh_network();
        bring_up(&mut db, &mut client, &mut cell, &mut ue, Instant::ZERO);
        if bar_cell {
            // Cell bars itself (e.g. during vacate wind-down).
            let mut sib = *cell.sib().expect("radio on");
            sib.barred = true;
            // Reinstall via set_carrier is not possible for barred; check
            // the predicate directly.
            prop_assert!(!ue.may_transmit(Some(&sib), Dbm(power.min(20.0))));
        }
        if drop_cell {
            cell.radio_off();
            ue.lost_cell(Instant::from_secs(1));
        }
        let allowed = ue.may_transmit(cell.sib(), Dbm(power));
        if allowed {
            prop_assert!(!drop_cell, "transmitted after cell loss");
            prop_assert!(power <= 20.0, "transmitted at {power} dBm");
            prop_assert!(cell.radio_on());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// The ISSUE 5 tentpole property: across arbitrary generated fault
    /// schedules (losses, delays, outages, transient errors, truncated
    /// grant lists, mid-lease revocations), the resilient lifecycle
    /// never transmits without a valid lease — ground truth checked
    /// against the database every simulated second, allowing only the
    /// ETSI one-minute vacate window after an unobserved withdrawal —
    /// and every vacate lands with margin ≥ 0 (no missed deadlines).
    #[test]
    fn lease_lifecycle_compliant_under_arbitrary_fault_schedules(
        fault_seed in any::<u64>(),
        jitter_seed in any::<u64>(),
        intensity in 0.0..1.0f64,
        extra_outages in proptest::collection::vec((0u64..500, 1u64..120), 0..4),
        extra_revocations in proptest::collection::vec(0u64..500, 0..4),
    ) {
        let horizon = Instant::from_secs(500);
        let mut plan = FaultPlan::at_intensity(fault_seed, intensity, horizon);
        for (start, len) in extra_outages {
            plan.outages
                .push((Instant::from_secs(start), Instant::from_secs(start + len)));
        }
        for at in extra_revocations {
            plan.revocations.push((Instant::from_secs(at), None));
        }
        plan.revocations.sort_by_key(|(at, _)| at.as_micros());
        let loc = Point::new(100_000.0, 0.0);
        let mut inj = FaultInjector::new(SpectrumDatabase::new(ChannelPlan::Eu, vec![]), plan);
        let mut lc = LeaseLifecycle::new(
            "prop-ap",
            4,
            GeoLocation::gps(loc),
            ChannelPlan::Eu,
            LifecycleConfig::paper_default(30.0),
            jitter_seed,
        );
        let tick = Duration::from_secs(1);
        let mut unavailable_since: Option<Instant> = None;
        let mut t = Instant::ZERO;
        while t < horizon {
            inj.advance_to(t);
            lc.step(&mut inj, &[], t);
            let on_channel = match lc.client().state() {
                ClientState::Operating { channel, .. } => Some(channel),
                ClientState::Vacating { channel, .. } => Some(channel),
                ClientState::Idle => None,
            };
            match (on_channel, lc.may_transmit(t)) {
                (None, transmitting) => {
                    prop_assert!(!transmitting, "transmitting with no lease at {t:?}");
                    unavailable_since = None;
                }
                (Some(_), false) => unavailable_since = None,
                (Some(ch), true) => {
                    if inj.database().is_available(ch, loc, t) {
                        unavailable_since = None;
                    } else {
                        let since = *unavailable_since.get_or_insert(t);
                        prop_assert!(
                            t.duration_since(since) <= ETSI_VACATE_DEADLINE,
                            "transmitting on {ch} unavailable since {since:?} at {t:?}"
                        );
                    }
                }
            }
            t += tick;
        }
        let stats = lc.stats();
        prop_assert!(stats.missed_deadlines == 0, "a vacate missed its deadline");
        if stats.vacates > 0 {
            prop_assert!(stats.min_vacate_margin_us < u64::MAX);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The fleet tentpole property, multi-AP edition: N lifecycles
    /// multiplexed over independently faulted database shards — through
    /// sharded transports, response caches and desynchronized renewals —
    /// still satisfy the single-AP regulatory contract AP by AP. Ground
    /// truth is re-derived here, outside the fleet's own audit: every
    /// transmitting AP's channel is checked against its shard's database
    /// each tick, allowing only the ETSI one-minute window after an
    /// unobserved withdrawal; zero vacate deadlines may be missed, and
    /// the fleet's internal lease-gate counter must agree.
    #[test]
    fn multi_ap_fleet_compliant_under_per_shard_fault_schedules(
        master in any::<u64>(),
        n_aps in 6usize..16,
        n_shards in 2usize..5,
        intensity in 0.0..1.0f64,
    ) {
        use cellfi::types::rng::SeedSeq;
        let horizon = Instant::from_secs(40);
        let tick = Duration::from_millis(250);
        let profile = RuleProfile::etsi().with_lease_validity(Duration::from_secs(15));
        let lifecycle = LifecycleConfig {
            poll: Duration::from_secs(2),
            renew_fraction: 0.5,
            backoff_base: Duration::from_millis(500),
            backoff_max: Duration::from_secs(4),
            jitter_frac: 0.25,
            vacate_margin: Duration::from_millis(500),
            ..LifecycleConfig::paper_default(36.0)
        };
        let config = FleetConfig {
            n_shards,
            cache_ttl: Duration::from_secs(2),
            ..FleetConfig::new(profile, lifecycle)
        };
        let locations: Vec<GeoLocation> = (0..n_aps)
            .map(|i| {
                GeoLocation::gps(Point::new(
                    100_000.0 + (i % 4) as f64 * 200.0,
                    (i / 4) as f64 * 200.0,
                ))
            })
            .collect();
        let seeds = SeedSeq::new(master).child("fleet-compliance");
        let plans: Vec<FaultPlan> = (0..n_shards)
            .map(|s| {
                FaultPlan::at_intensity(
                    seeds.seed_indexed("shard-faults", s as u64),
                    intensity,
                    horizon,
                )
            })
            .collect();
        let mut fleet = SpectrumFleet::new(config, &locations, plans, &seeds);
        let mut unavailable_since: Vec<Option<Instant>> = vec![None; n_aps];
        let mut t = Instant::ZERO;
        while t < horizon {
            fleet.step(t);
            for i in 0..n_aps {
                let on_channel = match fleet.lifecycle(i).client().state() {
                    ClientState::Operating { channel, .. } => Some(channel),
                    ClientState::Vacating { channel, .. } => Some(channel),
                    ClientState::Idle => None,
                };
                match (on_channel, fleet.may_transmit(i, t)) {
                    (None, transmitting) => {
                        prop_assert!(!transmitting, "AP {i} transmitting with no lease at {t:?}");
                        unavailable_since[i] = None;
                    }
                    (Some(_), false) => unavailable_since[i] = None,
                    (Some(ch), true) => {
                        let shard = fleet.shard_of(i);
                        let point = locations[i].point();
                        if fleet.shard_database_mut(shard).is_available(ch, point, t) {
                            unavailable_since[i] = None;
                        } else {
                            let since = *unavailable_since[i].get_or_insert(t);
                            prop_assert!(
                                t.duration_since(since) <= ETSI_VACATE_DEADLINE,
                                "AP {i} on {ch} unavailable since {since:?} at {t:?}"
                            );
                        }
                    }
                }
            }
            t += tick;
        }
        let stats = fleet.finish(horizon);
        prop_assert!(
            stats.lifecycles.missed_deadlines == 0,
            "a fleet vacate missed its deadline"
        );
        prop_assert!(
            stats.lease_gate_breaches == 0,
            "the fleet's internal audit disagrees with ground truth"
        );
    }
}
