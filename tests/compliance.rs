//! TVWS regulatory-compliance integration tests.
//!
//! These span `cellfi-spectrum`, `cellfi-lte` and `cellfi-types` and pin
//! the properties the paper's §2/§4.2 argue make an LTE-based
//! architecture *naturally* compliant:
//!
//! * no device transmits without a valid database lease;
//! * transmissions stop within the ETSI minute of losing the channel;
//! * clients are silent the instant their cell stops radiating;
//! * client EIRP never exceeds the TVWS 20 dBm cap;
//! * incumbents are never granted away, regardless of load.

use cellfi::lte::cell::{Cell, CellConfig};
use cellfi::lte::earfcn::{Band, Earfcn};
use cellfi::lte::ue::{RrcState, Ue, UeTimings};
use cellfi::spectrum::client::{ClientState, DatabaseClient, ETSI_VACATE_DEADLINE};
use cellfi::spectrum::database::SpectrumDatabase;
use cellfi::spectrum::incumbent::Incumbent;
use cellfi::spectrum::paws::GeoLocation;
use cellfi::spectrum::plan::ChannelPlan;
use cellfi::types::geo::Point;
use cellfi::types::time::{Duration, Instant};
use cellfi::types::units::Dbm;
use cellfi::types::{ApId, ChannelId, UeId};
use proptest::prelude::*;

fn fresh_network() -> (SpectrumDatabase, DatabaseClient, Cell, Ue) {
    let db = SpectrumDatabase::new(ChannelPlan::Eu, vec![]);
    let client = DatabaseClient::new("it-ap", 4, GeoLocation::gps(Point::ORIGIN));
    let cell = Cell::new(CellConfig::paper_default(ApId::new(0)));
    let ue = Ue::new(UeId::new(0), UeTimings::single_band(), Instant::ZERO);
    (db, client, cell, ue)
}

fn bring_up(
    db: &mut SpectrumDatabase,
    client: &mut DatabaseClient,
    cell: &mut Cell,
    ue: &mut Ue,
    at: Instant,
) -> ChannelId {
    client.refresh(db, at);
    let ch = client.grants()[0].channel;
    client
        .start_operation(db, ch, 36.0, at)
        .expect("channel comes from the grant list just fetched");
    let centre = ChannelPlan::Eu
        .channel(ch.0)
        .expect("granted channel")
        .centre;
    cell.set_carrier(Earfcn::from_frequency(Band::Tvws, centre), Dbm(20.0), at);
    ue.cell_found(ApId::new(0), at);
    ue.attach_complete();
    cell.attach(UeId::new(0));
    ch
}

#[test]
fn no_lease_no_transmission() {
    let (_db, client, cell, ue) = fresh_network();
    assert!(!client.may_transmit(Instant::ZERO));
    assert!(!cell.radio_on());
    assert!(!ue.may_transmit(cell.sib(), Dbm(10.0)));
}

#[test]
fn full_bringup_then_instant_client_silence_on_vacate() {
    let (mut db, mut client, mut cell, mut ue) = fresh_network();
    let ch = bring_up(&mut db, &mut client, &mut cell, &mut ue, Instant::ZERO);
    assert!(client.may_transmit(Instant::from_secs(1)));
    assert!(ue.may_transmit(cell.sib(), Dbm(20.0)));

    // Regulator withdraws the channel.
    db.withdraw_channel(ch, None);
    let t = Instant::from_secs(100);
    let state = client.refresh(&db, t);
    assert!(matches!(state, ClientState::Vacating { .. }));
    // The AP shuts down; the client is silent in the same instant — the
    // §4.2 LTE-architecture compliance property.
    cell.radio_off();
    client.confirm_stopped();
    ue.lost_cell(t);
    assert!(!ue.may_transmit(cell.sib(), Dbm(1.0)));
    assert!(!client.may_transmit(t + Duration::from_millis(1)));
}

#[test]
fn vacate_deadline_is_the_etsi_minute() {
    assert_eq!(ETSI_VACATE_DEADLINE, Duration::from_secs(60));
    let (mut db, mut client, mut cell, mut ue) = fresh_network();
    let ch = bring_up(&mut db, &mut client, &mut cell, &mut ue, Instant::ZERO);
    db.withdraw_channel(ch, None);
    let t = Instant::from_secs(50);
    client.refresh(&db, t);
    // Even before shutdown completes, transmission past the deadline is
    // forbidden.
    assert!(client.may_transmit(t + Duration::from_secs(59)));
    assert!(!client.may_transmit(t + Duration::from_secs(60)));
}

#[test]
fn connected_clients_cap_at_20_dbm() {
    let (mut db, mut client, mut cell, mut ue) = fresh_network();
    bring_up(&mut db, &mut client, &mut cell, &mut ue, Instant::ZERO);
    assert!(matches!(ue.state(), RrcState::Connected { .. }));
    assert!(ue.may_transmit(cell.sib(), Dbm(20.0)));
    assert!(!ue.may_transmit(cell.sib(), Dbm(20.1)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wherever the AP sits and whenever it asks, a channel owned by an
    /// active incumbent within range is never granted.
    #[test]
    fn incumbents_never_granted(
        ap_x in -5_000.0..5_000.0f64,
        ap_y in -5_000.0..5_000.0f64,
        t_secs in 0u64..100_000,
        mic_start in 0u64..50_000,
        mic_len in 1u64..50_000,
    ) {
        let mic_channel = ChannelId::new(40);
        let db = SpectrumDatabase::new(
            ChannelPlan::Eu,
            vec![
                Incumbent::TvStation {
                    channel: ChannelId::new(30),
                    location: Point::ORIGIN,
                    protected_radius: 8_000.0,
                },
                Incumbent::WirelessMic {
                    channel: mic_channel,
                    location: Point::ORIGIN,
                    protected_radius: 8_000.0,
                    events: vec![(
                        Instant::from_secs(mic_start),
                        Instant::from_secs(mic_start + mic_len),
                    )],
                },
            ],
        );
        let mut client =
            DatabaseClient::new("prop-ap", 1, GeoLocation::gps(Point::new(ap_x, ap_y)));
        let now = Instant::from_secs(t_secs);
        client.refresh(&db, now);
        let dist = Point::new(ap_x, ap_y).distance(Point::ORIGIN).value();
        // Within the protected contour (plus the client's own location
        // uncertainty), protected channels must be absent.
        if dist <= 8_000.0 - 15.0 {
            prop_assert!(
                client.grants().iter().all(|g| g.channel != ChannelId::new(30)),
                "TV channel granted inside contour at {dist} m"
            );
            let mic_active =
                (mic_start..mic_start + mic_len).contains(&t_secs);
            if mic_active {
                prop_assert!(
                    client.grants().iter().all(|g| g.channel != mic_channel),
                    "mic channel granted during event"
                );
            }
        }
        // Every grant carries the ETSI power cap and a finite lease.
        for g in client.grants() {
            prop_assert!(g.max_eirp_dbm <= 36.0);
            prop_assert!(g.valid_at(now));
        }
    }

    /// A UE can only ever transmit while Connected under a radiating SIB
    /// and within both power caps, regardless of event ordering.
    #[test]
    fn ue_transmission_invariant(
        power in 0.0..40.0f64,
        drop_cell in any::<bool>(),
        bar_cell in any::<bool>(),
    ) {
        let (mut db, mut client, mut cell, mut ue) = fresh_network();
        bring_up(&mut db, &mut client, &mut cell, &mut ue, Instant::ZERO);
        if bar_cell {
            // Cell bars itself (e.g. during vacate wind-down).
            let mut sib = *cell.sib().expect("radio on");
            sib.barred = true;
            // Reinstall via set_carrier is not possible for barred; check
            // the predicate directly.
            prop_assert!(!ue.may_transmit(Some(&sib), Dbm(power.min(20.0))));
        }
        if drop_cell {
            cell.radio_off();
            ue.lost_cell(Instant::from_secs(1));
        }
        let allowed = ue.may_transmit(cell.sib(), Dbm(power));
        if allowed {
            prop_assert!(!drop_cell, "transmitted after cell loss");
            prop_assert!(power <= 20.0, "transmitted at {power} dBm");
            prop_assert!(cell.radio_on());
        }
    }
}
