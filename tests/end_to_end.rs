//! End-to-end pipeline test: database → channel selection → LTE bring-up
//! → interference management → data delivery, all through the public
//! facade crate, exactly as the quickstart example wires it.

use cellfi::im::manager::{ClientEpochStats, EpochInput, InterferenceManager, ManagerConfig};
use cellfi::lte::cell::{Cell, CellConfig};
use cellfi::lte::earfcn::{Band, Earfcn};
use cellfi::lte::scheduler::Allocation;
use cellfi::spectrum::client::DatabaseClient;
use cellfi::spectrum::database::SpectrumDatabase;
use cellfi::spectrum::paws::GeoLocation;
use cellfi::spectrum::plan::ChannelPlan;
use cellfi::spectrum::selection::{ChannelSelector, ListenObservation, OccupantKind};
use cellfi::types::geo::Point;
use cellfi::types::time::Instant;
use cellfi::types::units::Dbm;
use cellfi::types::{ApId, ChannelId, UeId};

#[test]
fn full_pipeline_from_database_to_scheduled_bits() {
    // 1. Database interaction over PAWS.
    let mut db = SpectrumDatabase::new(ChannelPlan::Us, vec![]);
    let mut dbc = DatabaseClient::new("e2e-ap", 2, GeoLocation::gps(Point::ORIGIN));
    dbc.refresh(&mut db, Instant::ZERO)
        .expect("the in-process database transport is infallible");
    assert_eq!(dbc.grants().len(), ChannelPlan::Us.len());

    // 2. Channel selection: a full network-listen survey — one CellFi
    // neighbour, one idle channel, everything else busy with foreign
    // (802.11af) networks. The idle channel must win.
    let listen: Vec<ListenObservation> = ChannelPlan::Us
        .channels()
        .iter()
        .map(|ch| match ch.id.0 {
            14 => ListenObservation {
                channel: ch.id,
                energy: Dbm(-70.0),
                occupant: OccupantKind::CellFi,
            },
            15 => ListenObservation {
                channel: ch.id,
                energy: Dbm(-99.0),
                occupant: OccupantKind::Idle,
            },
            _ => ListenObservation {
                channel: ch.id,
                energy: Dbm(-60.0),
                occupant: OccupantKind::Foreign,
            },
        })
        .collect();
    let choice = ChannelSelector::new(ChannelPlan::Us)
        .choose(dbc.grants(), dbc.grants(), &listen, Instant::ZERO)
        .expect("channels granted");
    assert_eq!(choice.channel, ChannelId::new(15));
    dbc.start_operation(&mut db, choice.channel, 36.0, Instant::ZERO)
        .expect("the selector only returns granted channels");
    assert_eq!(db.notifications().len(), 1, "SPECTRUM_USE_NOTIFY sent");

    // 3. LTE bring-up on the selected carrier.
    let mut cell = Cell::new(CellConfig::paper_default(ApId::new(0)));
    let carrier = Earfcn::from_frequency(Band::Tvws, choice.centre);
    cell.set_carrier(carrier, Dbm(20.0), Instant::ZERO);
    cell.attach(UeId::new(0));
    cell.attach(UeId::new(1));
    cell.enqueue(UeId::new(0), 10_000);
    cell.enqueue(UeId::new(1), 10_000);

    // 4. Interference management constrains the scheduler.
    let n_sub = cell.grid().num_subchannels();
    let mut im = InterferenceManager::new(n_sub, ManagerConfig::default(), 7);
    let input = EpochInput {
        own_active: 2,
        heard_active: 4, // a neighbour's two clients overheard via PRACH
        clients: (0..2)
            .map(|u| ClientEpochStats {
                ue: UeId::new(u),
                frac_scheduled: vec![0.0; n_sub as usize],
                interfered: vec![false; n_sub as usize],
                est_throughput: vec![500.0; n_sub as usize],
                free_streak: vec![0; n_sub as usize],
            })
            .collect(),
    };
    let decision = im.epoch(&input);
    assert_eq!(
        decision.share, 6,
        "2 of 4 heard clients → half of 13, floored"
    );
    cell.set_allowed_mask(decision.mask.clone());

    // 5. The stock scheduler serves within the mask and bits flow.
    let rates: Vec<Vec<f64>> = (0..2).map(|_| vec![800.0; n_sub as usize]).collect();
    let alloc: Allocation = cell.schedule_downlink(&rates);
    assert!(alloc.used_count() > 0 && alloc.used_count() <= 6);
    for (s, assigned) in alloc.assignment.iter().enumerate() {
        if assigned.is_some() {
            assert!(decision.mask[s], "scheduled outside the IM mask");
        }
    }
    let before = cell.total_queued_bits();
    for (s, assigned) in alloc.assignment.iter().enumerate() {
        if let Some(ue) = assigned {
            cell.deliver(*ue, rates[0][s] as u64);
        }
    }
    assert!(cell.total_queued_bits() < before, "no bits delivered");
}

#[test]
fn facade_reexports_cover_every_subsystem() {
    // Compile-time check that the facade exposes each crate; the bodies
    // just touch one symbol from each.
    let _ = cellfi::types::units::Dbm(0.0);
    let _ = cellfi::propagation::pathloss::PathLossModel::tvws_urban();
    let _ = cellfi::lte::amc::CqiTable;
    let _ = cellfi::wifi::phy::McsTable::new(cellfi::wifi::phy::WifiBand::Af6);
    let _ = cellfi::spectrum::plan::ChannelPlan::Eu;
    let _ = cellfi::im::share::fair_share(13, 1, 2);
    let _ = cellfi::sim::metrics::Cdf::new(vec![1.0]);
}
