//! Co-existence integration tests: the full simulator stack.
//!
//! These drive `cellfi-sim`'s engines over controlled topologies and pin
//! the system-level behaviours the paper claims, across crate
//! boundaries (core ↔ lte ↔ propagation ↔ sim).

use cellfi::propagation::antenna::Antenna;
use cellfi::propagation::link::LinkEnd;
use cellfi::sim::engine::{ImMode, LteEngine, LteEngineConfig};
use cellfi::sim::topology::{Scenario, ScenarioConfig};
use cellfi::types::geo::Point;
use cellfi::types::rng::SeedSeq;
use cellfi::types::time::Instant;
use cellfi::types::units::Db;

/// Three operators in a row, 900 m apart: 0—1—2 conflict chain. The end
/// cells' clients sit 1.5 km from the far AP — outside the ~1.26 km
/// 3 dB-degradation radius — so the ends do not conflict.
fn chain_scenario() -> Scenario {
    let mut cfg = ScenarioConfig::paper_default(3, 0);
    cfg.shadowing_sigma = 0.0;
    cfg.fading = false;
    let mut s = Scenario::generate(cfg, SeedSeq::new(17));
    s.aps = vec![
        LinkEnd::new(
            0,
            Point::new(0.0, 0.0),
            Antenna::Isotropic { gain: Db(6.0) },
        ),
        LinkEnd::new(
            1,
            Point::new(900.0, 0.0),
            Antenna::Isotropic { gain: Db(6.0) },
        ),
        LinkEnd::new(
            2,
            Point::new(1_800.0, 0.0),
            Antenna::Isotropic { gain: Db(6.0) },
        ),
    ];
    s.ues = vec![
        LinkEnd::new(1000, Point::new(300.0, 40.0), Antenna::client()),
        LinkEnd::new(1001, Point::new(900.0, 200.0), Antenna::client()),
        LinkEnd::new(1002, Point::new(1_500.0, -40.0), Antenna::client()),
    ];
    s.assoc = vec![0, 1, 2];
    s
}

fn run(mode: ImMode, secs: u64) -> LteEngine {
    let mut e = LteEngine::new(
        chain_scenario(),
        LteEngineConfig::paper_default(mode),
        SeedSeq::new(5),
    );
    e.backlog_all(u64::MAX / 4);
    e.run_until(Instant::from_secs(secs));
    e
}

fn overlap(a: &[bool], b: &[bool]) -> usize {
    a.iter().zip(b).filter(|(x, y)| **x && **y).count()
}

#[test]
fn chain_converges_with_adjacent_cells_disjoint() {
    let e = run(ImMode::CellFi, 25);
    let m0 = e.cell_mask(0);
    let m1 = e.cell_mask(1);
    let m2 = e.cell_mask(2);
    assert!(overlap(&m0, &m1) <= 1, "cells 0/1 overlap: {m0:?} {m1:?}");
    assert!(overlap(&m1, &m2) <= 1, "cells 1/2 overlap: {m1:?} {m2:?}");
}

#[test]
fn everyone_served_under_cellfi() {
    let e = run(ImMode::CellFi, 25);
    for (u, &bps) in e.throughputs_bps().iter().enumerate() {
        assert!(bps > 100_000.0, "ue {u} only {bps} bps");
    }
}

#[test]
fn cellfi_beats_plain_lte_for_the_worst_client() {
    let plain = run(ImMode::PlainLte, 25);
    let cellfi = run(ImMode::CellFi, 25);
    let worst = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        worst(&cellfi.throughputs_bps()) > worst(&plain.throughputs_bps()),
        "CellFi should lift the floor: {:?} vs {:?}",
        cellfi.throughputs_bps(),
        plain.throughputs_bps()
    );
}

#[test]
fn oracle_reuses_spectrum_across_the_chain_ends() {
    let e = run(ImMode::Oracle, 5);
    let m0 = e.cell_mask(0);
    let m1 = e.cell_mask(1);
    let m2 = e.cell_mask(2);
    assert_eq!(overlap(&m0, &m1), 0);
    assert_eq!(overlap(&m1, &m2), 0);
    // The non-adjacent ends share subchannels (spatial re-use).
    assert!(overlap(&m0, &m2) > 0, "ends should re-use: {m0:?} {m2:?}");
}

#[test]
fn paired_runs_share_identical_channel_realizations() {
    // The same scenario under two modes must see identical mean gains —
    // the paired-comparison property the evaluation depends on.
    let a = run(ImMode::PlainLte, 1);
    let b = run(ImMode::CellFi, 1);
    for u in 0..3 {
        assert_eq!(
            a.ue_snr(u).value(),
            b.ue_snr(u).value(),
            "ue {u} sees different channels under different modes"
        );
    }
}

#[test]
fn engine_is_reproducible_across_runs() {
    let a = run(ImMode::CellFi, 5);
    let b = run(ImMode::CellFi, 5);
    assert_eq!(a.delivered_bits(), b.delivered_bits());
    assert_eq!(a.manager_hops(), b.manager_hops());
}

#[test]
fn hops_stop_after_convergence() {
    let mut e = LteEngine::new(
        chain_scenario(),
        LteEngineConfig::paper_default(ImMode::CellFi),
        SeedSeq::new(5),
    );
    e.backlog_all(u64::MAX / 4);
    e.run_until(Instant::from_secs(30));
    let hops_at_30: u64 = e.manager_hops().iter().sum();
    e.run_until(Instant::from_secs(40));
    let hops_at_40: u64 = e.manager_hops().iter().sum();
    let tail = hops_at_40 - hops_at_30;
    assert!(
        tail <= 3,
        "still hopping {tail} times in 10 s after 30 s of convergence time"
    );
}
