//! Observability contracts: the sampled trace stream, the histogram
//! sketches of its remainder, and the invariant-monitor verdicts are
//! all pure functions of the seed — independent of worker thread count
//! — and the trace query engine's output over a committed trace is
//! pinned byte for byte.

use cellfi::obs::query::{run_query, Agg, Query};
use cellfi::obs::trace::{Event, SampleSpec, SketchSet};
use cellfi::sim::experiments::trace_run::{traced_opts, TraceOptions};
use cellfi::sim::experiments::ExpConfig;
use cellfi::sim::parallel::with_threads;
use proptest::prelude::*;

/// One sampled + monitored fig9a trace run at a forced worker count.
fn obs_run(threads: usize) -> (String, String, String) {
    with_threads(threads, || {
        let out = traced_opts(
            "fig9a",
            ExpConfig {
                seed: 7,
                quick: true,
            },
            &TraceOptions {
                detail: false,
                sample: SampleSpec { keep: 1, out_of: 3 },
                monitors: true,
                flight_cap: 64,
            },
        )
        .expect("fig9a is a known experiment");
        assert!(
            out.violation.is_none(),
            "healthy fig9a run must not violate invariants: {}",
            out.verdict
        );
        (out.events, out.sketches, out.verdict)
    })
}

#[test]
fn sampled_trace_sketches_and_verdict_are_thread_invariant() {
    let t1 = obs_run(1);
    let t2 = obs_run(2);
    let t8 = obs_run(8);
    assert_eq!(t1, t2, "threads 1 vs 2 diverged");
    assert_eq!(t1, t8, "threads 1 vs 8 diverged");
    assert!(!t1.0.is_empty(), "1/3 sampling kept no events at all");
    assert!(
        !t1.1.is_empty(),
        "1/3 sampling dropped nothing into the sketches"
    );
    assert!(t1.2.contains("armed=4"), "verdict line: {}", t1.2);
    assert!(t1.2.contains("violations=0"), "verdict line: {}", t1.2);
}

#[test]
fn stratified_sampling_partitions_the_full_stream() {
    // The kept stream is a strict per-line subset of the full stream,
    // and kept-event + sketched-event counts add back up to the total:
    // sampling stratifies, it never invents or double-counts.
    let full = traced_opts(
        "fig9a",
        ExpConfig {
            seed: 7,
            quick: true,
        },
        &TraceOptions::default(),
    )
    .expect("fig9a is a known experiment");
    let (kept, sketches, _) = obs_run(1);
    let full_lines: std::collections::BTreeSet<&str> = full.events.lines().collect();
    for line in kept.lines() {
        assert!(full_lines.contains(line), "sampled line not in full trace");
    }
    let sketched: u64 = sketches
        .lines()
        .map(|l| {
            l.split("\"count\":")
                .nth(1)
                .and_then(|r| r.split(',').next())
                .and_then(|n| n.parse::<u64>().ok())
                .expect("sketch lines carry a count")
        })
        .sum();
    assert_eq!(
        kept.lines().count() as u64 + sketched,
        full.events.lines().count() as u64,
        "kept + sketched must account for every event exactly once"
    );
}

/// Build a sketch set from per-UE SINR observations.
fn sketch_of(vals: &[(u32, f64)]) -> SketchSet {
    let mut s = SketchSet::default();
    for &(ue, sinr_db) in vals {
        s.add(&Event::CqiInterference {
            ue,
            subchannel: 0,
            sinr_db,
            clean_db: 0.0,
        });
    }
    s
}

proptest! {
    #[test]
    fn sketch_merge_is_associative_and_commutative(
        a in proptest::collection::vec((0u32..64, -80.0f64..80.0), 0..40),
        b in proptest::collection::vec((0u32..64, -80.0f64..80.0), 0..40),
        c in proptest::collection::vec((0u32..64, -80.0f64..80.0), 0..40),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);
        // c ⊕ b ⊕ a — merge order must not matter, since worker sinks
        // absorb in entity order but could in principle be reordered.
        let mut rev = sc;
        rev.merge(&sb);
        rev.merge(&sa);
        prop_assert_eq!(&left, &rev);
        prop_assert_eq!(left.to_jsonl(), right.to_jsonl());
    }
}

#[test]
fn trace_query_on_committed_fig9a_trace_matches_golden() {
    let trace = include_str!("goldens/TRACE_fig9a.jsonl");
    let by_kind = run_query(
        trace,
        &Query {
            group_by: Some("ev".to_owned()),
            agg: Agg::Count,
            ..Query::default()
        },
    )
    .expect("committed trace parses");
    let q90 = run_query(
        trace,
        &Query {
            kind: Some("cqi_interf".to_owned()),
            group_by: Some("ue".to_owned()),
            agg: Agg::Quantile(0.9, "sinr_db".to_owned()),
            ..Query::default()
        },
    )
    .expect("committed trace parses");
    let got = format!("{by_kind}{q90}");
    let golden = include_str!("goldens/QUERY_fig9a.txt");
    assert!(
        got == golden,
        "trace-query output drifted from tests/goldens/QUERY_fig9a.txt:\n{got}"
    );
}
