//! # cellfi — facade crate
//!
//! Re-exports the whole CellFi workspace behind one dependency, so the
//! examples and downstream users can write `use cellfi::...` and get the
//! contribution ([`im`]) plus every substrate it runs on.
//!
//! See `DESIGN.md` at the repository root for the system inventory and the
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.

#![forbid(unsafe_code)]

/// Foundation types: units, time, geometry, ids, seeded RNG.
pub use cellfi_types as types;

/// Radio propagation: path loss, shadowing, fading, antennas, noise.
pub use cellfi_propagation as propagation;

/// LTE system model: resource grid, TDD, CQI/AMC, HARQ, PRACH, schedulers.
pub use cellfi_lte as lte;

/// 802.11ac/af CSMA/CA baseline simulator.
pub use cellfi_wifi as wifi;

/// TVWS spectrum database (PAWS), incumbents, leases, channel selection.
pub use cellfi_spectrum as spectrum;

/// The paper's contribution: distributed interference management.
pub use cellfi_core as im;

/// Observability: deterministic event tracing, metrics, profiling spans.
pub use cellfi_obs as obs;

/// Network simulator and experiment drivers for every table and figure.
pub use cellfi_sim as sim;
