//! Debug harness: prints per-client web-workload progress over a short run.

use cellfi_sim::engine::{ImMode, LteEngine, LteEngineConfig};
use cellfi_sim::topology::{Scenario, ScenarioConfig};
use cellfi_sim::workload::{WebWorkload, WebWorkloadConfig};
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::Instant;

fn main() {
    let seeds = SeedSeq::new(20171212).child("fig9c").child("topo0");
    let scenario = Scenario::generate(ScenarioConfig::paper_default(14, 6), seeds);
    let n = scenario.n_ues();
    let assoc = scenario.assoc.clone();
    let mut e = LteEngine::new(
        scenario,
        LteEngineConfig::paper_default(ImMode::CellFi),
        seeds.child("cellfi"),
    );
    let mut web = WebWorkload::new(WebWorkloadConfig::default(), n, seeds.child("web"));
    let mut bit_acc = vec![0u64; n];
    let mut handed = vec![0u64; n];
    let mut page_start: Vec<Option<(f64, u64, usize)>> = vec![None; n]; // (t, bytes, mask at start)
    let mut logged = 0;
    while e.now() < Instant::from_secs(40) {
        for (c, bytes) in web.poll(e.now()) {
            let mask = e.cell_mask(assoc[c]).iter().filter(|&&b| b).count();
            page_start[c] = Some((e.now().as_secs_f64(), bytes, mask));
            e.enqueue(c, bytes * 8);
        }
        for (u, bits) in e.step_subframe() {
            bit_acc[u] += bits;
            let b = bit_acc[u] / 8;
            if b > handed[u] {
                web.delivered(u, b - handed[u], e.now());
                handed[u] = b;
            }
        }
        // check completions
        while logged < web.completed.len() && logged < 40 {
            let p = &web.completed[logged];
            let (t0, bytes, mask0) = page_start[p.client].unwrap();
            let mask_now = e.cell_mask(assoc[p.client]).iter().filter(|&&b| b).count();
            println!(
                "t={:6.1} ue{:3} cell{:2} page {:7}B load {:5.2}s mask {}->{} eff {:.0} kbps",
                t0,
                p.client,
                assoc[p.client],
                bytes,
                p.duration().as_secs_f64(),
                mask0,
                mask_now,
                bytes as f64 * 8.0 / p.duration().as_secs_f64().max(1e-9) / 1e3
            );
            logged += 1;
        }
    }
    println!(
        "completed {} outstanding {}",
        web.completed.len(),
        web.outstanding()
    );
}
