//! One clock loop for every system under comparison.
//!
//! The paper's evaluation is *paired*: 802.11af, plain LTE, CellFi, the
//! oracle, LAA and X2-ICIC all run over the same topologies and
//! workloads. [`SystemEngine`] is the least common denominator those
//! comparisons need — a clock, a way to offer traffic, and per-client
//! delivery counters — implemented by both [`LteEngine`] and
//! [`WifiEngine`]; [`SimHarness`] and [`steady_state_bps`] are the
//! shared loops the experiment drivers build on instead of re-rolling
//! their own.

use super::LteEngine;
use crate::wifi_engine::WifiEngine;
use cellfi_types::time::{Duration, Instant};

/// A simulated radio system a harness can drive: the LTE engine in any
/// IM mode, or the Wi-Fi baseline.
///
/// Delivery counters are in **bits** for every implementation (the
/// Wi-Fi engine's byte counters are scaled by 8, which is exact in both
/// `u64` and `f64`), so paired comparisons never mix units. Backlog is
/// offered in the engine's native queue unit — bits for LTE, bytes for
/// Wi-Fi — because queue sizes parameterize workloads, not comparisons.
pub trait SystemEngine {
    /// Current simulation time.
    fn now(&self) -> Instant;

    /// Advance the simulation to `deadline`.
    fn run_until(&mut self, deadline: Instant);

    /// Give every client `amount` of backlog, in the engine's native
    /// queue unit (bits for LTE, bytes for Wi-Fi).
    fn backlog_all(&mut self, amount: u64);

    /// Total delivered downlink **bits** per client since construction.
    fn delivered_bits_per_ue(&self) -> Vec<u64>;

    /// Number of clients in the scenario.
    fn n_ues(&self) -> usize;

    /// Consecutive epochs the engine has reported an unchanged
    /// steady-state signature (spectrum allocations, transmitter sets,
    /// associations). Engines without the notion report 0, which never
    /// triggers quiescence stopping in [`SimHarness`].
    fn quiescent_epochs(&self) -> u64 {
        0
    }

    /// The engine's span profiler, if it carries one. [`SimHarness`]
    /// uses this to wrap each tick in a `harness_tick` span; engines
    /// without observability return `None` (the default) and the
    /// harness skips the bracketing entirely.
    fn profiler_mut(&mut self) -> Option<&mut cellfi_obs::Profiler> {
        None
    }
}

impl SystemEngine for LteEngine {
    fn now(&self) -> Instant {
        LteEngine::now(self)
    }

    fn run_until(&mut self, deadline: Instant) {
        LteEngine::run_until(self, deadline);
    }

    fn backlog_all(&mut self, amount: u64) {
        LteEngine::backlog_all(self, amount);
    }

    fn delivered_bits_per_ue(&self) -> Vec<u64> {
        self.delivered_bits().to_vec()
    }

    fn n_ues(&self) -> usize {
        self.scenario().n_ues()
    }

    fn quiescent_epochs(&self) -> u64 {
        LteEngine::quiescent_epochs(self)
    }

    fn profiler_mut(&mut self) -> Option<&mut cellfi_obs::Profiler> {
        Some(&mut self.obs_mut().profiler)
    }
}

impl SystemEngine for WifiEngine {
    fn now(&self) -> Instant {
        self.sim().now()
    }

    fn run_until(&mut self, deadline: Instant) {
        WifiEngine::run_until(self, deadline);
    }

    fn backlog_all(&mut self, amount: u64) {
        WifiEngine::backlog_all(self, amount);
    }

    fn delivered_bits_per_ue(&self) -> Vec<u64> {
        // Bytes → bits is a ×8 exponent shift: exact in u64 (delivered
        // volumes are far below 2^61) and exact again when a caller
        // converts to f64, so the paired-throughput arithmetic matches
        // the old per-driver byte math bit for bit.
        self.delivered_bytes().iter().map(|&b| b * 8).collect()
    }

    fn n_ues(&self) -> usize {
        WifiEngine::n_ues(self)
    }
}

/// Per-client steady-state throughput (bps) of a backlogged run:
/// advance to `warmup`, snapshot, advance to `horizon`, and rate the
/// difference. `warmup` excludes convergence transients (CellFi's
/// hopping buckets have mean λ = 10 epochs, so convergence takes tens
/// of seconds; the paper measures converged behaviour).
pub fn steady_state_bps<E: SystemEngine + ?Sized>(
    e: &mut E,
    warmup: Duration,
    horizon: Instant,
) -> Vec<f64> {
    e.run_until(Instant::ZERO + warmup);
    let at_warmup = e.delivered_bits_per_ue();
    e.run_until(horizon);
    let span = (horizon - warmup).as_secs_f64();
    e.delivered_bits_per_ue()
        .iter()
        .zip(&at_warmup)
        .map(|(&total, &w)| (total - w) as f64 / span)
        .collect()
}

/// The shared clock loop for workload-driven runs: one tick granularity,
/// one horizon, any [`SystemEngine`].
#[derive(Debug, Clone, Copy)]
pub struct SimHarness {
    /// Tick granularity of the loop (1 ms for the LTE engine — one
    /// subframe per tick — and coarser for slot-based Wi-Fi runs).
    pub tick: Duration,
    /// End of the run.
    pub horizon: Instant,
    /// Stop early once the engine reports this many consecutive
    /// quiescent epochs (see [`SystemEngine::quiescent_epochs`]).
    /// `None` — the default — always runs to the horizon.
    pub quiescence_stop: Option<u64>,
}

impl SimHarness {
    /// A harness stepping `tick` at a time until `horizon`.
    pub fn new(tick: Duration, horizon: Instant) -> SimHarness {
        SimHarness {
            tick,
            horizon,
            quiescence_stop: None,
        }
    }

    /// Stop the run as soon as the engine has been quiescent for
    /// `epochs` consecutive epochs (convergence-bounded runs: a driver
    /// that only needs steady state can skip the settled tail).
    pub fn stop_when_quiescent(mut self, epochs: u64) -> SimHarness {
        self.quiescence_stop = Some(epochs);
        self
    }

    /// Drive `e` to the horizon. Per tick: `offer` may enqueue traffic
    /// or move clients (it sees the engine, the workload state, and the
    /// current time), the engine advances one tick, and every client
    /// whose delivery counter moved is reported to `deliver` as
    /// `(workload, ue, delta_bits, tick_deadline)` in client index
    /// order — a fixed order and a tick-boundary timestamp, so workload
    /// bookkeeping stays deterministic no matter how the engine
    /// internally batches deliveries or rounds its clock (the Wi-Fi
    /// simulator stops on whole 9 µs slots).
    ///
    /// `workload` is whatever state both callbacks share — a
    /// [`crate::workload::WebWorkload`], a trace vector, or `&mut ()`
    /// when the driver only needs `offer`.
    pub fn run<E: SystemEngine + ?Sized, W: ?Sized>(
        &self,
        e: &mut E,
        workload: &mut W,
        mut offer: impl FnMut(&mut E, &mut W, Instant),
        mut deliver: impl FnMut(&mut W, usize, u64, Instant),
    ) {
        let mut last = e.delivered_bits_per_ue();
        // The loop keeps its own tick clock: engines may round their
        // internal clock (Wi-Fi stops on whole slots), and tick
        // boundaries must not drift with that rounding.
        let mut now = e.now();
        while now < self.horizon {
            if let Some(p) = e.profiler_mut() {
                p.begin(cellfi_obs::SpanId::HarnessTick);
            }
            offer(e, workload, now);
            let after = now + self.tick;
            e.run_until(after);
            if let Some(p) = e.profiler_mut() {
                p.end(cellfi_obs::SpanId::HarnessTick);
            }
            let current = e.delivered_bits_per_ue();
            for (u, (&cur, &prev)) in current.iter().zip(&last).enumerate() {
                if cur > prev {
                    deliver(workload, u, cur - prev, after);
                }
            }
            last = current;
            now = after;
            if let Some(min_epochs) = self.quiescence_stop {
                if e.quiescent_epochs() >= min_epochs {
                    break;
                }
            }
        }
    }
}
