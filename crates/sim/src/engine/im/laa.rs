//! LAA/MulteFire-style listen-before-talk.
//!
//! A cell transmits (on the whole channel) only after sensing the
//! medium idle, holds it for one maximum channel-occupancy time, then
//! re-contends with a random backoff. The paper argues (§8) this "will
//! face similar MAC inefficiencies as 802.11af" at TVWS ranges; the LAA
//! integration tests exercise exactly that long-range sensing mismatch
//! and the mandatory duty-cycle tax.
//!
//! LBT gates *per subframe*, not per epoch: the strategy overrides
//! [`ImStrategy::transmit_gate`] and leaves masks untouched.

use super::ImStrategy;
use crate::engine::LteEngine;
use cellfi_types::units::Dbm;
use rand::Rng;

/// LAA energy-detect threshold (3GPP LBT category 4 for a 20 MHz carrier
/// is −72 dBm; we keep it for the 5 MHz carrier).
pub const LBT_THRESHOLD_DBM: f64 = -72.0;

/// LAA maximum channel-occupancy time, in 1 ms subframes (8 ms).
pub const LBT_MCOT_SUBFRAMES: u32 = 8;

/// LBT contention window (fixed, priority-class-3-like).
pub const LBT_CW: u32 = 15;

/// The listen-before-talk strategy behind [`crate::engine::ImMode::Laa`].
pub struct Laa;

impl ImStrategy for Laa {
    fn transmit_gate(&self, e: &mut LteEngine) -> Vec<bool> {
        e.lbt_gate()
    }

    fn run_epoch(&self, _e: &mut LteEngine) {}
}

impl LteEngine {
    /// LAA listen-before-talk gate: returns which cells may transmit
    /// this subframe, updating TXOP and backoff state. Sensing uses the
    /// transmitter set of the previous subframe (energy detect at the
    /// AP), so the long-range mismatch between sensing and interference
    /// footprints plays out exactly as it does for CSMA.
    fn lbt_gate(&mut self) -> Vec<bool> {
        let n = self.cells.len();
        // Who was transmitting last subframe (any subchannel)?
        let mut active_last = vec![false; n];
        for cells in &self.tx_last {
            for &c in cells {
                active_last[c] = true;
            }
        }
        let mut grant = vec![false; n];
        for (c, granted) in grant.iter_mut().enumerate() {
            if self.cells[c].total_queued_bits() == 0 {
                // Idle cells release any TXOP and keep a fresh backoff.
                self.lbt[c].txop_remaining = 0;
                continue;
            }
            if self.lbt[c].txop_remaining > 0 {
                self.lbt[c].txop_remaining -= 1;
                *granted = true;
                continue;
            }
            // Energy detect against everyone who radiated last subframe.
            // Only sensed interferers contribute: a culled AP-to-AP path
            // is below the energy-detect floor by construction.
            let count = self.ap_nbr_count[c] as usize;
            let mut busy_mw = 0.0f64;
            for (sl, &o) in self.ap_nbr.row(c, count).iter().enumerate() {
                if active_last[o as usize] {
                    busy_mw += Dbm(self.ap_mean_dbm.at(c, sl)).to_milliwatts().value();
                }
            }
            let busy = 10.0 * busy_mw.max(1e-30).log10() >= LBT_THRESHOLD_DBM;
            if busy {
                continue; // freeze backoff while the medium is busy
            }
            if self.lbt[c].backoff > 0 {
                self.lbt[c].backoff -= 1;
                continue;
            }
            // Idle and backoff expired: seize the channel for one MCOT
            // and draw the next backoff.
            self.lbt[c].txop_remaining = LBT_MCOT_SUBFRAMES - 1;
            self.lbt[c].backoff = self.lbt_rng[c].gen_range(0..=LBT_CW);
            *granted = true;
        }
        grant
    }
}
