//! Centralized FERMI-style oracle allocation.
//!
//! Perfect knowledge of the true conflict graph (built from the mean
//! gains at engine construction), recomputed each epoch against the
//! cells' current demands. The upper bound CellFi is measured against
//! in Fig 9 and the ablation.

use super::ImStrategy;
use crate::engine::LteEngine;
use cellfi_core::oracle::OracleAllocator;

/// The centralized strategy behind [`crate::engine::ImMode::Oracle`].
pub struct Oracle;

impl ImStrategy for Oracle {
    fn run_epoch(&self, e: &mut LteEngine) {
        let n_sub = e.grid.num_subchannels() as usize;
        let demands: Vec<u32> = (0..e.cells.len())
            .map(|c| e.cells[c].active_clients() as u32)
            .collect();
        let alloc = OracleAllocator.allocate(&e.conflict, &demands, n_sub as u32);
        for (c, subs) in alloc.iter().enumerate() {
            let mut mask = vec![false; n_sub];
            for s in subs {
                mask[s.index()] = true;
            }
            if demands[c] == 0 {
                mask = vec![true; n_sub];
            }
            e.cells[c].set_allowed_mask(mask);
        }
    }
}
