//! The paper's distributed interference management.
//!
//! Each cell runs its [`cellfi_core::manager::InterferenceManager`]
//! once per epoch, fed by
//! PRACH-overheard client counts (§5.1/§5.2) and the epoch's (imperfect)
//! CQI-drop interference detections (§5.3). No cell-to-cell messages:
//! the whole protocol rides on what an AP can hear.

use super::ImStrategy;
use crate::engine::LteEngine;
use cellfi_core::manager::{ClientEpochStats, EpochInput};
use cellfi_lte::prach;
use cellfi_obs::trace::Event;
use cellfi_types::units::Db;
use cellfi_types::UeId;

/// The distributed strategy behind [`crate::engine::ImMode::CellFi`].
pub struct CellFi;

impl ImStrategy for CellFi {
    fn run_epoch(&self, e: &mut LteEngine) {
        let n_sub = e.grid.num_subchannels() as usize;
        let dl = e.dl_subframes_this_epoch.max(1) as f64;
        let now = e.now;
        for c in 0..e.cells.len() {
            let (own, heard) = e.heard_active(c);
            if e.obs.tracer.is_enabled() {
                // Re-walk the sensing rule to attribute each
                // foreign detection (the counting pass above
                // stays allocation- and branch-lean for
                // untraced runs). Collected up front: emitting
                // needs the tracer mutably while the listener
                // rows borrow the scenario.
                let pairs: Vec<(u32, u32)> = {
                    let (ues, slots) = e.scenario.nbr.listeners(c);
                    ues.iter().copied().zip(slots.iter().copied()).collect()
                };
                for (ue, sl) in pairs {
                    let ue = ue as usize;
                    if e.queued_bits(ue) == 0 || e.scenario.assoc[ue] == c {
                        continue;
                    }
                    let snr_db = e.ul_snr_db.at(ue, sl as usize);
                    if prach::heard(Db(snr_db)) {
                        e.obs.tracer.emit(
                            now,
                            Event::PrachHeard {
                                cell: c as u32,
                                ue: ue as u32,
                                snr_db,
                            },
                        );
                    }
                }
            }
            let attached: Vec<UeId> = e.cells[c].attached_ues().to_vec();
            let mask = e.cells[c].allowed_mask().to_vec();
            let clients: Vec<ClientEpochStats> = attached
                .iter()
                .map(|ueid| {
                    let ue = ueid.index();
                    let mut frac: Vec<f64> = (0..n_sub)
                        .map(|s| e.epoch[ue].sched_subframes[s] as f64 / dl)
                        .collect();
                    let interfered: Vec<bool> = (0..n_sub)
                        .map(|s| {
                            e.config
                                .sensing
                                .observe(e.epoch[ue].interfered[s], &mut e.ue_rng[ue])
                        })
                        .collect();
                    // Starvation rescue (extension; see DESIGN.md):
                    // the paper drains buckets by frac_scheduled,
                    // which deadlocks when interference pushes a
                    // client to CQI 0 on *every* owned subchannel —
                    // it is never scheduled, so its reports carry
                    // no drain weight and the AP never hops. Weight
                    // such backlogged-but-unserved clients by the
                    // fair time share they should have received.
                    let unserved = frac.iter().all(|&f| f == 0.0) && e.queued_bits(ue) > 0;
                    if unserved {
                        let fair = 1.0 / own.max(1) as f64;
                        for s in 0..n_sub {
                            if mask[s] && interfered[s] {
                                frac[s] = fair;
                            }
                        }
                    }
                    let est: Vec<f64> = (0..n_sub)
                        .map(|s| e.rate_bits(ue, s, 1.0) * 1000.0)
                        .collect();
                    ClientEpochStats {
                        ue: *ueid,
                        frac_scheduled: frac,
                        interfered,
                        est_throughput: est,
                        free_streak: e.free_streak[ue].clone(),
                    }
                })
                .collect();
            let decision = e.managers[c].epoch_traced(
                &EpochInput {
                    own_active: own,
                    heard_active: heard,
                    clients,
                },
                now,
                c as u32,
                &mut e.obs.tracer,
            );
            e.obs
                .metrics
                .inc("hops", c as u32, decision.hops.len() as u64);
            e.obs
                .metrics
                .set_gauge("share", c as u32, f64::from(decision.share));
            if !decision.hops.is_empty() || !decision.packing.is_empty() {
                // Rounds-to-convergence: the last epoch in which
                // the manager still moved.
                e.obs.metrics.set_gauge(
                    "last_move_epoch",
                    c as u32,
                    e.managers[c].epochs_run() as f64,
                );
            }
            let mut mask = decision.mask;
            // Bootstrap grant: an idle cell's share is zero, but a
            // real cell always retains minimal scheduling ability
            // (signalling radio bearers exist regardless), so a
            // page arriving mid-epoch is not stuck behind up to
            // 1 s of dead air. All idle cells bootstrap on the
            // lowest-index subchannel — consistent with the
            // re-use packing convention, and any harm is caught
            // by neighbours' CQI detectors next epoch.
            if mask.iter().all(|&b| !b) {
                mask[0] = true;
            }
            let owned = mask.iter().filter(|&&b| b).count();
            e.obs
                .metrics
                .set_gauge("occupancy", c as u32, owned as f64 / n_sub as f64);
            e.cells[c].set_allowed_mask(mask);
        }
    }
}

impl LteEngine {
    /// Heard-active-client count at a cell: its own active clients plus
    /// every foreign active client whose PRACH (20 dBm uplink) reaches it
    /// at ≥ −10 dB SNR — the §6.3.4 sensing rule.
    ///
    /// The −10 dB threshold is not arbitrary: with the 10 dB AP/UE power
    /// difference it makes the hearing radius coincide with the radius at
    /// which this AP's downlink degrades the client by ≥ 3 dB — "any
    /// client whose PRACH is detected is likely to be affected by
    /// transmissions from the AP" (§5.1). Shrinking the radius (e.g.
    /// modelling an elevated uplink noise floor) breaks that alignment:
    /// an AP then over-claims spectrum against victims it cannot hear,
    /// and sparse chains stop converging (see the coexistence
    /// integration tests, which caught exactly that during development).
    ///
    /// Only the cell's *listeners* — UEs whose candidate set retained it —
    /// are walked: a culled uplink is below the floor and can never clear
    /// the −10 dB PRACH threshold, and a cell's own clients are always
    /// candidates.
    fn heard_active(&self, cell: usize) -> (u32, u32) {
        let mut own = 0u32;
        let mut heard = 0u32;
        let (ues, slots) = self.scenario.nbr.listeners(cell);
        for (&ue, &sl) in ues.iter().zip(slots) {
            let ue = ue as usize;
            if self.queued_bits(ue) == 0 {
                continue;
            }
            if self.scenario.assoc[ue] == cell {
                own += 1;
                heard += 1;
            } else if prach::heard(Db(self.ul_snr_db.at(ue, sl as usize))) {
                heard += 1;
            }
        }
        (own, heard)
    }
}
