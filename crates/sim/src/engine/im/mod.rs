//! Interference management: one module per system, behind one trait.
//!
//! The paper compares five ways of sharing the channel between
//! uncoordinated cells (§6.3.4, §8); each lives in its own module here
//! and implements [`ImStrategy`]:
//!
//! | module        | system                                            |
//! |---------------|---------------------------------------------------|
//! | [`plain_lte`] | no coordination — every cell uses every subchannel |
//! | [`cellfi`]    | the paper's distributed PRACH/CQI-driven manager   |
//! | [`oracle`]    | centralized FERMI-style true-conflict allocator    |
//! | [`laa`]       | listen-before-talk with TXOP + random backoff      |
//! | [`x2_icic`]   | X2-coordinated sequential colouring                |
//!
//! Adding a sixth system is one new module: implement [`ImStrategy`],
//! add an [`ImMode`] variant, and list it in [`strategy_for`]. The
//! strategies are stateless unit structs — all per-run state (manager
//! instances, LBT counters, the conflict graph) lives on the engine, so
//! dispatch is a `&'static` lookup with no allocation.

pub mod cellfi;
pub mod laa;
pub mod oracle;
pub mod plain_lte;
pub mod x2_icic;

use super::{ImMode, LteEngine};

/// One interference-management system's hooks into the engine loop.
///
/// The engine calls [`ImStrategy::transmit_gate`] at the top of every
/// downlink subframe and [`ImStrategy::run_epoch`] at each 1 s epoch
/// boundary (after the free-streak roll, before epoch counters reset).
/// Implementations receive the whole engine mutably: they are the
/// policy layer and may read any measurement state and rewrite the
/// cells' allowed masks.
pub trait ImStrategy {
    /// Which cells may transmit this downlink subframe. The default —
    /// every cell — is right for every system except LAA, whose
    /// listen-before-talk contention gates transmission per subframe.
    fn transmit_gate(&self, e: &mut LteEngine) -> Vec<bool> {
        vec![true; e.cells.len()]
    }

    /// The per-epoch interference-management decision: observe the
    /// epoch's measurements and set each cell's allowed mask.
    fn run_epoch(&self, e: &mut LteEngine);
}

/// The strategy implementing `mode`: a static dispatch table, so the
/// engine never stores (or borrows) the strategy itself.
pub(crate) fn strategy_for(mode: ImMode) -> &'static dyn ImStrategy {
    match mode {
        ImMode::PlainLte => &plain_lte::PlainLte,
        ImMode::CellFi => &cellfi::CellFi,
        ImMode::Oracle => &oracle::Oracle,
        ImMode::Laa => &laa::Laa,
        ImMode::X2Icic => &x2_icic::X2Icic,
    }
}
