//! Uncoordinated LTE: the §3.2 baseline.
//!
//! Every cell schedules the full channel with no coordination; cell-edge
//! clients drown in inter-cell interference. Nothing to decide per
//! epoch — masks stay full-channel forever.

use super::ImStrategy;
use crate::engine::LteEngine;

/// The no-op strategy behind [`crate::engine::ImMode::PlainLte`].
pub struct PlainLte;

impl ImStrategy for PlainLte {
    fn run_epoch(&self, _e: &mut LteEngine) {}
}
