//! Conventional coordinated LTE: X2-negotiated sequential colouring.
//!
//! Neighbouring cells exchange demands and masks over X2 and colour the
//! channel sequentially by cell id (§4.3). Single-operator only — "in
//! CellFi, coordination is hard to enforce because multiple cellular
//! providers are sharing the spectrum" — and every epoch costs explicit
//! messages, which the engine counts in `x2_messages`.

use super::ImStrategy;
use crate::engine::LteEngine;

/// The explicit-coordination strategy behind
/// [`crate::engine::ImMode::X2Icic`].
pub struct X2Icic;

impl ImStrategy for X2Icic {
    fn run_epoch(&self, e: &mut LteEngine) {
        // Cells colour sequentially by id. Each cell learns its
        // X2 neighbours' demands (1 message per edge) and their
        // already-chosen masks (1 more per edge).
        let n_sub = e.grid.num_subchannels() as usize;
        let n = e.cells.len();
        let demands: Vec<u32> = (0..n).map(|c| e.cells[c].active_clients() as u32).collect();
        let mut masks: Vec<Vec<bool>> = vec![vec![false; n_sub]; n];
        for c in 0..n {
            let me = cellfi_types::ApId::new(c as u32);
            let neighbors: Vec<usize> = e.conflict.neighbors(me).map(|a| a.index()).collect();
            e.x2_messages += 2 * neighbors.len() as u64;
            if demands[c] == 0 {
                masks[c] = vec![true; n_sub]; // idle: full mask, no tx
                continue;
            }
            let binding = std::iter::once(me)
                .chain(e.conflict.neighbors(me))
                .map(|a| e.conflict.closed_neighborhood_weight(a, &demands))
                .max()
                .unwrap_or(demands[c]);
            let share = ((f64::from(demands[c]) * n_sub as f64 / f64::from(binding.max(1))).floor()
                as usize)
                .clamp(1, n_sub);
            let blocked: Vec<bool> = (0..n_sub)
                .map(|s| {
                    neighbors
                        .iter()
                        .any(|&o| o < c && demands[o] > 0 && masks[o][s])
                })
                .collect();
            let mut taken = 0;
            for s in 0..n_sub {
                if taken == share {
                    break;
                }
                if !blocked[s] {
                    masks[c][s] = true;
                    taken += 1;
                }
            }
            if taken == 0 {
                // Overloaded neighbourhood: keep one subchannel
                // (the highest) rather than go silent.
                masks[c][n_sub - 1] = true;
            }
        }
        for (c, m) in masks.into_iter().enumerate() {
            e.cells[c].set_allowed_mask(m);
        }
    }
}
