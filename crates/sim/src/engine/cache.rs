//! Steady-state caches over the MAC's transmitter sets.
//!
//! Two observations make the subframe loop mostly redundant in steady
//! state. First, with a saturated PF scheduler and a converged hopping
//! allocation, each subchannel's transmitter set cycles through a tiny
//! number of distinct values (the TDD pattern alternates one downlink
//! set with the empty uplink set). [`TxSetTracker`] interns those sets
//! into small integer ids per subchannel, so every downstream cache can
//! key on a `u64` compare instead of cloning and comparing `Vec<usize>`
//! sets. Second, the whole CQI measurement is a pure function of
//! `(gain generation, association generation, per-subchannel set ids)` —
//! [`CqiMemo`] keeps the two most recent scans keyed that way and lets
//! `measure_cqi` replay a scan instead of recomputing it, with the
//! interference events re-applied in the same order the parallel scan
//! would have emitted them.

use crate::slab::{IndexSlab, Slab2, Slab3};

/// Interns per-subchannel transmitter sets into `u64` ids and maintains
/// a per-subchannel cell-membership bitmask.
///
/// Id 0 is reserved for the empty set; every distinct non-empty set
/// observed on a subchannel gets the next id from a shared counter. Each
/// subchannel remembers its two most recently seen sets (enough for the
/// TDD steady state: one downlink set alternating with uplink silence,
/// plus one spare for epoch transitions), so a steady-state observe is
/// pure comparison — zero allocation.
#[derive(Debug)]
pub(crate) struct TxSetTracker {
    /// Current interned id per subchannel; 0 = empty set.
    ids: Vec<u64>,
    /// Per-subchannel membership bitmask: bit `ap` of row `s` is set
    /// iff `ap` transmits on subchannel `s`.
    mask: crate::slab::BitRows,
    /// Two-slot LRU of `(id, set)` per subchannel, most recent first.
    slots: Vec<[(u64, Vec<usize>); 2]>,
    /// Next fresh id; also a cheap "new set appeared" signal for
    /// quiescence detection.
    next_id: u64,
}

impl TxSetTracker {
    pub fn new(n_sub: usize, n_ap: usize) -> TxSetTracker {
        TxSetTracker {
            ids: vec![0; n_sub],
            mask: crate::slab::BitRows::new(n_sub, n_ap),
            slots: (0..n_sub)
                .map(|_| [(0, Vec::new()), (0, Vec::new())])
                .collect(),
            next_id: 1,
        }
    }

    /// Bring ids and masks in line with `tx` (the per-subchannel
    /// transmitter sets just installed as `tx_last`). Sets already seen
    /// on their subchannel re-use their id without allocating.
    // cellfi-lint: hot
    pub fn observe(&mut self, tx: &[Vec<usize>]) {
        for (s, set) in tx.iter().enumerate() {
            let id = if set.is_empty() {
                0
            } else {
                let slots = &mut self.slots[s];
                if slots[0].0 != 0 && slots[0].1 == *set {
                    slots[0].0
                } else if slots[1].0 != 0 && slots[1].1 == *set {
                    slots.swap(0, 1);
                    slots[0].0
                } else {
                    // Evict the older slot; `clone_from` reuses its
                    // capacity after warm-up.
                    slots[1].0 = self.next_id;
                    slots[1].1.clone_from(set);
                    self.next_id += 1;
                    slots.swap(0, 1);
                    slots[0].0
                }
            };
            if self.ids[s] != id {
                self.ids[s] = id;
                self.mask.clear_row(s);
                for &ap in set {
                    self.mask.set(s, ap);
                }
            }
        }
    }

    /// Current id per subchannel (0 = empty set).
    // cellfi-lint: hot
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Whether `ap` is in subchannel `s`'s current transmitter set.
    // cellfi-lint: hot
    #[inline]
    pub fn is_member(&self, s: usize, ap: usize) -> bool {
        self.mask.get(s, ap)
    }

    /// Total distinct non-empty sets interned so far (monotone): stable
    /// across an epoch iff no subchannel saw a brand-new transmitter set.
    pub fn interned(&self) -> u64 {
        self.next_id
    }
}

/// One remembered CQI scan.
#[derive(Debug, Default)]
pub(crate) struct CqiScanEntry {
    gain_gen: u64,
    assoc_gen: u64,
    ids: Vec<u64>,
    /// Flat `[ue][sub]` CQI values the scan produced.
    pub cqi: Vec<cellfi_lte::amc::Cqi>,
    /// Per-UE "some subchannel decodable" bit (feeds the RLF monitor).
    pub any_usable: Vec<bool>,
    /// Every `(ue, sub, sinr_db, clean_db)` where the interference
    /// condition held, in (ue asc, sub asc) order — the replay emits
    /// these through the epoch flags exactly as the live scan would.
    pub hits: Vec<(u32, u32, f64, f64)>,
    stamp: u64,
}

/// Two-slot memo of recent CQI scans, keyed by
/// `(gain_gen, assoc_gen, per-subchannel set ids)`.
///
/// Two slots match the TDD steady state: CQI scans alternate between the
/// downlink transmitter pattern and uplink silence, so both keys stay
/// resident and the whole measurement loop collapses to replay. Anything
/// time-varying (queue depths, outage timers, epoch interference flags)
/// is deliberately *not* memoized — the caller re-runs that bookkeeping
/// live from `any_usable` and `hits`.
#[derive(Debug)]
pub(crate) struct CqiMemo {
    slots: [CqiScanEntry; 2],
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CqiMemo {
    pub fn new() -> CqiMemo {
        CqiMemo {
            slots: [CqiScanEntry::default(), CqiScanEntry::default()],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The remembered scan for this key, if any.
    // cellfi-lint: hot
    pub fn lookup(&mut self, gain_gen: u64, assoc_gen: u64, ids: &[u64]) -> Option<&CqiScanEntry> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self
            .slots
            .iter_mut()
            .find(|e| {
                e.stamp != 0 && e.gain_gen == gain_gen && e.assoc_gen == assoc_gen && e.ids == ids
            })
            .map(|e| {
                e.stamp = clock;
                &*e
            });
        if entry.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        entry
    }

    /// Lifetime `(hits, misses)` of [`Self::lookup`] — the replay rate
    /// observability surfaces next to the interference cache's probe
    /// stats.
    pub fn probe_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Remember a freshly computed scan, evicting the least recently
    /// used slot. Buffers are reused, so steady-state stores after the
    /// first two scans allocate only when a hit list grows.
    // cellfi-lint: hot
    pub fn store(
        &mut self,
        gain_gen: u64,
        assoc_gen: u64,
        ids: &[u64],
        cqi_rows: &[Vec<cellfi_lte::amc::Cqi>],
        any_usable: &[bool],
        hits: &[(u32, u32, f64, f64)],
    ) {
        self.clock += 1;
        let slot = if self.slots[0].stamp <= self.slots[1].stamp {
            &mut self.slots[0]
        } else {
            &mut self.slots[1]
        };
        slot.gain_gen = gain_gen;
        slot.assoc_gen = assoc_gen;
        slot.ids.clear();
        slot.ids.extend_from_slice(ids);
        slot.cqi.clear();
        for row in cqi_rows {
            slot.cqi.extend_from_slice(row);
        }
        slot.any_usable.clear();
        slot.any_usable.extend_from_slice(any_usable);
        slot.hits.clear();
        slot.hits.extend_from_slice(hits);
        slot.stamp = self.clock;
    }
}

/// Memoized per-subchannel interference accumulation.
///
/// The engine's hottest loop sums, for every (UE, subchannel) pair, the
/// received power from every concurrently transmitting cell. With a
/// saturated PF scheduler the transmitter set of a subchannel is stable
/// for long stretches, and the gains only change when the fading block
/// rolls — so each subchannel's column of per-UE totals is keyed by
/// `(gain generation, interned transmitter-set id)` and recomputed only
/// when that key changes. Set ids come from [`TxSetTracker`], so a
/// no-change refresh is a handful of integer compares: zero allocation,
/// zero set cloning. The empty set (id 0) short-circuits in the reader,
/// which keeps a subchannel's cached downlink column valid across the
/// uplink subframes of the TDD cycle.
///
/// Totals include *every* transmitting cell — the serving cell too — so
/// the cache stays valid across handovers; callers subtract the serving
/// cell's own contribution when it is in the set.
#[derive(Debug)]
pub(crate) struct InterferenceCache {
    /// Total received power (mW) per `[subchannel][ue]` summed over the
    /// keyed transmitter set.
    total_mw: Slab2,
    /// Cache key per subchannel: `(gain generation, set id)` the column
    /// was accumulated for. Gain generations start at 1, so `(0, 0)`
    /// means "never filled".
    key: Vec<(u64, u64)>,
    /// Set id per subchannel as of the latest refresh (0 = empty set).
    current: Vec<u64>,
    /// Per-refresh staleness scratch (kept to avoid reallocating).
    stale: Vec<bool>,
    /// Non-empty subchannel probes served from a valid column.
    hits: u64,
    /// Non-empty subchannel probes that had to recompute their column.
    misses: u64,
}

impl InterferenceCache {
    pub fn new(n_sub: usize, n_ue: usize) -> InterferenceCache {
        InterferenceCache {
            total_mw: Slab2::new(n_sub, n_ue, 0.0),
            key: vec![(0, 0); n_sub],
            current: vec![0; n_sub],
            stale: vec![false; n_sub],
            hits: 0,
            misses: 0,
        }
    }

    /// Cumulative `(hits, misses)` over non-empty subchannel probes —
    /// the `cache_hit_floor` monitor's input.
    pub fn probe_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Ensure every non-empty subchannel column matches
    /// `(gain_gen, tracker id)`, recomputing stale columns in parallel
    /// (columns are disjoint rows of the slab). After this, `total(s, ue)`
    /// is exactly `Self::direct_total(tracker, nbr, nbr_count[ue], lin_mw, ue, s)`.
    ///
    /// The accumulation walks each UE's neighbor slots (ascending AP
    /// order) and adds the lanes whose AP is in the subchannel's
    /// transmitter mask — with dense tables that is the old ascending
    /// `tx[s]` sum term for term; under a cull floor, transmitters
    /// outside the UE's candidate row contribute nothing (their received
    /// power is below the floor by construction).
    pub fn refresh(
        &mut self,
        gain_gen: u64,
        tracker: &TxSetTracker,
        nbr: &IndexSlab,
        nbr_count: &[u32],
        lin_mw: &Slab3,
    ) {
        let ids = tracker.ids();
        self.current.copy_from_slice(ids);
        let mut any_stale = false;
        for (s, &id) in ids.iter().enumerate() {
            let stale = id != 0 && self.key[s] != (gain_gen, id);
            self.stale[s] = stale;
            any_stale |= stale;
            if id != 0 {
                if stale {
                    self.misses += 1;
                } else {
                    self.hits += 1;
                }
            }
        }
        if !any_stale || self.total_mw.cols() == 0 {
            return;
        }
        let n_ue = self.total_mw.cols();
        let stale = &self.stale;
        crate::parallel::for_each_chunk(self.total_mw.as_mut_slice(), n_ue, 16, |s, col| {
            if !stale[s] {
                return;
            }
            for (ue, slot) in col.iter_mut().enumerate() {
                *slot = Self::direct_total(tracker, nbr, nbr_count[ue], lin_mw, ue, s);
            }
        });
        for (s, &id) in ids.iter().enumerate() {
            if self.stale[s] {
                self.key[s] = (gain_gen, id);
            }
        }
    }

    /// Total received power (mW) at `ue` on subchannel `s` over the
    /// transmitter set of the latest refresh; 0 when that set is empty.
    #[inline]
    pub fn total(&self, s: usize, ue: usize) -> f64 {
        if self.current[s] == 0 {
            0.0
        } else {
            self.total_mw.at(s, ue)
        }
    }

    /// The unmemoized accumulation the cache must always agree with:
    /// total power at `ue` on subchannel `s` over the transmitters in
    /// `tracker`'s mask, read through the UE's neighbor slots in
    /// ascending-AP order.
    pub fn direct_total(
        tracker: &TxSetTracker,
        nbr: &IndexSlab,
        count: u32,
        lin_mw: &Slab3,
        ue: usize,
        s: usize,
    ) -> f64 {
        let mut total = 0.0;
        for (sl, &ap) in nbr.row(ue, count as usize).iter().enumerate() {
            if tracker.is_member(s, ap as usize) {
                total += lin_mw.at(ue, sl, s);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_interns_and_reuses_ids() {
        let mut t = TxSetTracker::new(2, 8);
        t.observe(&[vec![0, 3], vec![]]);
        let a = t.ids()[0];
        assert!(a != 0);
        assert_eq!(t.ids()[1], 0);
        assert!(t.is_member(0, 0) && t.is_member(0, 3) && !t.is_member(0, 1));
        assert!(!t.is_member(1, 0));
        // Alternate with the empty set (the TDD pattern): same id comes
        // back and no new set is interned.
        let interned = t.interned();
        t.observe(&[vec![], vec![]]);
        assert_eq!(t.ids()[0], 0);
        assert!(!t.is_member(0, 3));
        t.observe(&[vec![0, 3], vec![]]);
        assert_eq!(t.ids()[0], a);
        assert!(t.is_member(0, 3));
        assert_eq!(t.interned(), interned);
    }

    #[test]
    fn tracker_keeps_two_sets_resident() {
        let mut t = TxSetTracker::new(1, 4);
        t.observe(&[vec![0]]);
        let a = t.ids()[0];
        t.observe(&[vec![1]]);
        let b = t.ids()[0];
        let interned = t.interned();
        t.observe(&[vec![0]]);
        assert_eq!(t.ids()[0], a);
        t.observe(&[vec![1]]);
        assert_eq!(t.ids()[0], b);
        assert_eq!(t.interned(), interned, "LRU pair must not re-intern");
        // A third set evicts the older one.
        t.observe(&[vec![2]]);
        assert!(t.ids()[0] > b);
    }

    #[test]
    fn tracker_masks_wide_ap_counts() {
        let mut t = TxSetTracker::new(1, 130);
        t.observe(&[vec![5, 64, 129]]);
        assert!(t.is_member(0, 5) && t.is_member(0, 64) && t.is_member(0, 129));
        assert!(!t.is_member(0, 63) && !t.is_member(0, 128));
    }

    #[test]
    fn memo_round_trips_and_evicts_lru() {
        use cellfi_lte::amc::Cqi;
        let mut m = CqiMemo::new();
        assert!(m.lookup(1, 0, &[1, 0]).is_none());
        m.store(1, 0, &[1, 0], &[vec![Cqi(5)]], &[true], &[(0, 0, 1.0, 2.0)]);
        m.store(1, 0, &[0, 0], &[vec![Cqi(3)]], &[false], &[]);
        let e = m.lookup(1, 0, &[1, 0]).expect("first key still resident");
        assert_eq!(e.cqi, vec![Cqi(5)]);
        assert_eq!(e.hits, vec![(0, 0, 1.0, 2.0)]);
        assert!(m.lookup(1, 0, &[0, 0]).is_some());
        // Different generation misses.
        assert!(m.lookup(2, 0, &[1, 0]).is_none());
        assert!(m.lookup(1, 1, &[1, 0]).is_none());
        // Storing a third key evicts the least recently *used* one.
        m.lookup(1, 0, &[1, 0]);
        m.store(2, 0, &[2, 0], &[vec![Cqi(1)]], &[true], &[]);
        assert!(m.lookup(1, 0, &[1, 0]).is_some(), "recently used survives");
        assert!(m.lookup(1, 0, &[0, 0]).is_none(), "LRU evicted");
    }
}
