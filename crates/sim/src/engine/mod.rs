//! The LTE system simulator, layered as PHY / MAC / IM.
//!
//! A 1 ms subframe loop over the cells and clients of a [`Scenario`],
//! with the interference-management layer switchable between the
//! systems the paper compares (§6.3.4). The monolithic engine of the
//! early tree is split along the paper's own architecture:
//!
//! * `phy` — the propagation substrate: static mean-gain matrices,
//!   per-coherence-block fading refresh, the memoized per-subchannel
//!   interference cache, and the CQI measurement scan.
//! * `mac` — the LTE MAC: per-subframe PF scheduling + AMC + HARQ for
//!   downlink and uplink, control-channel retention, and the
//!   radio-link-failure / handover machinery.
//! * [`im`] — one module per interference-management system behind the
//!   [`im::ImStrategy`] trait: plain LTE, CellFi, the centralized
//!   oracle, LAA listen-before-talk, and X2-coordinated ICIC. The
//!   per-epoch IM decision is a trait call, so adding a sixth system is
//!   one new module, not a monolith edit.
//! * [`system`] — the [`system::SystemEngine`] abstraction that lets one
//!   harness clock loop drive the LTE engine and the Wi-Fi baseline
//!   engine identically.
//!
//! Per downlink subframe, each cell runs the standard PF scheduler over
//! its allowed subchannels using CQI-derived rates; transport blocks are
//! then resolved against the *actual* SINR (other cells' concurrent
//! transmissions on the same subchannel) through a per-UE HARQ entity
//! with chase combining. Control-channel interference from neighbouring
//! radios is applied as the measured Fig 7(b) retention factor.
//!
//! Positions are static within a run, so the engine precomputes the
//! mean-gain matrices at construction and refreshes the per-subchannel
//! fading realization once per coherence block — the simulation is exact
//! with respect to the propagation model but ~100× faster than
//! recomputing link budgets per sample.

mod cache;
pub mod im;
mod mac;
mod neighbors;
mod phy;
pub mod system;
mod tests;

pub use im::laa::{LBT_CW, LBT_MCOT_SUBFRAMES, LBT_THRESHOLD_DBM};
pub use system::{steady_state_bps, SimHarness, SystemEngine};

use crate::slab::{IndexSlab, Slab2, Slab3};
use crate::topology::Scenario;
use cache::InterferenceCache;
use cache::{CqiMemo, TxSetTracker};
use cellfi_core::manager::InterferenceManager;
use cellfi_core::sensing::ImperfectSensing;
use cellfi_core::ConflictGraph;
use cellfi_lte::amc::{Cqi, CqiTable, LinearCqiMap};
use cellfi_lte::cell::{Cell, CellConfig};
use cellfi_lte::earfcn::{Band, Earfcn};
use cellfi_lte::grid::{ChannelBandwidth, ResourceGrid};
use cellfi_lte::harq::HarqEntity;
use cellfi_lte::scheduler::SchedulerKind;
use cellfi_lte::tdd::TddConfig;
use cellfi_obs::Obs;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::Instant;
use cellfi_types::units::Db;
use cellfi_types::{ApId, SubchannelId, UeId};
use neighbors::neighbor_slabs;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which interference-management system runs on top of the LTE stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImMode {
    /// Uncoordinated LTE: all cells use all subchannels.
    PlainLte,
    /// The paper's distributed interference management.
    CellFi,
    /// Centralized oracle with true-conflict-graph knowledge.
    Oracle,
    /// LAA/MulteFire-style listen-before-talk: a cell transmits (on the
    /// whole channel) only after sensing the medium idle, holds it for
    /// one maximum channel-occupancy time, then re-contends with a
    /// random backoff. The paper argues (§8) this "will face similar MAC
    /// inefficiencies as 802.11af" at TVWS ranges — this mode lets the
    /// claim be tested.
    Laa,
    /// Conventional coordinated LTE (§4.3): neighbouring cells exchange
    /// demands and masks over X2 and colour the channel sequentially.
    /// Single-operator only — "in CellFi, coordination is hard to enforce
    /// because multiple cellular providers are sharing the spectrum" —
    /// and every epoch costs explicit messages, which the engine counts
    /// in [`LteEngine::x2_messages`].
    X2Icic,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct LteEngineConfig {
    /// Interference-management mode.
    pub mode: ImMode,
    /// Channel bandwidth (paper: 5 MHz).
    pub bandwidth: ChannelBandwidth,
    /// Sensing error model fed to CellFi (paper: 80 % detect, 2 % FP).
    pub sensing: ImperfectSensing,
    /// CellFi manager tuning.
    pub manager: cellfi_core::manager::ManagerConfig,
    /// Interference ground truth: a subchannel counts as interfered when
    /// concurrent foreign transmissions depress SINR at least this much
    /// below the clean SNR.
    pub interference_margin: Db,
}

impl LteEngineConfig {
    /// The paper's settings for a given mode.
    pub fn paper_default(mode: ImMode) -> LteEngineConfig {
        LteEngineConfig {
            mode,
            bandwidth: ChannelBandwidth::Mhz5,
            sensing: ImperfectSensing::default(),
            manager: cellfi_core::manager::ManagerConfig::default(),
            interference_margin: Db(3.0),
        }
    }
}

/// Per-UE epoch accounting (reset every second).
#[derive(Debug, Clone)]
struct UeEpoch {
    sched_subframes: Vec<u64>,
    interfered: Vec<bool>,
}

/// The system simulator.
#[derive(Debug)]
pub struct LteEngine {
    scenario: Scenario,
    config: LteEngineConfig,
    grid: ResourceGrid,
    tdd: TddConfig,
    table: CqiTable,
    cells: Vec<Cell>,
    managers: Vec<InterferenceManager>,
    now: Instant,
    /// Latest per-subchannel CQI per UE.
    ue_cqi: Vec<Vec<Cqi>>,
    harq: Vec<HarqEntity>,
    delivered: Vec<u64>,
    enqueued: Vec<u64>,
    retention: Vec<f64>,
    epoch: Vec<UeEpoch>,
    free_streak: Vec<Vec<u32>>,
    dl_subframes_this_epoch: u64,
    /// Per-UE RNG streams (HARQ decode draws, sensing observation).
    /// One independent stream per entity keeps draw sequences stable no
    /// matter which order — or on which thread — entities are visited.
    ue_rng: Vec<StdRng>,
    /// Per-cell RNG streams (LBT backoff draws).
    lbt_rng: Vec<StdRng>,
    /// Transmitting cells of the previous subframe, per subchannel.
    tx_last: Vec<Vec<usize>>,
    /// HARQ drops per UE.
    pub harq_drops: Vec<u64>,
    /// HARQ retransmissions per cell this epoch (detail-mode histogram
    /// feed, reset at every epoch boundary).
    epoch_retx: Vec<u64>,

    // ---- static link caches (positions never move within a run) ----
    /// Neighbor-indirection table: row `ue` holds its candidate AP ids
    /// ascending (the serving AP always present), padded to the uniform
    /// `max_neighbors` stride shared with the `[ue][slot][s]` gain
    /// slabs. Dense scenarios (no cull floor) make slot ≡ AP id.
    nbr: IndexSlab,
    /// Valid slot count per row of `nbr`.
    nbr_count: Vec<u32>,
    /// The neighbor slot each UE's serving AP occupies (kept in lock
    /// step with `scenario.assoc` across handovers).
    serving_slot: Vec<u32>,
    /// Per-AP interferer AP ids, slot-indexed like `nbr` — the LBT
    /// sensing neighborhood.
    ap_nbr: IndexSlab,
    /// Valid slot count per row of `ap_nbr`.
    ap_nbr_count: Vec<u32>,
    /// Mean downlink rx power (dBm) per `[ue][neighbor_slot]` at AP power.
    dl_mean_dbm: Slab2,
    /// Mean uplink SNR (dB) per `[ue][neighbor_slot]` at UE power over
    /// the channel (drives PRACH hearing).
    ul_snr_db: Slab2,
    /// Per-subchannel noise floor, mW.
    noise_mw: Vec<f64>,
    /// Per-subchannel interference threshold, mW: the interference power
    /// above which SINR sits at least `interference_margin` below the
    /// clean SNR (`noise_mw[s] · (10^(margin/10) − 1)`, precomputed so
    /// the CQI scan's ground-truth test never leaves the linear domain).
    interf_thresh_mw: Vec<f64>,
    /// Per-subchannel downlink power split (dB relative to full AP
    /// power): a subchannel receives only its share of the cell's total
    /// power. A function of the resource grid alone, hoisted out of
    /// every gain rebuild.
    split_db: Vec<f64>,
    /// Static linear rx power (mW) per `[ue][neighbor_slot][sc]`: mean
    /// gain + EIRP offset + power split, precombined through one batched
    /// dB→linear pass. Rebuilt only when a UE moves or an EIRP offset
    /// changes.
    static_mw: Slab3,
    /// Instantaneous linear rx power (mW) per `[ue][neighbor_slot][sc]`:
    /// `static_mw × fading power`, refreshed per fading coherence block.
    lin_mw: Slab3,
    fading_block: u64,
    /// Generation counter for `lin_mw`: bumped whenever any cached gain
    /// changes (fading block roll, client move) so dependent caches can
    /// tell stale from fresh without comparing the tensor itself.
    gain_gen: u64,
    /// Generation counter for UE↔cell association (handovers): part of
    /// the CQI memo key, since the scan reads the serving cell per UE.
    assoc_gen: u64,
    /// Memoized per-subchannel interference accumulation over `lin_mw`.
    interf: InterferenceCache,
    /// Interned per-subchannel transmitter-set ids + membership masks.
    tracker: TxSetTracker,
    /// Two-slot memo of recent CQI scans (the steady-state fast path).
    memo: CqiMemo,
    /// Whether the steady-state CQI fast path is enabled (default on;
    /// the equivalence tests switch it off to drive the full scan).
    fast_path: bool,
    /// Linear-domain CQI mapper (bisected boundaries of the 4-bit table).
    linmap: LinearCqiMap,
    /// Per-UE scratch for the CQI scan's "any subchannel decodable" bit.
    any_usable_scratch: Vec<bool>,
    /// Per-UE scratch for the CQI scan's interference hits (`(ue, sub,
    /// sinr_db, clean_db)`), reused across scans.
    hit_scratch: Vec<Vec<(u32, u32, f64, f64)>>,
    /// Flat merge of `hit_scratch` in UE index order — the hit list the
    /// memo remembers for replay.
    scan_hits_scratch: Vec<(u32, u32, f64, f64)>,
    /// MAC scheduling scratch buffers, reused across subframes so the
    /// steady-state subframe loop allocates nothing.
    ue_scratch: Vec<UeId>,
    rates_scratch: Vec<Vec<f64>>,
    tx_scratch: Vec<Vec<usize>>,
    pairs_scratch: Vec<(u32, u32)>,
    /// Consecutive epochs whose steady-state signature was unchanged.
    quiescent_epochs: u64,
    /// The previous epoch's `(total hops, interned sets, handovers)`.
    last_epoch_sig: Option<(u64, u64, u64)>,
    /// True conflict graph (static; used by the oracle).
    conflict: ConflictGraph,
    /// Mean AP→AP rx power (dBm) per `[ap][interferer_slot]` at AP
    /// power — the LBT sensing input.
    ap_mean_dbm: Slab2,
    /// Mean uplink rx power (dBm) per `[ue][neighbor_slot]` at *full* UE power; a UE
    /// concentrating into fewer subchannels splits this across only its
    /// granted ones (§3.1's single-carrier uplink advantage).
    ul_mean_dbm: Slab2,
    /// Uplink queues (bits) per UE.
    ul_queue: Vec<u64>,
    /// Uplink delivered bits per UE.
    ul_delivered: Vec<u64>,
    /// Uplink HARQ entity per UE.
    ul_harq: Vec<HarqEntity>,
    /// Uplink PF scheduler per cell (independent of the downlink one).
    ul_scheduler: Vec<cellfi_lte::scheduler::Scheduler>,
    /// Total X2 messages exchanged (X2Icic mode): the explicit-
    /// coordination cost CellFi's passive sensing avoids.
    pub x2_messages: u64,
    /// Handovers executed (mobility support, §7 "Mobility and roaming").
    pub handovers: u64,
    /// Consecutive milliseconds each UE has been unable to decode any
    /// subchannel while backlogged (drives RRC drops).
    bad_streak_ms: Vec<u32>,
    /// UEs in radio-link-failure outage until the given instant.
    outage_until: Vec<Instant>,
    /// RRC drops per UE — the paper's "frequent disconnections" under
    /// strong interference (§3.2, §6.3.1).
    pub rrc_drops: Vec<u64>,
    /// LAA listen-before-talk state per cell.
    lbt: Vec<LbtState>,
    /// Regulatory lease gate per cell: a cell with `lease_ok == false`
    /// neither schedules downlink nor grants uplink, without tearing
    /// down its attached clients the way `Cell::radio_off` would — the
    /// chaos harness flips this as PAWS leases are lost and regained.
    lease_ok: Vec<bool>,
    /// Per-cell downlink EIRP offset (dB) relative to the scenario's AP
    /// power — the degradation ladder's "reduce EIRP to the surviving
    /// grant's cap" rung. Zero for every cell unless a fault harness
    /// says otherwise, which keeps default gains byte-identical.
    power_offset_db: Vec<f64>,
    /// Subframes this epoch in which each cell scheduled at least one
    /// UE (feeds the scheduler-starvation monitor; reset per epoch).
    epoch_cell_sched: Vec<u32>,
    /// Consecutive whole epochs each cell spent starved: active,
    /// backlogged, mask non-empty, yet scheduled nothing.
    starved_epochs: Vec<u32>,
    /// Running maximum of `starved_epochs` across cells and time.
    max_starved_epochs: u32,
    /// Worst PAWS vacate margin a fault harness reported, microseconds
    /// (negative = missed deadline); `i64::MAX` until the first vacate.
    vacate_margin_min_us: i64,
    /// Observability bundle: tick-keyed event tracer, metrics registry,
    /// and injected-clock profiler. Disabled by default (near-zero cost);
    /// enable via [`LteEngine::obs_mut`].
    obs: Obs,
}

/// Listen-before-talk contention state of one cell (LAA mode).
#[derive(Debug, Clone, Copy, Default)]
struct LbtState {
    /// Remaining subframes of the current channel-occupancy grant.
    txop_remaining: u32,
    /// Backoff counter decremented on idle subframes.
    backoff: u32,
}

impl LteEngine {
    /// Build the engine over a scenario; every client attaches to its
    /// drop AP immediately (association transients are not the object of
    /// the large-scale experiments).
    pub fn new(mut scenario: Scenario, config: LteEngineConfig, seeds: SeedSeq) -> LteEngine {
        // Defensive re-index: tests and layout helpers hand-edit
        // `aps`/`ues`/`assoc` after generation, so the engine never
        // trusts a possibly stale neighbor table.
        scenario.rebuild_index();
        let grid = ResourceGrid::new(config.bandwidth);
        let n_sub = grid.num_subchannels() as usize;
        let tdd = TddConfig::paper_default();
        let carrier = Earfcn::new(Band::Tvws, 100_500);
        let mut cells: Vec<Cell> = (0..scenario.aps.len())
            .map(|i| {
                let mut cfg = CellConfig::paper_default(ApId::new(i as u32));
                cfg.tx_power = scenario.config.ap_power;
                cfg.bandwidth = config.bandwidth;
                cfg.scheduler = SchedulerKind::ProportionalFair;
                let mut c = Cell::new(cfg);
                c.set_carrier(carrier, scenario.config.ue_power, Instant::ZERO);
                c
            })
            .collect();
        for (u, &ap) in scenario.assoc.iter().enumerate() {
            cells[ap].attach(UeId::new(u as u32));
        }
        let managers = (0..scenario.aps.len())
            .map(|i| {
                InterferenceManager::new(
                    n_sub as u32,
                    config.manager,
                    seeds.seed_indexed("im", i as u64),
                )
            })
            .collect();
        let n_ue = scenario.n_ues();
        let n_ap = scenario.aps.len();

        // Static mean-gain matrices and the true conflict graph, all
        // slot-indexed through the neighbor tables.
        let links = phy::LinkMatrices::build(&scenario, &config, &grid);
        let (nbr, nbr_count, serving_slot, ap_nbr, ap_nbr_count) = neighbor_slabs(&scenario);
        let max_nbr = scenario.nbr.max_neighbors;
        // Downlink power is split across the carrier's RBs: a subchannel
        // receives only its share of the cell's total power.
        let split_db: Vec<f64> = (0..n_sub)
            .map(|s| {
                let sc = SubchannelId::new(s as u32);
                (grid.subchannel_tx_power(scenario.config.ap_power, sc) - scenario.config.ap_power)
                    .value()
            })
            .collect();
        let margin_lin = config.interference_margin.to_linear();
        let interf_thresh_mw: Vec<f64> = links
            .noise_mw
            .iter()
            .map(|n| n * (margin_lin - 1.0))
            .collect();

        let mut engine = LteEngine {
            grid,
            tdd,
            table: CqiTable,
            cells,
            managers,
            now: Instant::ZERO,
            ue_cqi: vec![vec![Cqi::OUT_OF_RANGE; n_sub]; n_ue],
            harq: vec![HarqEntity::new(); n_ue],
            delivered: vec![0; n_ue],
            enqueued: vec![0; n_ue],
            retention: vec![1.0; n_ue],
            epoch: vec![
                UeEpoch {
                    sched_subframes: vec![0; n_sub],
                    interfered: vec![false; n_sub],
                };
                n_ue
            ],
            free_streak: vec![vec![0; n_sub]; n_ue],
            dl_subframes_this_epoch: 0,
            ue_rng: (0..n_ue)
                .map(|u| StdRng::seed_from_u64(seeds.seed_indexed("engine-ue", u as u64)))
                .collect(),
            lbt_rng: (0..n_ap)
                .map(|a| StdRng::seed_from_u64(seeds.seed_indexed("engine-lbt", a as u64)))
                .collect(),
            tx_last: vec![Vec::new(); n_sub],
            harq_drops: vec![0; n_ue],
            epoch_retx: vec![0; n_ap],
            nbr,
            nbr_count,
            serving_slot,
            ap_nbr,
            ap_nbr_count,
            dl_mean_dbm: links.dl_mean_dbm,
            ul_snr_db: links.ul_snr_db,
            noise_mw: links.noise_mw,
            interf_thresh_mw,
            split_db,
            static_mw: Slab3::new(n_ue, max_nbr, n_sub, 0.0),
            lin_mw: Slab3::new(n_ue, max_nbr, n_sub, 0.0),
            fading_block: u64::MAX,
            gain_gen: 0,
            assoc_gen: 0,
            interf: InterferenceCache::new(n_sub, n_ue),
            tracker: TxSetTracker::new(n_sub, n_ap),
            memo: CqiMemo::new(),
            fast_path: true,
            linmap: LinearCqiMap::default(),
            any_usable_scratch: vec![false; n_ue],
            hit_scratch: vec![Vec::new(); n_ue],
            scan_hits_scratch: Vec::new(),
            ue_scratch: Vec::new(),
            rates_scratch: Vec::new(),
            tx_scratch: Vec::new(),
            pairs_scratch: Vec::new(),
            quiescent_epochs: 0,
            last_epoch_sig: None,
            conflict: links.conflict,
            ap_mean_dbm: links.ap_mean_dbm,
            ul_mean_dbm: links.ul_mean_dbm,
            ul_queue: vec![0; n_ue],
            ul_delivered: vec![0; n_ue],
            ul_harq: vec![HarqEntity::new(); n_ue],
            ul_scheduler: (0..n_ap)
                .map(|_| {
                    cellfi_lte::scheduler::Scheduler::new(
                        cellfi_lte::scheduler::SchedulerKind::ProportionalFair,
                    )
                })
                .collect(),
            lbt: vec![LbtState::default(); n_ap],
            lease_ok: vec![true; n_ap],
            power_offset_db: vec![0.0; n_ap],
            epoch_cell_sched: vec![0; n_ap],
            starved_epochs: vec![0; n_ap],
            max_starved_epochs: 0,
            vacate_margin_min_us: i64::MAX,
            x2_messages: 0,
            handovers: 0,
            bad_streak_ms: vec![0; n_ue],
            outage_until: vec![Instant::ZERO; n_ue],
            rrc_drops: vec![0; n_ue],
            obs: Obs::disabled(),
            scenario,
            config,
        };
        engine.rebuild_static();
        engine.refresh_fading();
        engine.recompute_retention();
        engine.measure_cqi();
        engine
    }

    /// Current simulation time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// The engine's observability bundle (tracer, metrics, profiler).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable observability bundle — use to enable tracing
    /// (`obs_mut().tracer = Tracer::new(true)`) or to install a profiler
    /// clock from the bench/bin layer before a run.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// The scenario under simulation.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Enqueue downlink bits for a client.
    pub fn enqueue(&mut self, ue: usize, bits: u64) {
        let ap = self.scenario.assoc[ue];
        self.cells[ap].enqueue(UeId::new(ue as u32), bits);
        self.enqueued[ue] += bits;
    }

    /// Enqueue uplink bits at a client.
    pub fn enqueue_ul(&mut self, ue: usize, bits: u64) {
        self.ul_queue[ue] += bits;
    }

    /// Uplink delivered bits per client.
    pub fn ul_delivered_bits(&self) -> &[u64] {
        &self.ul_delivered
    }

    /// Uplink bits still queued at a client.
    pub fn ul_queued_bits(&self, ue: usize) -> u64 {
        self.ul_queue[ue]
    }

    /// Per-client average uplink throughput in bps over the elapsed time.
    pub fn ul_throughputs_bps(&self) -> Vec<f64> {
        let t = self.now.as_secs_f64().max(1e-9);
        self.ul_delivered.iter().map(|&b| b as f64 / t).collect()
    }

    /// Give every client `bits` of backlog.
    pub fn backlog_all(&mut self, bits: u64) {
        for u in 0..self.scenario.n_ues() {
            self.enqueue(u, bits);
        }
    }

    /// Total delivered bits per client.
    pub fn delivered_bits(&self) -> &[u64] {
        &self.delivered
    }

    /// Bits still queued for a client.
    pub fn queued_bits(&self, ue: usize) -> u64 {
        self.cells[self.scenario.assoc[ue]].queued_bits(UeId::new(ue as u32))
    }

    /// Per-client average throughput in bps over the elapsed time.
    pub fn throughputs_bps(&self) -> Vec<f64> {
        let t = self.now.as_secs_f64().max(1e-9);
        self.delivered.iter().map(|&b| b as f64 / t).collect()
    }

    /// Total hops taken by each CellFi manager (convergence metric).
    pub fn manager_hops(&self) -> Vec<u64> {
        self.managers.iter().map(|m| m.total_hops()).collect()
    }

    /// Current scheduler mask of a cell.
    pub fn cell_mask(&self, cell: usize) -> Vec<bool> {
        self.cells[cell].allowed_mask().to_vec()
    }

    /// Set a cell's regulatory lease gate. `false` silences the cell
    /// (no downlink scheduling, no uplink grants, no control presence)
    /// while keeping its attachments and queues intact, so regaining
    /// the lease resumes service instantly.
    pub fn set_lease_ok(&mut self, cell: usize, ok: bool) {
        if self.lease_ok[cell] != ok {
            self.lease_ok[cell] = ok;
            self.recompute_retention();
        }
    }

    /// Whether a cell currently holds a valid lease (per its gate).
    pub fn lease_ok(&self, cell: usize) -> bool {
        self.lease_ok[cell]
    }

    /// Set a cell's downlink EIRP offset in dB relative to the
    /// scenario's AP power (negative = degraded below full power).
    /// Forces a gain-tensor refresh on the next subframe so the change
    /// takes effect immediately and deterministically.
    pub fn set_power_offset_db(&mut self, cell: usize, offset_db: f64) {
        if self.power_offset_db[cell] != offset_db {
            self.power_offset_db[cell] = offset_db;
            // Fold the new offset into the static gains, then invalidate
            // the fading block so the next refresh rebuilds `lin_mw`
            // even mid-coherence-block.
            self.rebuild_static();
            self.fading_block = u64::MAX;
            self.recompute_retention();
        }
    }

    /// A cell's current downlink EIRP offset in dB.
    pub fn power_offset_db(&self, cell: usize) -> f64 {
        self.power_offset_db[cell]
    }

    /// Whether a cell is radiating this subframe: radio up *and* lease
    /// valid. Every MAC path that asks "is this cell on the air" asks
    /// this, so the lease gate silences control and data alike.
    pub(super) fn cell_active(&self, cell: usize) -> bool {
        self.lease_ok[cell] && self.cells[cell].radio_on()
    }

    /// Mean SNR (no interference) of a client's downlink over the full
    /// channel — used by experiments for binning by link quality.
    pub fn ue_snr(&self, ue: usize) -> Db {
        let noise_total: f64 = self.noise_mw.iter().sum();
        Db(self.dl_mean_dbm.at(ue, self.serving_slot[ue] as usize) - 10.0 * noise_total.log10())
    }

    /// Enable or disable the steady-state CQI fast path (on by default).
    /// Testing hook: the fast-path equivalence tests run one scenario
    /// with the memo off to drive the full scan every period.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
    }

    /// Consecutive interference-management epochs whose steady-state
    /// signature — total manager hops, distinct transmitter sets seen,
    /// handovers — was unchanged. Grows once hopping has converged and
    /// associations are stable; any new hop, set, or handover resets it.
    pub fn quiescent_epochs(&self) -> u64 {
        self.quiescent_epochs
    }

    /// Run until `deadline`.
    pub fn run_until(&mut self, deadline: Instant) {
        while self.now < deadline {
            let _ = self.step_subframe();
        }
    }

    /// Report a completed PAWS vacate's deadline margin (µs; negative =
    /// deadline missed). Fault harnesses feed this so the
    /// `etsi_margin_us` monitor sees lease-lifecycle outcomes.
    pub fn observe_vacate_margin_us(&mut self, margin_us: i64) {
        self.vacate_margin_min_us = self.vacate_margin_min_us.min(margin_us);
    }

    /// Assemble the per-tick fact sheet the invariant monitors read.
    /// Called only when monitors are armed ([`cellfi_obs::MonitorRegistry`]).
    /// Cache probes pool the interference cache and the CQI memo — both
    /// must replay in steady state for the subframe loop to stay cheap.
    pub fn tick_facts(&self) -> cellfi_obs::TickFacts {
        let interf = self.interf.probe_stats();
        let memo = self.memo.probe_stats();
        cellfi_obs::TickFacts {
            tick_us: self.now.as_micros(),
            n_ues: self.scenario.n_ues() as u32,
            rlf_drops: self.rrc_drops.iter().sum(),
            max_starved_epochs: self.max_starved_epochs,
            cache_hits: interf.0 + memo.0,
            cache_misses: interf.1 + memo.1,
            min_margin_us: self.vacate_margin_min_us,
            lease_gate_breaches: 0,
        }
    }

    /// Epoch boundary: roll the per-(UE, subchannel) free streaks, run
    /// the configured interference-management strategy (one [`im`]
    /// module per system), then reset epoch accounting.
    fn run_epoch(&mut self) {
        let n_sub = self.grid.num_subchannels() as usize;
        for ue in 0..self.scenario.n_ues() {
            for s in 0..n_sub {
                if self.epoch[ue].interfered[s] {
                    self.free_streak[ue][s] = 0;
                } else {
                    self.free_streak[ue][s] += 1;
                }
            }
        }
        im::strategy_for(self.config.mode).run_epoch(self);
        // Scheduler-starvation accounting: a cell that was active and
        // backlogged with a non-empty mask, over an epoch that ran
        // downlink subframes, yet scheduled nothing, starved this epoch.
        // Consecutive starved epochs feed the `sched_starvation` monitor.
        if self.dl_subframes_this_epoch > 0 {
            for c in 0..self.cells.len() {
                let eligible = self.cell_active(c)
                    && self.cells[c].total_queued_bits() > 0
                    && self.cells[c].allowed_mask().iter().any(|&a| a);
                if eligible && self.epoch_cell_sched[c] == 0 {
                    self.starved_epochs[c] += 1;
                    self.max_starved_epochs = self.max_starved_epochs.max(self.starved_epochs[c]);
                } else {
                    self.starved_epochs[c] = 0;
                }
            }
        }
        self.epoch_cell_sched.fill(0);
        for e in self.epoch.iter_mut() {
            e.sched_subframes.fill(0);
            e.interfered.fill(false);
        }
        self.dl_subframes_this_epoch = 0;
        self.recompute_retention();
        // Quiescence detection: an epoch that hopped nothing, saw no new
        // transmitter set, and moved no client left the system exactly
        // where it was. Harnesses can stop on a run of such epochs.
        let hops: u64 = self.managers.iter().map(|m| m.total_hops()).sum();
        let sig = (hops, self.tracker.interned(), self.handovers);
        if self.last_epoch_sig == Some(sig) {
            self.quiescent_epochs += 1;
        } else {
            self.quiescent_epochs = 0;
            self.last_epoch_sig = Some(sig);
        }
    }
}
