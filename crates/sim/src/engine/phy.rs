//! PHY layer: propagation caches and channel measurement.
//!
//! Everything here is a pure function of the scenario geometry, the
//! fading process, and simulation time: the static mean-gain matrices
//! built at construction, the per-coherence-block refresh of the
//! instantaneous linear gain tensor, the memoized per-subchannel
//! interference accumulation, and the CQI measurement scan (which also
//! hosts the radio-link-failure monitor, because RLF is declared from
//! the same per-subchannel decodability the CQI reports measure).
//!
//! Data layout: the hot tensors are flat strided slabs
//! ([`crate::slab`]). The gain pipeline is linear-domain end to end —
//! `static_mw[ue][ap][s]` precombines mean gain, EIRP offset and the
//! per-subchannel power split through one batched `10^(x/10)` pass
//! (rebuilt only when those inputs change), and a fading refresh is just
//! `static_mw × fading_power` over contiguous lanes. The CQI scan never
//! leaves the linear domain either: CQI comes from the bisected
//! [`cellfi_lte::amc::LinearCqiMap`] boundaries and the interference
//! test compares against a precomputed linear margin threshold, so dB
//! values are computed only for the rare interference-event trace.

use super::{LteEngine, LteEngineConfig};
use crate::slab::{Slab2, Slab3};
use crate::topology::Scenario;
use cellfi_core::ConflictGraph;
use cellfi_lte::grid::ResourceGrid;
use cellfi_obs::profile::SpanId;
use cellfi_obs::trace::{Event, EventSink};
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::{db_slab_to_mw, Dbm};
use cellfi_types::{ApId, SubchannelId, UeId};

/// The static link-budget matrices an engine precomputes at
/// construction: positions never move within a run (mobility goes
/// through [`LteEngine::move_ue`], which patches the affected row), so
/// the per-link means and the true conflict graph are computed once.
pub(crate) struct LinkMatrices {
    /// Mean downlink rx power (dBm) per `[ue][ap]` at AP power.
    pub dl_mean_dbm: Slab2,
    /// Mean uplink SNR (dB) per `[ue][ap]` at UE power over the channel.
    pub ul_snr_db: Slab2,
    /// Mean uplink rx power (dBm) per `[ue][ap]` at full UE power.
    pub ul_mean_dbm: Slab2,
    /// Mean AP→AP rx power (dBm) at AP power — the LBT sensing input.
    pub ap_mean_dbm: Slab2,
    /// Per-subchannel noise floor, mW.
    pub noise_mw: Vec<f64>,
    /// True conflict graph from mean gains.
    pub conflict: ConflictGraph,
}

impl LinkMatrices {
    /// Build every static matrix for `scenario` under `config`.
    pub fn build(scenario: &Scenario, config: &LteEngineConfig, grid: &ResourceGrid) -> Self {
        let n_sub = grid.num_subchannels() as usize;
        let n_ue = scenario.n_ues();
        let n_ap = scenario.aps.len();
        let env = &scenario.env;
        let mut dl_mean_dbm = Slab2::new(n_ue, n_ap, 0.0);
        let mut ul_snr_db = Slab2::new(n_ue, n_ap, 0.0);
        let mut ul_mean_dbm = Slab2::new(n_ue, n_ap, 0.0);
        for u in 0..n_ue {
            for a in 0..n_ap {
                dl_mean_dbm.set(
                    u,
                    a,
                    env.mean_rx_power(&scenario.aps[a], scenario.config.ap_power, &scenario.ues[u])
                        .value(),
                );
                ul_snr_db.set(
                    u,
                    a,
                    env.mean_snr(
                        &scenario.ues[u],
                        scenario.config.ue_power,
                        &scenario.aps[a],
                        config.bandwidth.bandwidth(),
                    )
                    .value(),
                );
                ul_mean_dbm.set(
                    u,
                    a,
                    env.mean_rx_power(&scenario.ues[u], scenario.config.ue_power, &scenario.aps[a])
                        .value(),
                );
            }
        }
        let mut ap_mean_dbm = Slab2::new(n_ap, n_ap, f64::NEG_INFINITY);
        for a in 0..n_ap {
            for b in 0..n_ap {
                if a != b {
                    ap_mean_dbm.set(
                        a,
                        b,
                        env.mean_rx_power(
                            &scenario.aps[b],
                            scenario.config.ap_power,
                            &scenario.aps[a],
                        )
                        .value(),
                    );
                }
            }
        }
        let noise_mw: Vec<f64> = (0..n_sub)
            .map(|s| {
                env.noise
                    .floor_mw(grid.subchannel_bandwidth(SubchannelId::new(s as u32)))
                    .value()
            })
            .collect();

        // True conflict graph from mean gains (static).
        let mut conflict = ConflictGraph::new(n_ap);
        let margin = config.interference_margin.value();
        for i in 0..n_ap {
            for j in (i + 1)..n_ap {
                let conflicts = (0..n_ue).any(|u| {
                    let ap = scenario.assoc[u];
                    let other = if ap == i {
                        j
                    } else if ap == j {
                        i
                    } else {
                        return false;
                    };
                    let s_mw = Dbm(dl_mean_dbm.at(u, ap)).to_milliwatts().value();
                    let i_mw = Dbm(dl_mean_dbm.at(u, other)).to_milliwatts().value();
                    // Full-channel signal/interference powers against the
                    // full-channel noise floor (the per-subchannel power
                    // split cancels out of the ratio).
                    let n_mw: f64 = noise_mw.iter().sum();
                    let clean = s_mw / n_mw;
                    let with = s_mw / (i_mw + n_mw);
                    10.0 * (clean / with).log10() > margin
                });
                if conflicts {
                    conflict.add_edge(ApId::new(i as u32), ApId::new(j as u32));
                }
            }
        }

        LinkMatrices {
            dl_mean_dbm,
            ul_snr_db,
            ul_mean_dbm,
            ap_mean_dbm,
            noise_mw,
            conflict,
        }
    }
}

/// Memoized per-subchannel interference accumulation.
///
/// The engine's hottest loop sums, for every (UE, subchannel) pair, the
/// received power from every concurrently transmitting cell. With a
/// saturated PF scheduler the transmitter set of a subchannel is stable
/// for long stretches, and the gains only change when the fading block
/// rolls — so each subchannel's column of per-UE totals is keyed by
/// `(gain generation, interned transmitter-set id)` and recomputed only
/// when that key changes. Set ids come from [`super::cache::TxSetTracker`], so a
/// no-change refresh is a handful of integer compares: zero allocation,
/// zero set cloning. The empty set (id 0) short-circuits in the reader,
/// which keeps a subchannel's cached downlink column valid across the
/// uplink subframes of the TDD cycle.
///
/// Totals include *every* transmitting cell — the serving cell too — so
/// the cache stays valid across handovers; callers subtract the serving
/// cell's own contribution when it is in the set.
#[derive(Debug)]
pub(crate) struct InterferenceCache {
    /// Total received power (mW) per `[subchannel][ue]` summed over the
    /// keyed transmitter set.
    total_mw: Slab2,
    /// Cache key per subchannel: `(gain generation, set id)` the column
    /// was accumulated for. Gain generations start at 1, so `(0, 0)`
    /// means "never filled".
    key: Vec<(u64, u64)>,
    /// Set id per subchannel as of the latest refresh (0 = empty set).
    current: Vec<u64>,
    /// Per-refresh staleness scratch (kept to avoid reallocating).
    stale: Vec<bool>,
    /// Non-empty subchannel probes served from a valid column.
    hits: u64,
    /// Non-empty subchannel probes that had to recompute their column.
    misses: u64,
}

impl InterferenceCache {
    pub fn new(n_sub: usize, n_ue: usize) -> InterferenceCache {
        InterferenceCache {
            total_mw: Slab2::new(n_sub, n_ue, 0.0),
            key: vec![(0, 0); n_sub],
            current: vec![0; n_sub],
            stale: vec![false; n_sub],
            hits: 0,
            misses: 0,
        }
    }

    /// Cumulative `(hits, misses)` over non-empty subchannel probes —
    /// the `cache_hit_floor` monitor's input.
    pub fn probe_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Ensure every non-empty subchannel column matches
    /// `(gain_gen, ids[s])`, recomputing stale columns in parallel
    /// (columns are disjoint rows of the slab). After this, `total(s, ue)`
    /// is exactly `Self::direct_total(&tx[s], lin_mw, ue, s)`.
    pub fn refresh(&mut self, gain_gen: u64, ids: &[u64], tx: &[Vec<usize>], lin_mw: &Slab3) {
        self.current.copy_from_slice(ids);
        let mut any_stale = false;
        for (s, &id) in ids.iter().enumerate() {
            let stale = id != 0 && self.key[s] != (gain_gen, id);
            self.stale[s] = stale;
            any_stale |= stale;
            if id != 0 {
                if stale {
                    self.misses += 1;
                } else {
                    self.hits += 1;
                }
            }
        }
        if !any_stale || self.total_mw.cols() == 0 {
            return;
        }
        let n_ue = self.total_mw.cols();
        let stale = &self.stale;
        crate::parallel::for_each_chunk(self.total_mw.as_mut_slice(), n_ue, 16, |s, col| {
            if !stale[s] {
                return;
            }
            for (ue, slot) in col.iter_mut().enumerate() {
                *slot = Self::direct_total(&tx[s], lin_mw, ue, s);
            }
        });
        for (s, &id) in ids.iter().enumerate() {
            if self.stale[s] {
                self.key[s] = (gain_gen, id);
            }
        }
    }

    /// Total received power (mW) at `ue` on subchannel `s` over the
    /// transmitter set of the latest refresh; 0 when that set is empty.
    #[inline]
    pub fn total(&self, s: usize, ue: usize) -> f64 {
        if self.current[s] == 0 {
            0.0
        } else {
            self.total_mw.at(s, ue)
        }
    }

    /// The unmemoized accumulation the cache must always agree with:
    /// total power at `ue` on subchannel `s` over transmitters `tx`.
    pub fn direct_total(tx: &[usize], lin_mw: &Slab3, ue: usize, s: usize) -> f64 {
        tx.iter().map(|&c| lin_mw.at(ue, c, s)).sum()
    }
}

/// One radio-link-failure monitor tick for a UE, shared verbatim by the
/// live CQI scan and the memo replay so the two paths cannot drift: a
/// backlogged UE with no decodable subchannel accumulates bad time and
/// drops its RRC connection at the timer.
fn rlf_tick(
    now: Instant,
    any_usable: bool,
    queued: u64,
    outage_until: &mut Instant,
    bad_streak_ms: &mut u32,
    rrc_drops: &mut u64,
) {
    if now < *outage_until {
        return; // already reconnecting
    }
    if !any_usable && queued > 0 {
        *bad_streak_ms += Duration::CQI_PERIOD.as_millis() as u32;
        if *bad_streak_ms >= LteEngine::RLF_TIMER_MS {
            *outage_until = now + LteEngine::RECONNECT;
            *rrc_drops += 1;
            *bad_streak_ms = 0;
        }
    } else {
        *bad_streak_ms = 0;
    }
}

impl LteEngine {
    /// Rebuild the static linear-gain slab for one UE row:
    /// `static_mw[ue][ap][s] = 10^((mean + offset + split)/10)` through
    /// the batched conversion kernel. `lane_db` is an `n_sub` scratch.
    pub(super) fn rebuild_static_row(&mut self, u: usize, lane_db: &mut [f64]) {
        // The static slab feeds every downstream gain cache; bump the
        // generation here so a rewritten row can never be replayed
        // through a stale interference column or memoized scan.
        self.gain_gen += 1;
        for a in 0..self.scenario.aps.len() {
            let base = self.dl_mean_dbm.at(u, a) + self.power_offset_db[a];
            for (slot, &split) in lane_db.iter_mut().zip(&self.split_db) {
                *slot = base + split;
            }
            db_slab_to_mw(lane_db, self.static_mw.lane_mut(u, a));
        }
    }

    /// Rebuild the whole static slab (construction, EIRP offset change).
    pub(super) fn rebuild_static(&mut self) {
        let mut lane_db = vec![0.0; self.grid.num_subchannels() as usize];
        for u in 0..self.scenario.n_ues() {
            self.rebuild_static_row(u, &mut lane_db);
        }
    }

    /// Refresh the instantaneous linear gains when the fading block
    /// rolls: per lane, draw the fading power and multiply into the
    /// precombined static gains. All dB→linear math happened at static
    /// rebuild time, so the per-block work is one RNG draw and one
    /// multiply per element over contiguous lanes.
    // cellfi-lint: hot
    pub(super) fn refresh_fading(&mut self) {
        let coherence = self.scenario.env.fading.coherence();
        let block = self.now.as_micros() / coherence.as_micros();
        if block == self.fading_block {
            return;
        }
        self.fading_block = block;
        self.gain_gen += 1;
        self.obs.profiler.begin(SpanId::FadingScan);
        let n_sub = self.grid.num_subchannels() as usize;
        let block_len = self.lin_mw.block_len();
        // Per-UE blocks of the tensor are disjoint and the fading
        // process is a pure function of (nodes, subchannel, time), so
        // the refresh fans out across UE blocks.
        let scenario = &self.scenario;
        let static_mw = &self.static_mw;
        let now = self.now;
        crate::parallel::for_each_chunk(self.lin_mw.as_mut_slice(), block_len, 8, |u, ue_block| {
            let ue_node = scenario.ues[u].node;
            for (a, lane) in ue_block.chunks_exact_mut(n_sub).enumerate() {
                let ap_node = scenario.aps[a].node;
                scenario
                    .env
                    .fading
                    .fill_power_lane(ap_node, ue_node, now, lane);
                for (v, &st) in lane.iter_mut().zip(static_mw.lane(u, a)) {
                    *v = st * (*v).max(1e-12);
                }
            }
        });
        self.obs.profiler.end(SpanId::FadingScan);
    }

    /// Instantaneous SINR for (ue, subchannel) given the transmitting
    /// cell set, from the cached linear gains. Production paths read the
    /// memoized [`InterferenceCache`] instead; this direct form is the
    /// reference the cache property tests compare against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(super) fn sinr_db(&self, ue: usize, s: usize, tx_cells: &[usize]) -> f64 {
        let ap = self.scenario.assoc[ue];
        let signal = self.lin_mw.at(ue, ap, s);
        let interference: f64 = tx_cells
            .iter()
            .filter(|&&c| c != ap)
            .map(|&c| self.lin_mw.at(ue, c, s))
            .sum();
        10.0 * (signal / (interference + self.noise_mw[s])).log10()
    }

    /// Refresh every UE's sub-band CQI from the previous subframe's
    /// transmission pattern (mode 3-0 reports, 2 ms cadence), and run the
    /// radio-link-failure monitor: a backlogged UE that can decode no
    /// subchannel for [`LteEngine::RLF_TIMER_MS`] drops its RRC
    /// connection and spends [`LteEngine::RECONNECT`] re-attaching — the
    /// §6.3.1 "frequent disconnections" under strong data interference.
    ///
    /// The scan is a pure function of `(gain generation, association
    /// generation, per-subchannel transmitter-set ids)`; in steady state
    /// the two-slot [`super::cache::CqiMemo`] replays the remembered
    /// result (CQI values, interference events in scan order) and only
    /// the time-varying RLF bookkeeping runs live.
    // cellfi-lint: hot
    pub(super) fn measure_cqi(&mut self) {
        let n_sub = self.grid.num_subchannels() as usize;
        // Bring the per-subchannel interference columns up to date (a
        // no-op when neither the fading block nor any transmitter set
        // changed since the last accumulation).
        self.obs.profiler.begin(SpanId::SinrCache);
        self.interf.refresh(
            self.gain_gen,
            self.tracker.ids(),
            &self.tx_last,
            &self.lin_mw,
        );
        self.obs.profiler.end(SpanId::SinrCache);
        self.obs.profiler.begin(SpanId::CqiScan);

        if self.fast_path {
            if let Some(entry) = self
                .memo
                .lookup(self.gain_gen, self.assoc_gen, self.tracker.ids())
            {
                // Fast path: replay the remembered scan. CQI values are
                // restored wholesale; interference events re-apply
                // through the epoch flags in the same (ue, subchannel)
                // order the parallel scan's absorb step would emit them.
                for (row, saved) in self.ue_cqi.iter_mut().zip(entry.cqi.chunks_exact(n_sub)) {
                    row.copy_from_slice(saved);
                }
                let now = self.now;
                let tracer = &mut self.obs.tracer;
                for &(ue, s, sinr_v, clean_v) in &entry.hits {
                    let flags = &mut self.epoch[ue as usize].interfered;
                    if !flags[s as usize] {
                        flags[s as usize] = true;
                        tracer.emit(
                            now,
                            Event::CqiInterference {
                                ue,
                                subchannel: s,
                                sinr_db: sinr_v,
                                clean_db: clean_v,
                            },
                        );
                    }
                }
                // RLF depends on queue depths and outage timers, which
                // are time-varying: always run it live.
                for ue in 0..self.scenario.n_ues() {
                    let ap = self.scenario.assoc[ue];
                    let queued = self.cells[ap].queued_bits(UeId::new(ue as u32));
                    rlf_tick(
                        now,
                        entry.any_usable[ue],
                        queued,
                        &mut self.outage_until[ue],
                        &mut self.bad_streak_ms[ue],
                        &mut self.rrc_drops[ue],
                    );
                }
                self.obs.profiler.end(SpanId::CqiScan);
                return;
            }
        }

        let interf = &self.interf;
        let tracker = &self.tracker;
        let lin_mw = &self.lin_mw;
        let noise_mw = &self.noise_mw;
        let interf_thresh_mw = &self.interf_thresh_mw;
        let linmap = &self.linmap;
        let assoc = &self.scenario.assoc;
        let cells = &self.cells;
        let now = self.now;

        // Everything below is per-UE: CQI rows, epoch interference flags
        // and the RLF monitor touch only their own UE's state and draw no
        // randomness, so the scan fans out across UE rows.
        struct UeRow<'a> {
            cqi: &'a mut Vec<cellfi_lte::amc::Cqi>,
            epoch: &'a mut super::UeEpoch,
            bad_streak_ms: &'a mut u32,
            outage_until: &'a mut Instant,
            rrc_drops: &'a mut u64,
            any_usable: &'a mut bool,
            /// Interference hits (flag state ignored) for the memo;
            /// borrows the engine's per-UE scratch buffer so the
            /// steady-state scan allocates nothing once warm.
            hit_scratch: &'a mut Vec<(u32, u32, f64, f64)>,
            /// Per-row event buffer: rows emit concurrently, the caller
            /// absorbs the buffers back in UE index order so the merged
            /// trace is independent of worker scheduling.
            sink: EventSink,
        }
        let tracer = &mut self.obs.tracer;
        let mut row_scratch: Vec<UeRow> = self
            .ue_cqi
            .iter_mut()
            .zip(self.epoch.iter_mut())
            .zip(self.bad_streak_ms.iter_mut())
            .zip(self.outage_until.iter_mut())
            .zip(self.rrc_drops.iter_mut())
            .zip(self.any_usable_scratch.iter_mut())
            .zip(self.hit_scratch.iter_mut())
            .map(
                |(
                    (((((cqi, epoch), bad_streak_ms), outage_until), rrc_drops), any_usable),
                    hit_scratch,
                )| {
                    hit_scratch.clear();
                    UeRow {
                        cqi,
                        epoch,
                        bad_streak_ms,
                        outage_until,
                        rrc_drops,
                        any_usable,
                        hit_scratch,
                        sink: tracer.fork(),
                    }
                },
            )
            .collect();
        // Each row is only ~n_sub float ops but this scan fires every
        // CQI period (2 ms of sim time): below 64 rows per worker the
        // spawn cost dwarfs the row work, so small scenarios stay serial.
        crate::parallel::for_each_row(&mut row_scratch, 64, |ue, row| {
            let ap = assoc[ue];
            let mut any_usable = false;
            let ids = tracker.ids();
            for (s, &signal) in lin_mw.lane(ue, ap).iter().enumerate() {
                // The cached column totals every transmitter including
                // the serving cell; remove its share to get interference.
                let own = if tracker.is_member(s, ap) {
                    signal
                } else {
                    0.0
                };
                let interference = (interf.total(s, ue) - own).max(0.0);
                let cqi = linmap.cqi_for_linear(signal / (interference + noise_mw[s]));
                row.cqi[s] = cqi;
                any_usable |= cqi.usable();
                // Interference ground truth, in the linear domain:
                // `sinr < clean − margin` ⟺ `interference > noise·(10^(margin/10) − 1)`.
                // The dB values are computed only on a hit, for the
                // trace payload and the memo.
                if ids[s] != 0 && interference > interf_thresh_mw[s] {
                    let sinr_v = 10.0 * (signal / (interference + noise_mw[s])).log10();
                    let clean_v = 10.0 * (signal / noise_mw[s]).log10();
                    row.hit_scratch.push((ue as u32, s as u32, sinr_v, clean_v));
                    if !row.epoch.interfered[s] {
                        row.epoch.interfered[s] = true;
                        row.sink.emit(
                            now,
                            Event::CqiInterference {
                                ue: ue as u32,
                                subchannel: s as u32,
                                sinr_db: sinr_v,
                                clean_db: clean_v,
                            },
                        );
                    }
                }
            }
            *row.any_usable = any_usable;
            let queued = cells[ap].queued_bits(UeId::new(ue as u32));
            rlf_tick(
                now,
                any_usable,
                queued,
                row.outage_until,
                row.bad_streak_ms,
                row.rrc_drops,
            );
        });
        self.scan_hits_scratch.clear();
        for row in row_scratch {
            self.scan_hits_scratch.extend_from_slice(row.hit_scratch);
            tracer.absorb(row.sink);
        }
        if self.fast_path {
            self.memo.store(
                self.gain_gen,
                self.assoc_gen,
                self.tracker.ids(),
                &self.ue_cqi,
                &self.any_usable_scratch,
                &self.scan_hits_scratch,
            );
        }
        self.obs.profiler.end(SpanId::CqiScan);
    }

    /// Move a client to a new position, refreshing its link matrices.
    /// Fading realizations are keyed by node ids and time, so they evolve
    /// naturally; only the large-scale gains need recomputation.
    pub fn move_ue(&mut self, ue: usize, position: cellfi_types::geo::Point) {
        self.scenario.ues[ue].position = position;
        for a in 0..self.scenario.aps.len() {
            self.dl_mean_dbm.set(
                ue,
                a,
                self.scenario
                    .env
                    .mean_rx_power(
                        &self.scenario.aps[a],
                        self.scenario.config.ap_power,
                        &self.scenario.ues[ue],
                    )
                    .value(),
            );
            self.ul_mean_dbm.set(
                ue,
                a,
                self.scenario
                    .env
                    .mean_rx_power(
                        &self.scenario.ues[ue],
                        self.scenario.config.ue_power,
                        &self.scenario.aps[a],
                    )
                    .value(),
            );
            self.ul_snr_db.set(
                ue,
                a,
                self.scenario
                    .env
                    .mean_snr(
                        &self.scenario.ues[ue],
                        self.scenario.config.ue_power,
                        &self.scenario.aps[a],
                        self.config.bandwidth.bandwidth(),
                    )
                    .value(),
            );
        }
        // Refresh the static and instantaneous gains for this UE
        // immediately (and invalidate interference columns and memoized
        // scans accumulated over the old row). The subchannel power
        // split is precomputed in `split_db` — it depends only on the
        // subchannel, never on the (ap, subchannel) pair.
        self.gain_gen += 1;
        let n_sub = self.grid.num_subchannels() as usize;
        let mut lane = vec![0.0; n_sub];
        self.rebuild_static_row(ue, &mut lane);
        let ue_node = self.scenario.ues[ue].node;
        for a in 0..self.scenario.aps.len() {
            let ap_node = self.scenario.aps[a].node;
            self.scenario
                .env
                .fading
                .fill_power_lane(ap_node, ue_node, self.now, &mut lane);
            let static_lane = self.static_mw.lane(ue, a);
            for ((v, &p), &st) in self
                .lin_mw
                .lane_mut(ue, a)
                .iter_mut()
                .zip(&lane)
                .zip(static_lane)
            {
                *v = st * p.max(1e-12);
            }
        }
    }
}
