//! PHY layer: propagation caches and channel measurement.
//!
//! Everything here is a pure function of the scenario geometry, the
//! fading process, and simulation time: the static mean-gain matrices
//! built at construction, the per-coherence-block refresh of the
//! instantaneous linear gain tensor, the memoized per-subchannel
//! interference accumulation, and the CQI measurement scan (which also
//! hosts the radio-link-failure monitor, because RLF is declared from
//! the same per-subchannel decodability the CQI reports measure).
//!
//! Data layout: the hot tensors are flat strided slabs
//! ([`crate::slab`]) indexed `[ue][neighbor_slot][s]` behind the
//! engine's neighbor-indirection table ([`crate::slab::IndexSlab`]):
//! slot `sl` of UE `u` is its `sl`-th candidate AP in ascending id
//! order, so dense (uncapped) tables reproduce the old `[ue][ap][s]`
//! layout exactly while a cull floor shrinks the middle axis to the
//! near field. The gain pipeline is linear-domain end to end —
//! `static_mw[ue][slot][s]` precombines mean gain, EIRP offset and the
//! per-subchannel power split through one batched `10^(x/10)` pass
//! (rebuilt only when those inputs change), and a fading refresh is just
//! `static_mw × fading_power` over contiguous lanes. The CQI scan never
//! leaves the linear domain either: CQI comes from the bisected
//! [`cellfi_lte::amc::LinearCqiMap`] boundaries and the interference
//! test compares against a precomputed linear margin threshold, so dB
//! values are computed only for the rare interference-event trace.

use super::{LteEngine, LteEngineConfig};
use crate::slab::Slab2;
use crate::topology::Scenario;
use cellfi_core::ConflictGraph;
use cellfi_lte::grid::ResourceGrid;
use cellfi_obs::profile::SpanId;
use cellfi_obs::trace::{Event, EventSink};
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::{db_slab_to_mw, Dbm};
use cellfi_types::{ApId, SubchannelId, UeId};

/// The static link-budget matrices an engine precomputes at
/// construction: positions never move within a run (mobility goes
/// through [`LteEngine::move_ue`], which patches the affected row), so
/// the per-link means and the true conflict graph are computed once.
pub(crate) struct LinkMatrices {
    /// Mean downlink rx power (dBm) per `[ue][neighbor_slot]` at AP power.
    pub dl_mean_dbm: Slab2,
    /// Mean uplink SNR (dB) per `[ue][neighbor_slot]` at UE power over
    /// the channel.
    pub ul_snr_db: Slab2,
    /// Mean uplink rx power (dBm) per `[ue][neighbor_slot]` at full UE
    /// power.
    pub ul_mean_dbm: Slab2,
    /// Mean AP→AP rx power (dBm) per `[ap][interferer_slot]` at AP
    /// power — the LBT sensing input.
    pub ap_mean_dbm: Slab2,
    /// Per-subchannel noise floor, mW.
    pub noise_mw: Vec<f64>,
    /// True conflict graph from mean gains.
    pub conflict: ConflictGraph,
}

impl LinkMatrices {
    /// Build every static matrix for `scenario` under `config`.
    pub fn build(scenario: &Scenario, config: &LteEngineConfig, grid: &ResourceGrid) -> Self {
        let n_sub = grid.num_subchannels() as usize;
        let n_ue = scenario.n_ues();
        let n_ap = scenario.aps.len();
        let env = &scenario.env;
        let nbr = &scenario.nbr;
        // Slot-indexed link matrices: column `sl` of row `u` is the UE's
        // `sl`-th candidate AP (ascending). With dense neighbor tables
        // the slots are exactly the global AP indices, so values and
        // layout match the old `[ue][ap]` matrices byte for byte.
        let mut dl_mean_dbm = Slab2::new(n_ue, nbr.max_neighbors, f64::NEG_INFINITY);
        let mut ul_snr_db = Slab2::new(n_ue, nbr.max_neighbors, f64::NEG_INFINITY);
        let mut ul_mean_dbm = Slab2::new(n_ue, nbr.max_neighbors, f64::NEG_INFINITY);
        for u in 0..n_ue {
            for (sl, &a) in nbr.candidates(u).iter().enumerate() {
                let a = a as usize;
                dl_mean_dbm.set(
                    u,
                    sl,
                    env.mean_rx_power(&scenario.aps[a], scenario.config.ap_power, &scenario.ues[u])
                        .value(),
                );
                ul_snr_db.set(
                    u,
                    sl,
                    env.mean_snr(
                        &scenario.ues[u],
                        scenario.config.ue_power,
                        &scenario.aps[a],
                        config.bandwidth.bandwidth(),
                    )
                    .value(),
                );
                ul_mean_dbm.set(
                    u,
                    sl,
                    env.mean_rx_power(&scenario.ues[u], scenario.config.ue_power, &scenario.aps[a])
                        .value(),
                );
            }
        }
        let mut ap_mean_dbm = Slab2::new(n_ap, nbr.max_ap_neighbors, f64::NEG_INFINITY);
        for a in 0..n_ap {
            for (sl, &b) in nbr.interferers(a).iter().enumerate() {
                ap_mean_dbm.set(
                    a,
                    sl,
                    env.mean_rx_power(
                        &scenario.aps[b as usize],
                        scenario.config.ap_power,
                        &scenario.aps[a],
                    )
                    .value(),
                );
            }
        }
        let noise_mw: Vec<f64> = (0..n_sub)
            .map(|s| {
                env.noise
                    .floor_mw(grid.subchannel_bandwidth(SubchannelId::new(s as u32)))
                    .value()
            })
            .collect();

        // True conflict graph from mean gains (static). Candidate pairs
        // come from the interferer tables, and only clients of the two
        // endpoints can witness a conflict (the old all-UE scan returned
        // false for everyone else) — so the edge set is unchanged in
        // dense mode and near-field-restricted under a cull floor.
        let mut conflict = ConflictGraph::new(n_ap);
        let margin = config.interference_margin.value();
        let slot_of = |u: usize, a: usize| nbr.candidates(u).binary_search(&(a as u32)).ok();
        for i in 0..n_ap {
            for &j in nbr.interferers(i) {
                let j = j as usize;
                if j <= i {
                    continue;
                }
                let conflicts = nbr.clients(i).iter().chain(nbr.clients(j)).any(|&u| {
                    let u = u as usize;
                    let ap = scenario.assoc[u];
                    let other = if ap == i { j } else { i };
                    // A culled victim link cannot witness a conflict.
                    let (Some(ap_sl), Some(other_sl)) = (slot_of(u, ap), slot_of(u, other)) else {
                        return false;
                    };
                    let s_mw = Dbm(dl_mean_dbm.at(u, ap_sl)).to_milliwatts().value();
                    let i_mw = Dbm(dl_mean_dbm.at(u, other_sl)).to_milliwatts().value();
                    // Full-channel signal/interference powers against the
                    // full-channel noise floor (the per-subchannel power
                    // split cancels out of the ratio).
                    let n_mw: f64 = noise_mw.iter().sum();
                    let clean = s_mw / n_mw;
                    let with = s_mw / (i_mw + n_mw);
                    10.0 * (clean / with).log10() > margin
                });
                if conflicts {
                    conflict.add_edge(ApId::new(i as u32), ApId::new(j as u32));
                }
            }
        }

        LinkMatrices {
            dl_mean_dbm,
            ul_snr_db,
            ul_mean_dbm,
            ap_mean_dbm,
            noise_mw,
            conflict,
        }
    }
}

/// One radio-link-failure monitor tick for a UE, shared verbatim by the
/// live CQI scan and the memo replay so the two paths cannot drift: a
/// backlogged UE with no decodable subchannel accumulates bad time and
/// drops its RRC connection at the timer.
fn rlf_tick(
    now: Instant,
    any_usable: bool,
    queued: u64,
    outage_until: &mut Instant,
    bad_streak_ms: &mut u32,
    rrc_drops: &mut u64,
) {
    if now < *outage_until {
        return; // already reconnecting
    }
    if !any_usable && queued > 0 {
        *bad_streak_ms += Duration::CQI_PERIOD.as_millis() as u32;
        if *bad_streak_ms >= LteEngine::RLF_TIMER_MS {
            *outage_until = now + LteEngine::RECONNECT;
            *rrc_drops += 1;
            *bad_streak_ms = 0;
        }
    } else {
        *bad_streak_ms = 0;
    }
}

impl LteEngine {
    /// Rebuild the static linear-gain slab for one UE row:
    /// `static_mw[ue][slot][s] = 10^((mean + offset + split)/10)` through
    /// the batched conversion kernel, over the UE's candidate neighbor
    /// slots. `lane_db` is an `n_sub` scratch.
    pub(super) fn rebuild_static_row(&mut self, u: usize, lane_db: &mut [f64]) {
        // The static slab feeds every downstream gain cache; bump the
        // generation here so a rewritten row can never be replayed
        // through a stale interference column or memoized scan.
        self.gain_gen += 1;
        for sl in 0..self.nbr_count[u] as usize {
            let a = self.nbr.at(u, sl) as usize;
            let base = self.dl_mean_dbm.at(u, sl) + self.power_offset_db[a];
            for (slot, &split) in lane_db.iter_mut().zip(&self.split_db) {
                *slot = base + split;
            }
            db_slab_to_mw(lane_db, self.static_mw.lane_mut(u, sl));
        }
    }

    /// Rebuild the whole static slab (construction, EIRP offset change).
    pub(super) fn rebuild_static(&mut self) {
        let mut lane_db = vec![0.0; self.grid.num_subchannels() as usize];
        for u in 0..self.scenario.n_ues() {
            self.rebuild_static_row(u, &mut lane_db);
        }
    }

    /// Refresh the instantaneous linear gains when the fading block
    /// rolls: per lane, draw the fading power and multiply into the
    /// precombined static gains. All dB→linear math happened at static
    /// rebuild time, so the per-block work is one RNG draw and one
    /// multiply per element over contiguous lanes.
    // cellfi-lint: hot
    pub(super) fn refresh_fading(&mut self) {
        let coherence = self.scenario.env.fading.coherence();
        let block = self.now.as_micros() / coherence.as_micros();
        if block == self.fading_block {
            return;
        }
        self.fading_block = block;
        self.gain_gen += 1;
        let n_sub = self.grid.num_subchannels() as usize;
        let block_len = self.lin_mw.block_len();
        if block_len == 0 {
            return; // no UEs or no candidates: nothing to refresh
        }
        self.obs.profiler.begin(SpanId::FadingScan);
        // Per-UE blocks of the tensor are disjoint and the fading
        // process is a pure function of (nodes, subchannel, time), so
        // the refresh fans out across UE blocks. Only the valid neighbor
        // slots are refreshed; padding lanes stay zero and are never
        // read.
        let scenario = &self.scenario;
        let static_mw = &self.static_mw;
        let nbr = &self.nbr;
        let nbr_count = &self.nbr_count;
        let now = self.now;
        crate::parallel::for_each_chunk(self.lin_mw.as_mut_slice(), block_len, 8, |u, ue_block| {
            let ue_node = scenario.ues[u].node;
            let count = nbr_count[u] as usize;
            for (sl, lane) in ue_block.chunks_exact_mut(n_sub).enumerate().take(count) {
                let ap_node = scenario.aps[nbr.at(u, sl) as usize].node;
                scenario
                    .env
                    .fading
                    .fill_power_lane(ap_node, ue_node, now, lane);
                for (v, &st) in lane.iter_mut().zip(static_mw.lane(u, sl)) {
                    *v = st * (*v).max(1e-12);
                }
            }
        });
        self.obs.profiler.end(SpanId::FadingScan);
    }

    /// Instantaneous SINR for (ue, subchannel) given the transmitting
    /// cell set, from the cached linear gains. Production paths read the
    /// memoized [`InterferenceCache`] instead; this direct form is the
    /// reference the cache property tests compare against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(super) fn sinr_db(&self, ue: usize, s: usize, tx_cells: &[usize]) -> f64 {
        let ap = self.scenario.assoc[ue];
        let count = self.nbr_count[ue] as usize;
        let signal = self.lin_mw.at(ue, self.serving_slot[ue] as usize, s);
        let interference: f64 = tx_cells
            .iter()
            .filter(|&&c| c != ap)
            .filter_map(|&c| self.nbr.position(ue, count, c as u32))
            .map(|sl| self.lin_mw.at(ue, sl, s))
            .sum();
        10.0 * (signal / (interference + self.noise_mw[s])).log10()
    }

    /// Refresh every UE's sub-band CQI from the previous subframe's
    /// transmission pattern (mode 3-0 reports, 2 ms cadence), and run the
    /// radio-link-failure monitor: a backlogged UE that can decode no
    /// subchannel for [`LteEngine::RLF_TIMER_MS`] drops its RRC
    /// connection and spends [`LteEngine::RECONNECT`] re-attaching — the
    /// §6.3.1 "frequent disconnections" under strong data interference.
    ///
    /// The scan is a pure function of `(gain generation, association
    /// generation, per-subchannel transmitter-set ids)`; in steady state
    /// the two-slot [`super::cache::CqiMemo`] replays the remembered
    /// result (CQI values, interference events in scan order) and only
    /// the time-varying RLF bookkeeping runs live.
    // cellfi-lint: hot
    pub(super) fn measure_cqi(&mut self) {
        let n_sub = self.grid.num_subchannels() as usize;
        // Bring the per-subchannel interference columns up to date (a
        // no-op when neither the fading block nor any transmitter set
        // changed since the last accumulation).
        self.obs.profiler.begin(SpanId::SinrCache);
        self.interf.refresh(
            self.gain_gen,
            &self.tracker,
            &self.nbr,
            &self.nbr_count,
            &self.lin_mw,
        );
        self.obs.profiler.end(SpanId::SinrCache);
        self.obs.profiler.begin(SpanId::CqiScan);

        if self.fast_path {
            if let Some(entry) = self
                .memo
                .lookup(self.gain_gen, self.assoc_gen, self.tracker.ids())
            {
                // Fast path: replay the remembered scan. CQI values are
                // restored wholesale; interference events re-apply
                // through the epoch flags in the same (ue, subchannel)
                // order the parallel scan's absorb step would emit them.
                for (row, saved) in self.ue_cqi.iter_mut().zip(entry.cqi.chunks_exact(n_sub)) {
                    row.copy_from_slice(saved);
                }
                let now = self.now;
                let tracer = &mut self.obs.tracer;
                for &(ue, s, sinr_v, clean_v) in &entry.hits {
                    let flags = &mut self.epoch[ue as usize].interfered;
                    if !flags[s as usize] {
                        flags[s as usize] = true;
                        tracer.emit(
                            now,
                            Event::CqiInterference {
                                ue,
                                subchannel: s,
                                sinr_db: sinr_v,
                                clean_db: clean_v,
                            },
                        );
                    }
                }
                // RLF depends on queue depths and outage timers, which
                // are time-varying: always run it live.
                for ue in 0..self.scenario.n_ues() {
                    let ap = self.scenario.assoc[ue];
                    let queued = self.cells[ap].queued_bits(UeId::new(ue as u32));
                    rlf_tick(
                        now,
                        entry.any_usable[ue],
                        queued,
                        &mut self.outage_until[ue],
                        &mut self.bad_streak_ms[ue],
                        &mut self.rrc_drops[ue],
                    );
                }
                self.obs.profiler.end(SpanId::CqiScan);
                return;
            }
        }

        let interf = &self.interf;
        let tracker = &self.tracker;
        let lin_mw = &self.lin_mw;
        let noise_mw = &self.noise_mw;
        let interf_thresh_mw = &self.interf_thresh_mw;
        let linmap = &self.linmap;
        let assoc = &self.scenario.assoc;
        let serving_slot = &self.serving_slot;
        let cells = &self.cells;
        let now = self.now;

        // Everything below is per-UE: CQI rows, epoch interference flags
        // and the RLF monitor touch only their own UE's state and draw no
        // randomness, so the scan fans out across UE rows.
        struct UeRow<'a> {
            cqi: &'a mut Vec<cellfi_lte::amc::Cqi>,
            epoch: &'a mut super::UeEpoch,
            bad_streak_ms: &'a mut u32,
            outage_until: &'a mut Instant,
            rrc_drops: &'a mut u64,
            any_usable: &'a mut bool,
            /// Interference hits (flag state ignored) for the memo;
            /// borrows the engine's per-UE scratch buffer so the
            /// steady-state scan allocates nothing once warm.
            hit_scratch: &'a mut Vec<(u32, u32, f64, f64)>,
            /// Per-row event buffer: rows emit concurrently, the caller
            /// absorbs the buffers back in UE index order so the merged
            /// trace is independent of worker scheduling.
            sink: EventSink,
        }
        let tracer = &mut self.obs.tracer;
        let mut row_scratch: Vec<UeRow> = self
            .ue_cqi
            .iter_mut()
            .zip(self.epoch.iter_mut())
            .zip(self.bad_streak_ms.iter_mut())
            .zip(self.outage_until.iter_mut())
            .zip(self.rrc_drops.iter_mut())
            .zip(self.any_usable_scratch.iter_mut())
            .zip(self.hit_scratch.iter_mut())
            .map(
                |(
                    (((((cqi, epoch), bad_streak_ms), outage_until), rrc_drops), any_usable),
                    hit_scratch,
                )| {
                    hit_scratch.clear();
                    UeRow {
                        cqi,
                        epoch,
                        bad_streak_ms,
                        outage_until,
                        rrc_drops,
                        any_usable,
                        hit_scratch,
                        sink: tracer.fork(),
                    }
                },
            )
            .collect();
        // Each row is only ~n_sub float ops but this scan fires every
        // CQI period (2 ms of sim time): below 64 rows per worker the
        // spawn cost dwarfs the row work, so small scenarios stay serial.
        crate::parallel::for_each_row(&mut row_scratch, 64, |ue, row| {
            let ap = assoc[ue];
            let mut any_usable = false;
            let ids = tracker.ids();
            // The serving lane lives at the UE's serving neighbor slot;
            // transmitter membership stays keyed by global AP id.
            for (s, &signal) in lin_mw
                .lane(ue, serving_slot[ue] as usize)
                .iter()
                .enumerate()
            {
                // The cached column totals every transmitter including
                // the serving cell; remove its share to get interference.
                let own = if tracker.is_member(s, ap) {
                    signal
                } else {
                    0.0
                };
                let interference = (interf.total(s, ue) - own).max(0.0);
                let cqi = linmap.cqi_for_linear(signal / (interference + noise_mw[s]));
                row.cqi[s] = cqi;
                any_usable |= cqi.usable();
                // Interference ground truth, in the linear domain:
                // `sinr < clean − margin` ⟺ `interference > noise·(10^(margin/10) − 1)`.
                // The dB values are computed only on a hit, for the
                // trace payload and the memo.
                if ids[s] != 0 && interference > interf_thresh_mw[s] {
                    let sinr_v = 10.0 * (signal / (interference + noise_mw[s])).log10();
                    let clean_v = 10.0 * (signal / noise_mw[s]).log10();
                    row.hit_scratch.push((ue as u32, s as u32, sinr_v, clean_v));
                    if !row.epoch.interfered[s] {
                        row.epoch.interfered[s] = true;
                        row.sink.emit(
                            now,
                            Event::CqiInterference {
                                ue: ue as u32,
                                subchannel: s as u32,
                                sinr_db: sinr_v,
                                clean_db: clean_v,
                            },
                        );
                    }
                }
            }
            *row.any_usable = any_usable;
            let queued = cells[ap].queued_bits(UeId::new(ue as u32));
            rlf_tick(
                now,
                any_usable,
                queued,
                row.outage_until,
                row.bad_streak_ms,
                row.rrc_drops,
            );
        });
        self.scan_hits_scratch.clear();
        for row in row_scratch {
            self.scan_hits_scratch.extend_from_slice(row.hit_scratch);
            tracer.absorb(row.sink);
        }
        if self.fast_path {
            self.memo.store(
                self.gain_gen,
                self.assoc_gen,
                self.tracker.ids(),
                &self.ue_cqi,
                &self.any_usable_scratch,
                &self.scan_hits_scratch,
            );
        }
        self.obs.profiler.end(SpanId::CqiScan);
    }

    /// Move a client to a new position, refreshing its link matrices.
    /// Fading realizations are keyed by node ids and time, so they evolve
    /// naturally; only the large-scale gains need recomputation.
    ///
    /// The candidate neighbor set is *not* rebuilt: mobility experiments
    /// run dense (no cull floor), where every AP is already a candidate.
    /// A culled scenario keeps the candidate set of the drop position.
    pub fn move_ue(&mut self, ue: usize, position: cellfi_types::geo::Point) {
        self.scenario.ues[ue].position = position;
        let count = self.nbr_count[ue] as usize;
        for sl in 0..count {
            let a = self.nbr.at(ue, sl) as usize;
            self.dl_mean_dbm.set(
                ue,
                sl,
                self.scenario
                    .env
                    .mean_rx_power(
                        &self.scenario.aps[a],
                        self.scenario.config.ap_power,
                        &self.scenario.ues[ue],
                    )
                    .value(),
            );
            self.ul_mean_dbm.set(
                ue,
                sl,
                self.scenario
                    .env
                    .mean_rx_power(
                        &self.scenario.ues[ue],
                        self.scenario.config.ue_power,
                        &self.scenario.aps[a],
                    )
                    .value(),
            );
            self.ul_snr_db.set(
                ue,
                sl,
                self.scenario
                    .env
                    .mean_snr(
                        &self.scenario.ues[ue],
                        self.scenario.config.ue_power,
                        &self.scenario.aps[a],
                        self.config.bandwidth.bandwidth(),
                    )
                    .value(),
            );
        }
        // Refresh the static and instantaneous gains for this UE
        // immediately (and invalidate interference columns and memoized
        // scans accumulated over the old row). The subchannel power
        // split is precomputed in `split_db` — it depends only on the
        // subchannel, never on the (ap, subchannel) pair.
        self.gain_gen += 1;
        let n_sub = self.grid.num_subchannels() as usize;
        let mut lane = vec![0.0; n_sub];
        self.rebuild_static_row(ue, &mut lane);
        let ue_node = self.scenario.ues[ue].node;
        for sl in 0..count {
            let ap_node = self.scenario.aps[self.nbr.at(ue, sl) as usize].node;
            self.scenario
                .env
                .fading
                .fill_power_lane(ap_node, ue_node, self.now, &mut lane);
            let static_lane = self.static_mw.lane(ue, sl);
            for ((v, &p), &st) in self
                .lin_mw
                .lane_mut(ue, sl)
                .iter_mut()
                .zip(&lane)
                .zip(static_lane)
            {
                *v = st * p.max(1e-12);
            }
        }
    }
}
