//! PHY layer: propagation caches and channel measurement.
//!
//! Everything here is a pure function of the scenario geometry, the
//! fading process, and simulation time: the static mean-gain matrices
//! built at construction, the per-coherence-block refresh of the
//! instantaneous linear gain tensor, the memoized per-subchannel
//! interference accumulation, and the CQI measurement scan (which also
//! hosts the radio-link-failure monitor, because RLF is declared from
//! the same per-subchannel decodability the CQI reports measure).

use super::{LteEngine, LteEngineConfig};
use crate::topology::Scenario;
use cellfi_core::ConflictGraph;
use cellfi_lte::grid::ResourceGrid;
use cellfi_obs::profile::SpanId;
use cellfi_obs::trace::{Event, EventSink};
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::{Db, Dbm};
use cellfi_types::{ApId, SubchannelId, UeId};

/// The static link-budget matrices an engine precomputes at
/// construction: positions never move within a run (mobility goes
/// through [`LteEngine::move_ue`], which patches the affected row), so
/// the per-link means and the true conflict graph are computed once.
pub(crate) struct LinkMatrices {
    /// Mean downlink rx power (dBm) per [ue][ap] at AP power.
    pub dl_mean_dbm: Vec<Vec<f64>>,
    /// Mean uplink SNR (dB) per [ue][ap] at UE power over the channel.
    pub ul_snr_db: Vec<Vec<f64>>,
    /// Mean uplink rx power (dBm) per [ue][ap] at full UE power.
    pub ul_mean_dbm: Vec<Vec<f64>>,
    /// Mean AP→AP rx power (dBm) at AP power — the LBT sensing input.
    pub ap_mean_dbm: Vec<Vec<f64>>,
    /// Per-subchannel noise floor, mW.
    pub noise_mw: Vec<f64>,
    /// True conflict graph from mean gains.
    pub conflict: ConflictGraph,
}

impl LinkMatrices {
    /// Build every static matrix for `scenario` under `config`.
    pub fn build(scenario: &Scenario, config: &LteEngineConfig, grid: &ResourceGrid) -> Self {
        let n_sub = grid.num_subchannels() as usize;
        let n_ue = scenario.n_ues();
        let n_ap = scenario.aps.len();
        let env = &scenario.env;
        let dl_mean_dbm: Vec<Vec<f64>> = (0..n_ue)
            .map(|u| {
                (0..n_ap)
                    .map(|a| {
                        env.mean_rx_power(
                            &scenario.aps[a],
                            scenario.config.ap_power,
                            &scenario.ues[u],
                        )
                        .value()
                    })
                    .collect()
            })
            .collect();
        let ul_snr_db: Vec<Vec<f64>> = (0..n_ue)
            .map(|u| {
                (0..n_ap)
                    .map(|a| {
                        env.mean_snr(
                            &scenario.ues[u],
                            scenario.config.ue_power,
                            &scenario.aps[a],
                            config.bandwidth.bandwidth(),
                        )
                        .value()
                    })
                    .collect()
            })
            .collect();
        let ul_mean_dbm: Vec<Vec<f64>> = (0..n_ue)
            .map(|u| {
                (0..n_ap)
                    .map(|a| {
                        env.mean_rx_power(
                            &scenario.ues[u],
                            scenario.config.ue_power,
                            &scenario.aps[a],
                        )
                        .value()
                    })
                    .collect()
            })
            .collect();
        let ap_mean_dbm: Vec<Vec<f64>> = (0..n_ap)
            .map(|a| {
                (0..n_ap)
                    .map(|b| {
                        if a == b {
                            f64::NEG_INFINITY
                        } else {
                            env.mean_rx_power(
                                &scenario.aps[b],
                                scenario.config.ap_power,
                                &scenario.aps[a],
                            )
                            .value()
                        }
                    })
                    .collect()
            })
            .collect();
        let noise_mw: Vec<f64> = (0..n_sub)
            .map(|s| {
                env.noise
                    .floor_mw(grid.subchannel_bandwidth(SubchannelId::new(s as u32)))
                    .value()
            })
            .collect();

        // True conflict graph from mean gains (static).
        let mut conflict = ConflictGraph::new(n_ap);
        let margin = config.interference_margin.value();
        for i in 0..n_ap {
            for j in (i + 1)..n_ap {
                let conflicts = (0..n_ue).any(|u| {
                    let ap = scenario.assoc[u];
                    let other = if ap == i {
                        j
                    } else if ap == j {
                        i
                    } else {
                        return false;
                    };
                    let s_mw = Dbm(dl_mean_dbm[u][ap]).to_milliwatts().value();
                    let i_mw = Dbm(dl_mean_dbm[u][other]).to_milliwatts().value();
                    // Full-channel signal/interference powers against the
                    // full-channel noise floor (the per-subchannel power
                    // split cancels out of the ratio).
                    let n_mw: f64 = noise_mw.iter().sum();
                    let clean = s_mw / n_mw;
                    let with = s_mw / (i_mw + n_mw);
                    10.0 * (clean / with).log10() > margin
                });
                if conflicts {
                    conflict.add_edge(ApId::new(i as u32), ApId::new(j as u32));
                }
            }
        }

        LinkMatrices {
            dl_mean_dbm,
            ul_snr_db,
            ul_mean_dbm,
            ap_mean_dbm,
            noise_mw,
            conflict,
        }
    }
}

/// Memoized per-subchannel interference accumulation.
///
/// The engine's hottest loop sums, for every (UE, subchannel) pair, the
/// received power from every concurrently transmitting cell. With a
/// saturated PF scheduler the transmitter set of a subchannel is stable
/// for long stretches (masks only change at epoch boundaries, and a
/// backlogged cell transmits every subframe), and the gains themselves
/// only change when the fading block rolls — so the same sums were being
/// recomputed every CQI period. This cache keys each subchannel's column
/// of per-UE power totals by `(gain generation, transmitter set)` and
/// recomputes a column only when its key changes.
///
/// Totals include *every* transmitting cell — the serving cell too — so
/// the cache stays valid across handovers; callers subtract the serving
/// cell's own contribution when it is in the set.
#[derive(Debug)]
pub(crate) struct InterferenceCache {
    /// Total received power (mW) per [subchannel][ue] summed over the
    /// cached transmitter set.
    pub total_mw: Vec<Vec<f64>>,
    /// Cache key per subchannel: gain generation + transmitter set it
    /// was accumulated for. `None` until first filled.
    key: Vec<Option<(u64, Vec<usize>)>>,
}

impl InterferenceCache {
    pub fn new(n_sub: usize, n_ue: usize) -> InterferenceCache {
        InterferenceCache {
            total_mw: vec![vec![0.0; n_ue]; n_sub],
            key: vec![None; n_sub],
        }
    }

    /// Ensure every subchannel's column matches `(gain_gen, tx[s])`,
    /// recomputing stale columns in parallel (columns are disjoint).
    /// After this, `total_mw[s][ue]` is exactly
    /// `Self::direct_total(tx[s], lin_mw, ue, s)` for every pair.
    pub fn refresh(&mut self, gain_gen: u64, tx: &[Vec<usize>], lin_mw: &[Vec<Vec<f64>>]) {
        let stale: Vec<usize> = (0..tx.len())
            .filter(|&s| !matches!(&self.key[s], Some((g, t)) if *g == gain_gen && t == &tx[s]))
            .collect();
        if stale.is_empty() {
            return;
        }
        // Pull the stale columns out so each worker owns its rows.
        let mut columns: Vec<(usize, Vec<f64>)> = stale
            .iter()
            .map(|&s| (s, std::mem::take(&mut self.total_mw[s])))
            .collect();
        crate::parallel::for_each_row(&mut columns, 16, |_, row| {
            let (s, col) = (row.0, &mut row.1);
            for (ue, slot) in col.iter_mut().enumerate() {
                *slot = Self::direct_total(&tx[s], lin_mw, ue, s);
            }
        });
        for (s, col) in columns {
            self.total_mw[s] = col;
            self.key[s] = Some((gain_gen, tx[s].clone()));
        }
    }

    /// The unmemoized accumulation the cache must always agree with:
    /// total power at `ue` on subchannel `s` over transmitters `tx`.
    pub fn direct_total(tx: &[usize], lin_mw: &[Vec<Vec<f64>>], ue: usize, s: usize) -> f64 {
        tx.iter().map(|&c| lin_mw[ue][c][s]).sum()
    }
}

impl LteEngine {
    /// Refresh the instantaneous linear gains when the fading block rolls.
    pub(super) fn refresh_fading(&mut self) {
        let coherence = self.scenario.env.fading.coherence();
        let block = self.now.as_micros() / coherence.as_micros();
        if block == self.fading_block {
            return;
        }
        self.fading_block = block;
        self.gain_gen += 1;
        let span = self.obs.profiler.begin();
        let n_sub = self.grid.num_subchannels() as usize;
        // Downlink power is split across the carrier's RBs: a subchannel
        // receives only its share of the cell's total power.
        let split_db: Vec<f64> = (0..n_sub)
            .map(|s| {
                let sc = SubchannelId::new(s as u32);
                (self
                    .grid
                    .subchannel_tx_power(self.scenario.config.ap_power, sc)
                    - self.scenario.config.ap_power)
                    .value()
            })
            .collect();
        // Per-UE rows of the gain tensor are disjoint and the fading
        // process is a pure function of (nodes, subchannel, time), so the
        // refresh fans out across UEs.
        let scenario = &self.scenario;
        let dl_mean_dbm = &self.dl_mean_dbm;
        let power_offset_db = &self.power_offset_db;
        let now = self.now;
        crate::parallel::for_each_row(&mut self.lin_mw, 8, |u, row| {
            let ue_node = scenario.ues[u].node;
            for (a, per_ap) in row.iter_mut().enumerate() {
                let ap_node = scenario.aps[a].node;
                for (s, slot) in per_ap.iter_mut().enumerate() {
                    let f = scenario
                        .env
                        .fading
                        .gain(ap_node, ue_node, SubchannelId::new(s as u32), now)
                        .value();
                    *slot = Dbm(dl_mean_dbm[u][a] + power_offset_db[a] + split_db[s] + f)
                        .to_milliwatts()
                        .value();
                }
            }
        });
        self.obs.profiler.end(SpanId::FadingScan, span);
    }

    /// Instantaneous SINR for (ue, subchannel) given the transmitting
    /// cell set, from the cached linear gains. Production paths read the
    /// memoized [`InterferenceCache`] instead; this direct form is the
    /// reference the cache property tests compare against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(super) fn sinr_db(&self, ue: usize, s: usize, tx_cells: &[usize]) -> f64 {
        let ap = self.scenario.assoc[ue];
        let signal = self.lin_mw[ue][ap][s];
        let interference: f64 = tx_cells
            .iter()
            .filter(|&&c| c != ap)
            .map(|&c| self.lin_mw[ue][c][s])
            .sum();
        10.0 * (signal / (interference + self.noise_mw[s])).log10()
    }

    /// Refresh every UE's sub-band CQI from the previous subframe's
    /// transmission pattern (mode 3-0 reports, 2 ms cadence), and run the
    /// radio-link-failure monitor: a backlogged UE that can decode no
    /// subchannel for [`LteEngine::RLF_TIMER_MS`] drops its RRC
    /// connection and spends [`LteEngine::RECONNECT`] re-attaching — the
    /// §6.3.1 "frequent disconnections" under strong data interference.
    pub(super) fn measure_cqi(&mut self) {
        let n_sub = self.grid.num_subchannels() as usize;
        let margin = self.config.interference_margin.value();
        // Bring the per-subchannel interference columns up to date (a
        // no-op when neither the fading block nor any transmitter set
        // changed since the last accumulation).
        let span = self.obs.profiler.begin();
        self.interf
            .refresh(self.gain_gen, &self.tx_last, &self.lin_mw);
        self.obs.profiler.end(SpanId::SinrCache, span);
        let span = self.obs.profiler.begin();
        let totals = &self.interf.total_mw;
        let tx_last = &self.tx_last;
        let lin_mw = &self.lin_mw;
        let noise_mw = &self.noise_mw;
        let assoc = &self.scenario.assoc;
        let cells = &self.cells;
        let table = &self.table;
        let now = self.now;

        // Everything below is per-UE: CQI rows, epoch interference flags
        // and the RLF monitor touch only their own UE's state and draw no
        // randomness, so the scan fans out across UE rows.
        struct UeRow<'a> {
            cqi: &'a mut Vec<cellfi_lte::amc::Cqi>,
            epoch: &'a mut super::UeEpoch,
            bad_streak_ms: &'a mut u32,
            outage_until: &'a mut Instant,
            rrc_drops: &'a mut u64,
            /// Per-row event buffer: rows emit concurrently, the caller
            /// absorbs the buffers back in UE index order so the merged
            /// trace is independent of worker scheduling.
            sink: EventSink,
        }
        let tracer = &mut self.obs.tracer;
        let mut rows: Vec<UeRow> = self
            .ue_cqi
            .iter_mut()
            .zip(self.epoch.iter_mut())
            .zip(self.bad_streak_ms.iter_mut())
            .zip(self.outage_until.iter_mut())
            .zip(self.rrc_drops.iter_mut())
            .map(
                |((((cqi, epoch), bad_streak_ms), outage_until), rrc_drops)| UeRow {
                    cqi,
                    epoch,
                    bad_streak_ms,
                    outage_until,
                    rrc_drops,
                    sink: tracer.fork(),
                },
            )
            .collect();
        // Each row is only ~n_sub float ops but this scan fires every
        // CQI period (2 ms of sim time): below 64 rows per worker the
        // spawn cost dwarfs the row work, so small scenarios stay serial.
        crate::parallel::for_each_row(&mut rows, 64, |ue, row| {
            let ap = assoc[ue];
            let mut any_usable = false;
            for s in 0..n_sub {
                let signal = lin_mw[ue][ap][s];
                // The cached column totals every transmitter including
                // the serving cell; remove its share to get interference.
                let own = if tx_last[s].contains(&ap) {
                    signal
                } else {
                    0.0
                };
                let interference = (totals[s][ue] - own).max(0.0);
                let sinr = 10.0 * (signal / (interference + noise_mw[s])).log10();
                row.cqi[s] = table.cqi_for_sinr(Db(sinr));
                any_usable |= row.cqi[s].usable();
                if !tx_last[s].is_empty() {
                    let clean = 10.0 * (signal / noise_mw[s]).log10();
                    if sinr < clean - margin && !row.epoch.interfered[s] {
                        row.epoch.interfered[s] = true;
                        row.sink.emit(
                            now,
                            Event::CqiInterference {
                                ue: ue as u32,
                                subchannel: s as u32,
                                sinr_db: sinr,
                                clean_db: clean,
                            },
                        );
                    }
                }
            }
            // RLF monitor.
            if now < *row.outage_until {
                return; // already reconnecting
            }
            let queued = cells[ap].queued_bits(UeId::new(ue as u32));
            if !any_usable && queued > 0 {
                *row.bad_streak_ms += Duration::CQI_PERIOD.as_millis() as u32;
                if *row.bad_streak_ms >= LteEngine::RLF_TIMER_MS {
                    *row.outage_until = now + LteEngine::RECONNECT;
                    *row.rrc_drops += 1;
                    *row.bad_streak_ms = 0;
                }
            } else {
                *row.bad_streak_ms = 0;
            }
        });
        for row in rows {
            tracer.absorb(row.sink);
        }
        self.obs.profiler.end(SpanId::CqiScan, span);
    }

    /// Move a client to a new position, refreshing its link matrices.
    /// Fading realizations are keyed by node ids and time, so they evolve
    /// naturally; only the large-scale gains need recomputation.
    pub fn move_ue(&mut self, ue: usize, position: cellfi_types::geo::Point) {
        self.scenario.ues[ue].position = position;
        let env = &self.scenario.env;
        for a in 0..self.scenario.aps.len() {
            self.dl_mean_dbm[ue][a] = env
                .mean_rx_power(
                    &self.scenario.aps[a],
                    self.scenario.config.ap_power,
                    &self.scenario.ues[ue],
                )
                .value();
            self.ul_mean_dbm[ue][a] = env
                .mean_rx_power(
                    &self.scenario.ues[ue],
                    self.scenario.config.ue_power,
                    &self.scenario.aps[a],
                )
                .value();
            self.ul_snr_db[ue][a] = env
                .mean_snr(
                    &self.scenario.ues[ue],
                    self.scenario.config.ue_power,
                    &self.scenario.aps[a],
                    self.config.bandwidth.bandwidth(),
                )
                .value();
        }
        // Refresh the instantaneous gains for this UE immediately (and
        // invalidate interference columns accumulated over the old row).
        self.gain_gen += 1;
        let n_sub = self.grid.num_subchannels() as usize;
        let ue_node = self.scenario.ues[ue].node;
        for a in 0..self.scenario.aps.len() {
            let ap_node = self.scenario.aps[a].node;
            for sc in 0..n_sub {
                let split = (self.grid.subchannel_tx_power(
                    self.scenario.config.ap_power,
                    SubchannelId::new(sc as u32),
                ) - self.scenario.config.ap_power)
                    .value();
                let f = self
                    .scenario
                    .env
                    .fading
                    .gain(ap_node, ue_node, SubchannelId::new(sc as u32), self.now)
                    .value();
                self.lin_mw[ue][a][sc] =
                    Dbm(self.dl_mean_dbm[ue][a] + self.power_offset_db[a] + split + f)
                        .to_milliwatts()
                        .value();
            }
        }
    }
}
