//! Neighbor-indirection layer: packs the scenario's CSR candidate and
//! interferer rows ([`crate::topology::NeighborTable`]) into the
//! uniform-stride [`IndexSlab`] tables the PHY slabs are laid out
//! behind. With the cull floor off the candidate rows are dense
//! (every AP, ascending), so neighbor slot ≡ global AP id and the
//! engine reproduces the pre-culling layout bit for bit; a floor
//! shrinks the middle slab axis to the near field.

use super::LteEngine;
use crate::slab::IndexSlab;
use crate::topology::Scenario;

/// Pack the scenario's CSR neighbor rows into the engine's uniform-
/// stride indirection slabs (`u32::MAX` pads the unused tail slots; the
/// count vectors bound every walk, so the padding is never read).
pub(super) fn neighbor_slabs(
    scenario: &Scenario,
) -> (IndexSlab, Vec<u32>, Vec<u32>, IndexSlab, Vec<u32>) {
    let n_ue = scenario.n_ues();
    let n_ap = scenario.aps.len();
    let mut nbr = IndexSlab::new(n_ue, scenario.nbr.max_neighbors, u32::MAX);
    let mut nbr_count = vec![0u32; n_ue];
    let mut serving_slot = vec![0u32; n_ue];
    for u in 0..n_ue {
        let row = scenario.nbr.candidates(u);
        nbr.row_mut(u, row.len()).copy_from_slice(row);
        nbr_count[u] = row.len() as u32;
        serving_slot[u] = nbr
            .position(u, row.len(), scenario.assoc[u] as u32)
            .expect("serving AP is never culled") as u32;
    }
    let mut ap_nbr = IndexSlab::new(n_ap, scenario.nbr.max_ap_neighbors, u32::MAX);
    let mut ap_nbr_count = vec![0u32; n_ap];
    for (a, count) in ap_nbr_count.iter_mut().enumerate() {
        let row = scenario.nbr.interferers(a);
        ap_nbr.row_mut(a, row.len()).copy_from_slice(row);
        *count = row.len() as u32;
    }
    (nbr, nbr_count, serving_slot, ap_nbr, ap_nbr_count)
}

impl LteEngine {
    /// Emit one [`Cull`](cellfi_obs::Event::Cull) trace event per
    /// client summarising the spatial index's decision: how many
    /// candidate APs the received-power floor kept and how many it
    /// culled. A dense scenario (floor off) emits nothing, so the
    /// classic traces are untouched; traced culled runs get an
    /// auditable record of every near-field set.
    pub fn emit_cull_events(&mut self) {
        if !self.obs.tracer.is_enabled() || self.scenario.nbr.cull_radius_m.is_none() {
            return;
        }
        let n_ap = self.scenario.aps.len() as u32;
        let now = self.now;
        for u in 0..self.scenario.n_ues() {
            let kept = self.nbr_count[u];
            self.obs.tracer.emit(
                now,
                cellfi_obs::Event::Cull {
                    ue: u as u32,
                    kept,
                    culled: n_ap - kept,
                },
            );
        }
    }

    /// Rebuild the spatial index and the neighbor-indirection tables
    /// from the current scenario placement, under the `spatial_build`
    /// profiler span. Placement-preserving: the slab strides must not
    /// change, so this re-derives the same tables construction built —
    /// the bench harness drives it to cost the spatial layer explicitly.
    pub fn rebuild_spatial(&mut self) {
        self.obs.profiler.begin(cellfi_obs::SpanId::SpatialBuild);
        self.scenario.rebuild_index();
        let (nbr, nbr_count, serving_slot, ap_nbr, ap_nbr_count) = neighbor_slabs(&self.scenario);
        debug_assert_eq!(nbr.cols(), self.nbr.cols(), "placement changed under us");
        self.nbr = nbr;
        self.nbr_count = nbr_count;
        self.serving_slot = serving_slot;
        self.ap_nbr = ap_nbr;
        self.ap_nbr_count = ap_nbr_count;
        self.obs.profiler.end(cellfi_obs::SpanId::SpatialBuild);
    }
}
