//! MAC layer: the per-subframe LTE pipeline.
//!
//! Downlink: PF scheduling over each cell's allowed mask with
//! CQI-derived rates, transport blocks resolved against the *actual*
//! SINR through per-UE HARQ with chase combining, and control-channel
//! retention from neighbouring radios (the measured Fig 7(b) factor).
//! Uplink: PF grants over the same masks with the §3.1 single-carrier
//! power concentration. Mobility (A3 handover with X2 data forwarding)
//! and the RRC radio-link-failure timers live here too.
//!
//! Whether a cell may transmit at all this subframe is the IM layer's
//! call: the subframe loop asks the configured strategy's
//! `transmit_gate` (only LAA gates; every other system always allows).

use super::{im, LteEngine};
use cellfi_lte::amc::Cqi;
use cellfi_lte::control::signalling_retention;
use cellfi_lte::harq::{HarqEntity, HarqOutcome};
use cellfi_types::time::Duration;
use cellfi_types::units::{Db, Dbm};
use cellfi_types::{SubchannelId, UeId};

impl LteEngine {
    /// Radio-link-failure timer: this long with no decodable subchannel
    /// while backlogged and the RRC connection drops (3GPP T310-style).
    pub const RLF_TIMER_MS: u32 = 200;

    /// Reconnection time after an RRC drop: cell search on the known
    /// carrier plus random access (the paper measured 56 s for a full
    /// multi-band scan; a drop on a known serving carrier recovers much
    /// faster).
    pub const RECONNECT: Duration = Duration::from_secs(3);

    /// Control-plane SINR towards the strongest *other* radiating cell
    /// (drives the Fig 7 signalling-interference retention). Only
    /// candidate neighbors compete — a culled cell's control presence is
    /// below the floor by construction.
    fn control_sinr(&self, ue: usize) -> Db {
        let ap = self.scenario.assoc[ue];
        let count = self.nbr_count[ue] as usize;
        let mut strongest_other = f64::NEG_INFINITY;
        for (sl, &c) in self.nbr.row(ue, count).iter().enumerate() {
            let c = c as usize;
            if c != ap && self.cell_active(c) {
                strongest_other =
                    strongest_other.max(self.dl_mean_dbm.at(ue, sl) + self.power_offset_db[c]);
            }
        }
        if strongest_other.is_finite() {
            Db(
                self.dl_mean_dbm.at(ue, self.serving_slot[ue] as usize) + self.power_offset_db[ap]
                    - strongest_other,
            )
        } else {
            Db(100.0) // no other radio: effectively clean
        }
    }

    pub(super) fn recompute_retention(&mut self) {
        self.retention = (0..self.scenario.n_ues())
            .map(|u| signalling_retention(self.control_sinr(u)))
            .collect();
    }

    /// Bits one subchannel can carry for a UE this subframe at its CQI.
    /// Zero while the UE is reconnecting after a radio-link failure.
    // cellfi-lint: hot
    pub(super) fn rate_bits(&self, ue: usize, s: usize, dl_capacity: f64) -> f64 {
        if self.now < self.outage_until[ue] {
            return 0.0;
        }
        let cqi = self.ue_cqi[ue][s];
        if !cqi.usable() {
            return 0.0;
        }
        self.table.efficiency(cqi)
            * self.grid.data_res_per_subframe(SubchannelId::new(s as u32))
            * dl_capacity
            * self.retention[ue]
    }

    /// Run one subframe. Returns `(ue, bits)` deliveries.
    pub fn step_subframe(&mut self) -> Vec<(usize, u64)> {
        self.obs.profiler.begin(cellfi_obs::SpanId::Subframe);
        self.refresh_fading();
        let n_sub = self.grid.num_subchannels() as usize;
        let mut deliveries = Vec::new();
        let dl_capacity = self.tdd.dl_capacity(self.now);
        if dl_capacity > 0.0 {
            self.dl_subframes_this_epoch += 1;
            // 0. The IM layer decides who may transmit this subframe
            // (LAA's listen-before-talk gates on last subframe's sensed
            // energy; every other system always allows).
            let may_transmit: Vec<bool> = im::strategy_for(self.config.mode).transmit_gate(self);
            // 1. Schedule every cell. UE lists and rate rows live in
            // engine-owned scratch buffers, so the steady-state subframe
            // loop allocates nothing here.
            self.obs.profiler.begin(cellfi_obs::SpanId::MacSchedule);
            let mut allocations: Vec<Option<cellfi_lte::scheduler::Allocation>> =
                vec![None; self.cells.len()];
            let mut ues = std::mem::take(&mut self.ue_scratch);
            let mut rates = std::mem::take(&mut self.rates_scratch);
            for c in 0..self.cells.len() {
                if !may_transmit[c] {
                    continue;
                }
                if !self.cell_active(c) || self.cells[c].total_queued_bits() == 0 {
                    continue;
                }
                ues.clear();
                ues.extend_from_slice(self.cells[c].attached_ues());
                if rates.len() < ues.len() {
                    rates.resize_with(ues.len(), Vec::new);
                }
                for (row, ue) in rates.iter_mut().zip(&ues) {
                    row.clear();
                    row.extend((0..n_sub).map(|s| self.rate_bits(ue.index(), s, dl_capacity)));
                }
                allocations[c] = Some(self.cells[c].schedule_downlink(&rates[..ues.len()]));
            }
            self.ue_scratch = ues;
            self.rates_scratch = rates;
            self.obs.profiler.end(cellfi_obs::SpanId::MacSchedule);
            // 2. Per-subchannel transmitter sets (scratch-backed rows).
            let mut tx = std::mem::take(&mut self.tx_scratch);
            if tx.len() != n_sub {
                tx.resize_with(n_sub, Vec::new);
            }
            for row in tx.iter_mut() {
                row.clear();
            }
            for (c, alloc) in allocations.iter().enumerate() {
                if let Some(a) = alloc {
                    let mut scheduled_any = false;
                    for (s, assigned) in a.assignment.iter().enumerate() {
                        if assigned.is_some() {
                            tx[s].push(c);
                            scheduled_any = true;
                        }
                    }
                    if scheduled_any {
                        self.epoch_cell_sched[c] += 1;
                    }
                }
            }
            // 3. Resolve transport blocks per UE through HARQ. The
            // transmitter sets just built are exactly next subframe's
            // `tx_last`, so warming the interference cache here makes the
            // upcoming CQI scan a cache hit as well.
            self.tracker.observe(&tx);
            self.obs.profiler.begin(cellfi_obs::SpanId::SinrCache);
            self.interf.refresh(
                self.gain_gen,
                &self.tracker,
                &self.nbr,
                &self.nbr_count,
                &self.lin_mw,
            );
            self.obs.profiler.end(cellfi_obs::SpanId::SinrCache);
            let mut pairs = std::mem::take(&mut self.pairs_scratch);
            for (c, alloc) in allocations.iter().enumerate() {
                let Some(a) = alloc else { continue };
                // Group the cell's grants by UE. A stable sort keeps
                // subchannels ascending within each UE group and UEs
                // ascending overall — the iteration order of the
                // BTreeMap this replaces (an allocation holds at most
                // n_sub pairs, well inside the sort's no-alloc
                // insertion-sort regime).
                pairs.clear();
                for (s, assigned) in a.assignment.iter().enumerate() {
                    if let Some(ue) = assigned {
                        pairs.push((ue.index() as u32, s as u32));
                    }
                }
                pairs.sort_by_key(|&(ue, _)| ue);
                let mut i = 0;
                while i < pairs.len() {
                    let ue = pairs[i].0 as usize;
                    let mut j = i + 1;
                    while j < pairs.len() && pairs[j].0 == pairs[i].0 {
                        j += 1;
                    }
                    let scs = &pairs[i..j];
                    i = j;
                    let mean_linear = scs
                        .iter()
                        .map(|&(_, s)| {
                            let s = s as usize;
                            // The serving cell `c` transmits on `s` by
                            // construction; its share of the cached total
                            // is the signal itself.
                            let signal = self.lin_mw.at(ue, self.serving_slot[ue] as usize, s);
                            let interference = (self.interf.total(s, ue) - signal).max(0.0);
                            signal / (interference + self.noise_mw[s])
                        })
                        .sum::<f64>()
                        / scs.len() as f64;
                    let eff_sinr = Db(10.0 * mean_linear.max(1e-12).log10());
                    let cqi = scs
                        .iter()
                        .map(|&(_, s)| self.ue_cqi[ue][s as usize])
                        .max()
                        .unwrap_or(Cqi::OUT_OF_RANGE);
                    if !cqi.usable() {
                        continue;
                    }
                    let bits: f64 = scs
                        .iter()
                        .map(|&(_, s)| self.rate_bits(ue, s as usize, dl_capacity))
                        .sum();
                    let process = (self.now.as_millis() % 8) as usize;
                    let outcome =
                        self.harq[ue].transmit(process, cqi, eff_sinr, &mut self.ue_rng[ue]);
                    for &(_, s) in scs {
                        self.epoch[ue].sched_subframes[s as usize] += 1;
                    }
                    match outcome {
                        HarqOutcome::Ack { .. } => {
                            let drained = self.cells[c].deliver(UeId::new(ue as u32), bits as u64);
                            self.delivered[ue] += drained;
                            if drained > 0 {
                                deliveries.push((ue, drained));
                            }
                        }
                        HarqOutcome::Nack => {
                            if self.obs.detail {
                                self.obs.tracer.emit(
                                    self.now,
                                    cellfi_obs::Event::HarqRetx {
                                        ue: ue as u32,
                                        cell: c as u32,
                                        process: process as u32,
                                    },
                                );
                                self.obs.metrics.inc("harq_retx", ue as u32, 1);
                                self.epoch_retx[c] += 1;
                            }
                        }
                        HarqOutcome::Dropped => {
                            self.harq_drops[ue] += 1;
                        }
                    }
                }
            }
            self.pairs_scratch = pairs;
            std::mem::swap(&mut self.tx_last, &mut tx);
            self.tx_scratch = tx;
        } else {
            // Uplink subframe: GPS-synchronized TDD means downlink data
            // pauses everywhere while the uplink runs. Uplink deliveries
            // accumulate in `ul_delivered_bits` (the return value carries
            // downlink deliveries only, which is what the web-workload
            // consumers track).
            let _ = self.step_uplink();
            for row in self.tx_last.iter_mut() {
                row.clear();
            }
            self.tracker.observe(&self.tx_last);
        }

        self.now += Duration::SUBFRAME;

        if self.now.is_multiple_of(Duration::CQI_PERIOD) {
            self.refresh_fading();
            self.measure_cqi();
        }
        if self.now.is_multiple_of(Duration::IM_EPOCH) {
            self.obs.profiler.begin(cellfi_obs::SpanId::ImEpoch);
            self.run_epoch();
            self.obs.profiler.end(cellfi_obs::SpanId::ImEpoch);
            if self.obs.detail {
                self.emit_epoch_detail();
            }
        }
        if self.obs.monitors.is_armed() {
            let facts = self.tick_facts();
            self.obs.monitors.check_tick(&facts);
        }
        self.obs.profiler.end(cellfi_obs::SpanId::Subframe);
        deliveries
    }

    /// Detail-stream epoch bookkeeping: one `sched` event per cell with
    /// the occupancy decision just taken (its allowed mask for the
    /// coming epoch), per-epoch samples into the `sched_occupancy` and
    /// `harq_retx_per_epoch` histograms, and a window snapshot of every
    /// histogram so the metrics export carries per-epoch distributions.
    fn emit_epoch_detail(&mut self) {
        for c in 0..self.cells.len() {
            let mut mask_bits = 0u32;
            let mut owned = 0u32;
            for (s, &allowed) in self.cells[c].allowed_mask().iter().enumerate() {
                if allowed {
                    mask_bits |= 1 << s;
                    owned += 1;
                }
            }
            self.obs.tracer.emit(
                self.now,
                cellfi_obs::Event::Sched {
                    cell: c as u32,
                    mask_bits,
                    owned,
                },
            );
            self.obs
                .metrics
                .observe("sched_occupancy", c as u32, f64::from(owned));
            self.obs
                .metrics
                .observe("harq_retx_per_epoch", c as u32, self.epoch_retx[c] as f64);
            self.epoch_retx[c] = 0;
        }
        self.obs.metrics.snapshot_window(self.now);
    }

    /// Instantaneous uplink SINR (dB) at `cell` for its UE `ue` on
    /// subchannel `s`, given all concurrently transmitting UEs and their
    /// per-subchannel powers.
    ///
    /// `tx[s]` lists `(ue, per_sc_power_offset_db)` of UEs granted
    /// subchannel `s` this subframe, where the offset is the
    /// concentration term `−10·log10(granted_subchannels)`.
    fn ul_sinr_db(&self, cell: usize, ue: usize, s: usize, tx: &[Vec<(usize, f64)>]) -> f64 {
        let sc = SubchannelId::new(s as u32);
        let fade = |u: usize| {
            self.scenario
                .env
                .fading
                .gain(
                    self.scenario.ues[u].node,
                    self.scenario.aps[cell].node,
                    sc,
                    self.now,
                )
                .value()
        };
        let mut signal = 0.0f64;
        let mut interference = 0.0f64;
        for &(u, offset) in &tx[s] {
            // An interfering UE whose path to `cell` was culled is below
            // the floor by construction; the served UE's own cell is
            // always a candidate.
            let Some(sl) = self
                .nbr
                .position(u, self.nbr_count[u] as usize, cell as u32)
            else {
                continue;
            };
            let p = Dbm(self.ul_mean_dbm.at(u, sl) + offset + fade(u))
                .to_milliwatts()
                .value();
            if u == ue {
                signal = p;
            } else {
                interference += p;
            }
        }
        10.0 * (signal / (interference + self.noise_mw[s])).log10()
    }

    /// Run one uplink subframe: each cell grants its allowed subchannels
    /// to backlogged UEs (PF), UEs concentrate their 20 dBm across their
    /// grants, and transport blocks resolve against UL-UL interference
    /// through per-UE uplink HARQ. GPS-synchronized TDD (§4.1) means no
    /// DL↔UL cross interference. Returns `(ue, bits)` deliveries.
    fn step_uplink(&mut self) -> Vec<(usize, u64)> {
        let n_sub = self.grid.num_subchannels() as usize;
        let mut deliveries = Vec::new();
        // 1. Grants per cell over its allowed mask.
        let mut grants: Vec<Vec<usize>> = vec![Vec::new(); self.scenario.n_ues()];
        for c in 0..self.cells.len() {
            if !self.cell_active(c) {
                continue;
            }
            let ues: Vec<UeId> = self.cells[c]
                .attached_ues()
                .iter()
                .copied()
                .filter(|u| self.ul_queue[u.index()] > 0)
                .collect();
            if ues.is_empty() {
                continue;
            }
            // Rate estimate: sounding-based genie of the clean channel,
            // assuming single-subchannel concentration (full power).
            let demands: Vec<cellfi_lte::scheduler::UeDemand> = ues
                .iter()
                .map(|&u| {
                    let rates = (0..n_sub)
                        .map(|s| {
                            let sc = SubchannelId::new(s as u32);
                            let fade = self
                                .scenario
                                .env
                                .fading
                                .gain(
                                    self.scenario.ues[u.index()].node,
                                    self.scenario.aps[c].node,
                                    sc,
                                    self.now,
                                )
                                .value();
                            // `c` is this UE's serving cell (it is
                            // attached), so the slot is the serving slot.
                            let snr = self
                                .ul_mean_dbm
                                .at(u.index(), self.serving_slot[u.index()] as usize)
                                + fade
                                - 10.0 * self.noise_mw[s].log10();
                            let cqi = self.table.cqi_for_sinr(Db(snr));
                            if cqi.usable() {
                                self.table.efficiency(cqi) * self.grid.data_res_per_subframe(sc)
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    cellfi_lte::scheduler::UeDemand {
                        ue: u,
                        backlog_bits: self.ul_queue[u.index()],
                        rate_per_subchannel: rates,
                    }
                })
                .collect();
            let allowed = self.cells[c].allowed_mask().to_vec();
            let alloc = self.ul_scheduler[c].allocate(&allowed, &demands);
            for (s, assigned) in alloc.assignment.iter().enumerate() {
                if let Some(u) = assigned {
                    grants[u.index()].push(s);
                }
            }
        }
        // 2. Concentration offsets and the transmitter sets.
        let mut tx: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_sub];
        for (u, scs) in grants.iter().enumerate() {
            if scs.is_empty() {
                continue;
            }
            let offset = -10.0 * (scs.len() as f64).log10();
            for &s in scs {
                tx[s].push((u, offset));
            }
        }
        // 3. Resolve per UE through uplink HARQ.
        for (u, ue_grants) in grants.iter().enumerate() {
            if ue_grants.is_empty() {
                continue;
            }
            let cell = self.scenario.assoc[u];
            let mean_linear = ue_grants
                .iter()
                .map(|&s| Db(self.ul_sinr_db(cell, u, s, &tx)).to_linear())
                .sum::<f64>()
                / ue_grants.len() as f64;
            let eff_sinr = Db(10.0 * mean_linear.max(1e-12).log10());
            let cqi = self.table.cqi_for_sinr(eff_sinr);
            if !cqi.usable() {
                continue;
            }
            let bits: f64 = ue_grants
                .iter()
                .map(|&s| {
                    self.table.efficiency(cqi)
                        * self.grid.data_res_per_subframe(SubchannelId::new(s as u32))
                })
                .sum();
            let process = (self.now.as_millis() % 8) as usize;
            let outcome = self.ul_harq[u].transmit(process, cqi, eff_sinr, &mut self.ue_rng[u]);
            if let HarqOutcome::Ack { .. } = outcome {
                let drained = (bits as u64).min(self.ul_queue[u]);
                self.ul_queue[u] -= drained;
                self.ul_delivered[u] += drained;
                if drained > 0 {
                    deliveries.push((u, drained));
                }
            }
        }
        deliveries
    }

    /// A3-style handover check for one client: switch to a neighbour cell
    /// whose downlink is at least `hysteresis_db` stronger than the
    /// serving cell's. Queued downlink data is forwarded over X2 (the
    /// lossless-handover behaviour CellFi inherits from LTE, §7).
    /// Returns the new serving cell if a handover happened.
    pub fn check_handover(&mut self, ue: usize, hysteresis_db: f64) -> Option<usize> {
        let serving = self.scenario.assoc[ue];
        // Only candidate neighbors are handover targets: anything culled
        // is below the floor and cannot beat the serving cell by the
        // hysteresis. Update on ties (`!is_lt`) to keep `max_by`'s
        // last-maximal-element choice.
        let count = self.nbr_count[ue] as usize;
        let mut best: Option<(usize, usize, f64)> = None;
        for (sl, &c) in self.nbr.row(ue, count).iter().enumerate() {
            let c = c as usize;
            if !self.cell_active(c) {
                continue;
            }
            let dbm = self.dl_mean_dbm.at(ue, sl);
            if best.is_none_or(|(_, _, b)| !dbm.total_cmp(&b).is_lt()) {
                best = Some((c, sl, dbm));
            }
        }
        let (best, best_slot, best_dbm) = best?;
        let serving_dbm = self.dl_mean_dbm.at(ue, self.serving_slot[ue] as usize);
        if best == serving || best_dbm < serving_dbm + hysteresis_db {
            return None;
        }
        let ueid = UeId::new(ue as u32);
        let pending = self.cells[serving].queued_bits(ueid);
        self.cells[serving].detach(ueid);
        self.cells[best].attach(ueid);
        if pending > 0 {
            self.cells[best].enqueue(ueid, pending); // X2 data forwarding
        }
        self.scenario.assoc[ue] = best;
        self.serving_slot[ue] = best_slot as u32;
        // Fresh HARQ state towards the new cell, and a new association
        // generation: memoized CQI scans keyed on the old serving cells
        // must miss from here on.
        self.harq[ue] = HarqEntity::new();
        self.ul_harq[ue] = HarqEntity::new();
        self.assoc_gen += 1;
        self.handovers += 1;
        Some(best)
    }
}
