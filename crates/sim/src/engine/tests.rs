//! Engine behaviour tests, spanning the PHY/MAC/IM layers.
//!
//! These lived inside the monolithic engine file before the layered
//! split; they exercise cross-layer behaviour (scheduling against
//! cached SINR, IM convergence, LBT duty cycles, uplink concentration),
//! so they sit beside the layer modules rather than inside any one.

#[cfg(test)]
mod all {
    use crate::engine::cache::InterferenceCache;
    use crate::engine::{ImMode, LteEngine, LteEngineConfig};
    use crate::topology::{Scenario, ScenarioConfig};
    use cellfi_types::rng::SeedSeq;
    use cellfi_types::time::Instant;
    use cellfi_types::units::Db;
    use cellfi_types::ApId;
    use cellfi_types::SubchannelId;

    fn small_scenario(n_aps: usize, clients: usize, seed: u64) -> Scenario {
        let mut cfg = ScenarioConfig::paper_default(n_aps, clients);
        cfg.shadowing_sigma = 0.0;
        cfg.fading = false;
        Scenario::generate(cfg, SeedSeq::new(seed))
    }

    /// A controlled two-cell scenario: cells 800 m apart, one client each
    /// placed between them (interference-limited at the edge).
    fn edge_scenario() -> Scenario {
        use cellfi_propagation::antenna::Antenna;
        use cellfi_propagation::link::LinkEnd;
        use cellfi_types::geo::Point;
        let mut s = small_scenario(2, 0, 1);
        s.aps = vec![
            LinkEnd::new(
                0,
                Point::new(0.0, 0.0),
                Antenna::Isotropic { gain: Db(6.0) },
            ),
            LinkEnd::new(
                1,
                Point::new(800.0, 0.0),
                Antenna::Isotropic { gain: Db(6.0) },
            ),
        ];
        // Each client sits *closer to the other cell* than to its own
        // (a routine outcome of shadowed association in dense unplanned
        // deployments): interference exceeds signal, the plain-LTE
        // starvation regime of §3.2.
        s.ues = vec![
            LinkEnd::new(1000, Point::new(500.0, 0.0), Antenna::client()),
            LinkEnd::new(1001, Point::new(300.0, 0.0), Antenna::client()),
        ];
        s.assoc = vec![0, 1];
        s
    }

    fn engine(s: Scenario, mode: ImMode, seed: u64) -> LteEngine {
        LteEngine::new(s, LteEngineConfig::paper_default(mode), SeedSeq::new(seed))
    }

    #[test]
    fn lone_cell_hits_near_peak_throughput() {
        let mut s = small_scenario(1, 1, 2);
        s.ues[0].position =
            cellfi_types::geo::Point::new(s.aps[0].position.x + 100.0, s.aps[0].position.y);
        let mut e = engine(s, ImMode::PlainLte, 3);
        e.enqueue(0, 200_000_000);
        e.run_until(Instant::from_secs(2));
        let tput = e.throughputs_bps()[0] / 1e6;
        // 5 MHz, TDD 0.77 DL, CQI 15 → ≈ 12.8 Mbps ceiling.
        assert!((8.0..14.0).contains(&tput), "throughput {tput} Mbps");
    }

    #[test]
    fn deliveries_never_exceed_enqueued() {
        let mut e = engine(small_scenario(3, 2, 4), ImMode::CellFi, 5);
        e.backlog_all(1_000_000);
        e.run_until(Instant::from_secs(1));
        for u in 0..e.scenario().n_ues() {
            assert!(e.delivered_bits()[u] <= 1_000_000);
            assert_eq!(
                e.delivered_bits()[u] + e.queued_bits(u),
                1_000_000,
                "conservation for ue {u}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut e = engine(small_scenario(3, 2, 4), ImMode::CellFi, 5);
            e.backlog_all(10_000_000);
            e.run_until(Instant::from_secs(2));
            e.delivered_bits().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn plain_lte_starves_edge_client_cellfi_rescues() {
        // The paper's core claim in miniature (Fig 9b): an edge client
        // under full-channel inter-cell interference starves on plain
        // LTE but gets service once CellFi partitions the subchannels.
        let run = |mode: ImMode| {
            let mut e = engine(edge_scenario(), mode, 7);
            e.backlog_all(200_000_000);
            e.run_until(Instant::from_secs(8));
            e.throughputs_bps()
        };
        let plain = run(ImMode::PlainLte);
        let cellfi = run(ImMode::CellFi);
        let plain_min = plain.iter().cloned().fold(f64::INFINITY, f64::min);
        let cellfi_min = cellfi.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            plain_min < 200_000.0,
            "plain LTE edge client should starve, got {plain_min} bps"
        );
        assert!(
            cellfi_min > 500_000.0,
            "CellFi edge client should get service, got {cellfi_min} bps"
        );
    }

    #[test]
    fn oracle_masks_are_conflict_free() {
        let mut e = engine(edge_scenario(), ImMode::Oracle, 9);
        e.backlog_all(100_000_000);
        e.run_until(Instant::from_secs(2));
        let m0 = e.cell_mask(0);
        let m1 = e.cell_mask(1);
        let overlap = m0.iter().zip(&m1).filter(|(a, b)| **a && **b).count();
        assert_eq!(overlap, 0, "oracle let conflicting cells share subchannels");
    }

    #[test]
    fn cellfi_managers_converge_to_disjoint_masks() {
        let mut e = engine(edge_scenario(), ImMode::CellFi, 11);
        e.backlog_all(500_000_000);
        e.run_until(Instant::from_secs(15));
        let m0 = e.cell_mask(0);
        let m1 = e.cell_mask(1);
        let overlap = m0.iter().zip(&m1).filter(|(a, b)| **a && **b).count();
        assert!(
            overlap <= 1,
            "CellFi cells still overlap on {overlap} subchannels after 15 s"
        );
        assert!(m0.iter().filter(|&&b| b).count() >= 4);
        assert!(m1.iter().filter(|&&b| b).count() >= 4);
    }

    #[test]
    fn plain_lte_mask_never_changes() {
        let mut e = engine(edge_scenario(), ImMode::PlainLte, 13);
        e.backlog_all(10_000_000);
        e.run_until(Instant::from_secs(3));
        assert!(e.cell_mask(0).iter().all(|&b| b));
        assert!(e.cell_mask(1).iter().all(|&b| b));
    }

    #[test]
    fn idle_network_delivers_nothing() {
        let mut e = engine(small_scenario(2, 2, 6), ImMode::CellFi, 15);
        e.run_until(Instant::from_secs(1));
        assert!(e.delivered_bits().iter().all(|&b| b == 0));
    }

    #[test]
    fn throughput_degrades_with_link_distance() {
        let mut s = small_scenario(1, 0, 8);
        use cellfi_propagation::link::LinkEnd;
        use cellfi_types::geo::Point;
        let apx = s.aps[0].position;
        s.ues = vec![
            LinkEnd::new(
                1000,
                Point::new(apx.x + 100.0, apx.y),
                cellfi_propagation::antenna::Antenna::client(),
            ),
            LinkEnd::new(
                1001,
                Point::new(apx.x, apx.y + 620.0),
                cellfi_propagation::antenna::Antenna::client(),
            ),
        ];
        s.assoc = vec![0, 0];
        let mut e = engine(s, ImMode::PlainLte, 17);
        e.enqueue(0, 40_000_000);
        e.run_until(Instant::from_secs(2));
        let near = e.delivered_bits()[0];
        e.enqueue(1, 40_000_000);
        e.run_until(Instant::from_secs(4));
        let far = e.delivered_bits()[1];
        assert!(
            near as f64 > 1.5 * far as f64,
            "near {near} should beat far {far}"
        );
    }

    #[test]
    fn fading_cache_matches_direct_computation() {
        // With fading enabled, the cached linear gains must agree with
        // the RadioEnvironment's direct per-call computation.
        let mut cfg = ScenarioConfig::paper_default(2, 1);
        cfg.shadowing_sigma = 0.0;
        cfg.fading = true;
        let s = Scenario::generate(cfg, SeedSeq::new(44));
        let e = engine(s, ImMode::PlainLte, 19);
        let sc = SubchannelId::new(3);
        let env = &e.scenario.env;
        for u in 0..e.scenario.n_ues() {
            for a in 0..e.scenario.aps.len() {
                let sc_power = e.grid.subchannel_tx_power(e.scenario.config.ap_power, sc);
                let direct = env
                    .rx_power(
                        &e.scenario.aps[a],
                        sc_power,
                        &e.scenario.ues[u],
                        sc,
                        Instant::ZERO,
                    )
                    .to_milliwatts()
                    .value();
                let sl = e
                    .nbr
                    .position(u, e.nbr_count[u] as usize, a as u32)
                    .expect("dense candidate set");
                let cached = e.lin_mw.at(u, sl, sc.index());
                assert!(
                    (direct - cached).abs() / direct < 1e-9,
                    "cache mismatch ue {u} ap {a}"
                );
            }
        }
    }

    mod interference_cache_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// The incremental interference accumulator must agree with
            /// direct recomputation for *any* transmitter sets presented
            /// after an arbitrary stretch of simulation (mid-run fading
            /// rolls, epoch mask changes, HARQ churn) — both the raw
            /// power totals and the SINR assembled from them.
            #[test]
            fn interference_cache_matches_direct_recomputation(
                seed in 0u64..1_000,
                millis in 20u64..120,
                txmask in proptest::collection::vec(any::<bool>(), 13 * 3),
            ) {
                let mut cfg = ScenarioConfig::paper_default(3, 2);
                cfg.shadowing_sigma = 0.0;
                cfg.fading = true;
                let s = Scenario::generate(cfg, SeedSeq::new(seed));
                let mut e = LteEngine::new(
                    s,
                    LteEngineConfig::paper_default(ImMode::CellFi),
                    SeedSeq::new(seed ^ 0x5eed),
                );
                e.backlog_all(5_000_000);
                for _ in 0..millis {
                    let _ = e.step_subframe();
                }
                let n_sub = e.grid.num_subchannels() as usize;
                let n_ap = e.scenario.aps.len();
                let tx: Vec<Vec<usize>> = (0..n_sub)
                    .map(|s| (0..n_ap).filter(|&c| txmask[s * n_ap + c]).collect())
                    .collect();
                // Present the sets through the engine's own tracker: the
                // cache keys on its id namespace, and ids from a foreign
                // tracker could collide with already-cached columns.
                e.tracker.observe(&tx);
                e.interf.refresh(e.gain_gen, &e.tracker, &e.nbr, &e.nbr_count, &e.lin_mw);
                for (s, tx_s) in tx.iter().enumerate() {
                    for ue in 0..e.scenario.n_ues() {
                        let direct = InterferenceCache::direct_total(
                            &e.tracker,
                            &e.nbr,
                            e.nbr_count[ue],
                            &e.lin_mw,
                            ue,
                            s,
                        );
                        let cached = e.interf.total(s, ue);
                        prop_assert!(
                            (direct - cached).abs() <= direct.abs() * 1e-12,
                            "total mismatch s={s} ue={ue}: cached {cached} direct {direct}"
                        );
                        let ap = e.scenario.assoc[ue];
                        let signal = e.lin_mw.at(ue, e.serving_slot[ue] as usize, s);
                        let own = if tx_s.contains(&ap) { signal } else { 0.0 };
                        let from_cache = 10.0
                            * (signal / ((cached - own).max(0.0) + e.noise_mw[s])).log10();
                        let reference = e.sinr_db(ue, s, tx_s);
                        prop_assert!(
                            (from_cache - reference).abs() < 1e-6,
                            "sinr mismatch s={s} ue={ue}: cache {from_cache} dB, \
                             direct {reference} dB"
                        );
                    }
                }
                // A second refresh with unchanged keys must be a pure
                // cache hit and leave every column intact.
                let n_ue = e.scenario.n_ues();
                let snapshot = move |i: &InterferenceCache| -> Vec<f64> {
                    (0..n_sub)
                        .flat_map(|s| (0..n_ue).map(move |ue| i.total(s, ue)))
                        .collect::<Vec<f64>>()
                };
                let before = snapshot(&e.interf);
                e.interf.refresh(e.gain_gen, &e.tracker, &e.nbr, &e.nbr_count, &e.lin_mw);
                prop_assert_eq!(before, snapshot(&e.interf));
            }
        }
    }

    #[test]
    fn laa_cells_in_sensing_range_time_share() {
        // Two co-located backlogged cells under LBT must alternate TXOPs:
        // both served, neither starved, aggregate below a lone cell.
        let mut s = small_scenario(2, 0, 31);
        use cellfi_propagation::link::LinkEnd;
        use cellfi_types::geo::Point;
        s.aps = vec![
            LinkEnd::new(
                0,
                Point::new(0.0, 0.0),
                Antenna::Isotropic { gain: Db(6.0) },
            ),
            LinkEnd::new(
                1,
                Point::new(200.0, 0.0),
                Antenna::Isotropic { gain: Db(6.0) },
            ),
        ];
        s.ues = vec![
            LinkEnd::new(1000, Point::new(50.0, 80.0), Antenna::client()),
            LinkEnd::new(1001, Point::new(150.0, -80.0), Antenna::client()),
        ];
        s.assoc = vec![0, 1];
        let mut e = engine(s, ImMode::Laa, 33);
        e.backlog_all(u64::MAX / 4);
        e.run_until(Instant::from_secs(4));
        let t = e.throughputs_bps();
        assert!(t[0] > 1e6 && t[1] > 1e6, "both must be served: {t:?}");
        // Time sharing: each gets well below the ~12.8 Mbps lone-cell peak.
        assert!(t[0] < 9e6 && t[1] < 9e6, "no time sharing visible: {t:?}");
    }

    #[test]
    fn laa_hidden_cells_pay_the_duty_cycle_tax() {
        // The edge cells are 800 m apart: mutual AP power ≈ −87 dBm, far
        // below the −72 dBm LBT threshold, so sensing never engages.
        // What LBT *does* impose is its mandatory contention gaps: ~8 ms
        // MCOT followed by ~7.5 ms of backoff ≈ 52 % duty cycle. The
        // desynchronized gaps incidentally rescue the victims plain LTE
        // starves — but every cell pays the airtime tax whether or not
        // anyone is nearby, which is the §8 long-range inefficiency.
        let mut laa = engine(edge_scenario(), ImMode::Laa, 35);
        laa.backlog_all(u64::MAX / 4);
        laa.run_until(Instant::from_secs(6));
        let t = laa.throughputs_bps();
        let mut plain = engine(edge_scenario(), ImMode::PlainLte, 35);
        plain.backlog_all(u64::MAX / 4);
        plain.run_until(Instant::from_secs(6));
        let plain_worst = plain
            .throughputs_bps()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        // Gaps rescue the victims relative to plain LTE...
        assert!(
            plain_worst < 100_000.0,
            "premise: plain LTE starves, got {plain_worst}"
        );
        assert!(
            t.iter().all(|&v| v > 500_000.0),
            "LAA gaps should serve both: {t:?}"
        );
        // ...but each cell is capped near the ~52 % duty cycle of the
        // 12.8 Mbps lone-cell ceiling (and loses more to residual
        // collisions during TXOP overlap).
        assert!(
            t.iter().all(|&v| v < 0.62 * 12_800_000.0),
            "duty-cycle tax missing: {t:?}"
        );
    }

    use cellfi_propagation::antenna::Antenna;

    #[test]
    fn uplink_delivers_and_conserves() {
        let mut s = small_scenario(1, 1, 41);
        s.ues[0].position =
            cellfi_types::geo::Point::new(s.aps[0].position.x + 150.0, s.aps[0].position.y);
        let mut e = engine(s, ImMode::PlainLte, 43);
        e.enqueue_ul(0, 2_000_000);
        e.run_until(Instant::from_secs(3));
        assert_eq!(
            e.ul_delivered_bits()[0] + e.ul_queued_bits(0),
            2_000_000,
            "uplink conservation"
        );
        assert!(e.ul_delivered_bits()[0] > 1_500_000, "uplink barely moved");
    }

    #[test]
    fn uplink_capacity_matches_tdd_share() {
        // TDD config 4 gives the uplink 2 of 10 subframes: a backlogged
        // near client should see roughly 0.2/0.77 of the downlink rate.
        let mut s = small_scenario(1, 1, 45);
        s.ues[0].position =
            cellfi_types::geo::Point::new(s.aps[0].position.x + 100.0, s.aps[0].position.y);
        let mut e = engine(s, ImMode::PlainLte, 47);
        e.enqueue(0, u64::MAX / 4);
        e.enqueue_ul(0, u64::MAX / 4);
        e.run_until(Instant::from_secs(4));
        let dl = e.throughputs_bps()[0];
        let ul = e.ul_throughputs_bps()[0];
        let ratio = ul / dl;
        assert!(
            (0.15..0.45).contains(&ratio),
            "UL/DL ratio {ratio} (dl {dl}, ul {ul})"
        );
    }

    #[test]
    fn uplink_power_concentration_reaches_the_edge() {
        // A cell-edge client (1 km, 20 dBm) cannot close the uplink if it
        // spreads power across the carrier, but concentrating into one
        // granted subchannel buys 10·log10(25/1) ≈ 14 dB — §3.1's uplink
        // OFDMA advantage. The scheduler grants only what the small ACK
        // stream needs, so the edge uplink still flows.
        let mut s = small_scenario(1, 1, 49);
        s.ues[0].position =
            cellfi_types::geo::Point::new(s.aps[0].position.x + 950.0, s.aps[0].position.y);
        let mut e = engine(s, ImMode::PlainLte, 51);
        e.enqueue_ul(0, 100_000); // a thin ACK-like stream
        e.run_until(Instant::from_secs(3));
        assert!(
            e.ul_delivered_bits()[0] >= 100_000,
            "edge uplink failed: {} of 100000",
            e.ul_delivered_bits()[0]
        );
    }

    #[test]
    fn uplink_respects_interference_management_masks() {
        // Two CellFi cells: after convergence, concurrent uplinks use
        // disjoint subchannels, so both UL flows progress.
        let mut e = engine(edge_scenario(), ImMode::CellFi, 53);
        e.backlog_all(u64::MAX / 4); // downlink load drives the IM epochs
        for u in 0..2 {
            e.enqueue_ul(u, 5_000_000);
        }
        e.run_until(Instant::from_secs(20));
        for u in 0..2 {
            assert!(
                e.ul_delivered_bits()[u] > 1_000_000,
                "ue {u} uplink starved: {}",
                e.ul_delivered_bits()[u]
            );
        }
    }

    #[test]
    fn conflict_graph_reflects_geometry() {
        let e = engine(edge_scenario(), ImMode::Oracle, 21);
        assert!(e.conflict.has_edge(ApId::new(0), ApId::new(1)));
    }

    /// The flat-slab gain pipeline (batched dB→linear kernel over
    /// contiguous lanes, lane-filled fading draws) must be *bit*
    /// identical to the naive nested-Vec reference that computes each
    /// element independently: `Dbm(mean + offset + split).to_milliwatts()
    /// × fading_power.max(1e-12)`. Exercised after mid-run fading rolls,
    /// an EIRP offset change, and a client move, so every slab rebuild
    /// path is covered.
    #[test]
    fn flat_slab_matches_nested_vec_reference() {
        use cellfi_types::geo::Point;
        use cellfi_types::units::Dbm;
        for seed in [3u64, 29, 71] {
            let mut cfg = ScenarioConfig::paper_default(3, 2);
            cfg.fading = true;
            let s = Scenario::generate(cfg, SeedSeq::new(seed));
            let mut e = engine(s, ImMode::CellFi, seed ^ 0x51ab);
            e.backlog_all(10_000_000);
            e.run_until(Instant::from_millis(137)); // several fading blocks
            e.set_power_offset_db(1, -3.0); // full static-slab rebuild
            e.move_ue(0, Point::new(110.0, 45.0)); // single-row rebuild
                                                   // The EIRP change invalidates the fading block; step past it
                                                   // so the engine re-derives `lin_mw` from the new statics.
            e.run_until(Instant::from_millis(142));
            let n_sub = e.grid.num_subchannels() as usize;
            // Reconstruct the instant of the current fading block so the
            // per-element draws land in the same coherence window the
            // engine's last refresh used.
            let coherence = e.scenario.env.fading.coherence();
            let t_block = Instant::from_micros(e.fading_block * coherence.as_micros());
            for u in 0..e.scenario.n_ues() {
                let ue_node = e.scenario.ues[u].node;
                for a in 0..e.scenario.aps.len() {
                    let ap_node = e.scenario.aps[a].node;
                    let sl = e
                        .nbr
                        .position(u, e.nbr_count[u] as usize, a as u32)
                        .expect("dense candidate set");
                    for sc in 0..n_sub {
                        let db = e.dl_mean_dbm.at(u, sl) + e.power_offset_db[a] + e.split_db[sc];
                        let static_ref = Dbm(db).to_milliwatts().value();
                        assert_eq!(
                            static_ref.to_bits(),
                            e.static_mw.at(u, sl, sc).to_bits(),
                            "static slab diverges at ue {u} ap {a} sc {sc} (seed {seed})"
                        );
                        let p = e.scenario.env.fading.power(
                            ap_node,
                            ue_node,
                            SubchannelId::new(sc as u32),
                            t_block,
                        );
                        let lin_ref = static_ref * p.max(1e-12);
                        assert_eq!(
                            lin_ref.to_bits(),
                            e.lin_mw.at(u, sl, sc).to_bits(),
                            "instantaneous slab diverges at ue {u} ap {a} sc {sc} (seed {seed})"
                        );
                    }
                }
            }
        }
    }

    /// Quiescence detection: a settled plain-LTE network (fixed masks,
    /// no mobility, warmed transmitter sets) reports a growing run of
    /// quiescent epochs, and a [`SimHarness`] configured with
    /// `stop_when_quiescent` ends the run well before its horizon.
    #[test]
    fn quiescence_detected_and_harness_stops_early() {
        use crate::engine::system::{SimHarness, SystemEngine};
        use cellfi_types::time::Duration;
        let mut e = engine(small_scenario(2, 1, 11), ImMode::PlainLte, 11);
        assert_eq!(e.quiescent_epochs(), 0);
        e.backlog_all(u64::MAX / 4);
        e.run_until(Instant::from_secs(4));
        assert!(
            e.quiescent_epochs() >= 2,
            "settled network never went quiescent: {}",
            e.quiescent_epochs()
        );

        let mut e2 = engine(small_scenario(2, 1, 11), ImMode::PlainLte, 11);
        e2.backlog_all(u64::MAX / 4);
        let horizon = Instant::from_secs(60);
        let h = SimHarness::new(Duration::from_millis(1), horizon).stop_when_quiescent(2);
        h.run(&mut e2, &mut (), |_, _, _| {}, |_, _, _, _| {});
        assert!(
            SystemEngine::now(&e2) < horizon,
            "quiescence stop never fired"
        );
        assert!(e2.quiescent_epochs() >= 2);
    }
}
