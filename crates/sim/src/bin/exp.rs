//! `exp` — the experiment runner.
//!
//! ```text
//! exp <name>... [--quick] [--seed N] [--json] [--bench] [--trace] [--trace-detail]
//!               [--sample K/N] [--monitors]
//! exp all [--quick]          # every table and figure, paper order
//! exp list                   # available experiment names
//! exp trace-diff <a> <b>     # byte-compare two trace streams
//! exp trace-query <t.jsonl> [--kind K] [--entity N] [--from US] [--to US]
//!                           [--group-by F] [--agg count|sum:F|mean:F|q0.9:F]
//! exp replay <TRACE.jsonl>   # reconstruct per-cell occupancy from a trace
//! ```
//!
//! Each experiment prints a human-readable report; `--json` appends the
//! headline values as a JSON object (consumed by EXPERIMENTS.md tooling).
//! `--bench` additionally writes `BENCH_engine.json` — wall-clock per
//! experiment, engine subframes/sec, and the PRACH line-rate factor —
//! plus `BENCH_obs.json` with the hierarchical span profile (flat
//! per-span totals and the harness-tick call tree) and
//! `BENCH_flame.txt`, the same tree in folded-stack flamegraph format.
//! `--trace` writes `TRACE_<name>.jsonl` (the tick-keyed event stream)
//! and `METRICS_<name>.jsonl` (the final metrics snapshot) per
//! experiment; `--trace-detail` additionally switches on the detail
//! stream (per-epoch `sched` occupancy decisions, per-block
//! `harq_retx`, and per-epoch histogram window snapshots in the metrics
//! export). `--sample K/N` keeps the deterministic per-entity stratum
//! `K/N` of the stream and writes the dropped remainder's histogram
//! sketches to `SKETCH_<name>.jsonl`; `--monitors` arms the invariant
//! monitors and the flight recorder — a violation dumps the ring as
//! `FLIGHT_<name>.jsonl` and fails the run with the violating tick.
//! `trace-diff` compares two such streams line by line; on divergence
//! it reports the first differing line plus a per-kind count summary of
//! the event tails — identical seeds must produce byte-identical traces
//! at any `CELLFI_THREADS`. `trace-query` filters, groups, and
//! aggregates a written trace. `replay` reads a written
//! `TRACE_<name>.jsonl` back and prints the final per-cell subchannel
//! allocation table it implies (exact when the trace has `sched`
//! events, folded from hop/pack moves otherwise).

use cellfi_sim::experiments::{self, ExpConfig};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Steady-state engine rate: simulated subframes per wall-clock second
/// on a mid-size CellFi scenario (after a warmup second that absorbs
/// scenario generation and cache fills).
fn engine_subframes_per_sec(seed: u64) -> f64 {
    use cellfi_sim::{ImMode, LteEngine, LteEngineConfig, Scenario, ScenarioConfig};
    use cellfi_types::rng::SeedSeq;
    use cellfi_types::time::Instant;
    let seeds = SeedSeq::new(seed).child("bench-engine");
    let scenario = Scenario::generate(ScenarioConfig::paper_default(8, 6), seeds);
    let mut e = LteEngine::new(
        scenario,
        LteEngineConfig::paper_default(ImMode::CellFi),
        seeds.child("engine"),
    );
    e.backlog_all(u64::MAX / 4);
    e.run_until(Instant::from_secs(1));
    let subframes = 2_000u32;
    let t0 = std::time::Instant::now();
    for _ in 0..subframes {
        e.step_subframe();
    }
    f64::from(subframes) / t0.elapsed().as_secs_f64()
}

/// PRACH detector line-rate factor: how many 800 µs occasions one core
/// clears per occasion time (paper: 16× on an i7).
fn prach_line_rate_factor(seed: u64) -> f64 {
    use cellfi_lte::prach::{awgn_channel, preamble, zc_root, PrachDetector, PREAMBLE_DURATION_US};
    use cellfi_types::units::Db;
    use rand::SeedableRng;
    let det = PrachDetector::new(129);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rx = awgn_channel(&preamble(&zc_root(129), 100), 250, Db(-10.0), &mut rng);
    let mut sink = usize::from(det.detect(&rx).detected); // warmup
    let reps = 50u32;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        sink += usize::from(det.detect(&rx).detected);
    }
    assert!(sink > 0);
    let per_detect_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
    PREAMBLE_DURATION_US / per_detect_us
}

/// Wall-clock nanoseconds since the first call. The profiler clock is
/// injected from the bin layer so library code never reads a clock;
/// span timings are reported, never fed back into simulation state.
fn clock_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(std::time::Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Profile the whole hierarchy — harness ticks down through the engine
/// subframe pipeline (MAC scheduling, SINR cache, fading/CQI scans, IM
/// epochs), the PRACH correlator, and the PAWS lease lifecycle — and
/// write the span tree to `BENCH_obs.json` plus the folded-stack
/// flamegraph lines to `BENCH_flame.txt`.
fn write_obs_bench(config: ExpConfig) {
    use cellfi_obs::Profiler;
    use cellfi_sim::engine::SimHarness;
    use cellfi_sim::{ImMode, LteEngine, LteEngineConfig, Scenario, ScenarioConfig};
    use cellfi_types::rng::SeedSeq;
    use cellfi_types::time::{Duration, Instant};
    use serde_json::Value;

    let seeds = SeedSeq::new(config.seed).child("bench-obs");
    let scenario = Scenario::generate(ScenarioConfig::paper_default(8, 6), seeds);
    let mut e = LteEngine::new(
        scenario,
        LteEngineConfig::paper_default(ImMode::CellFi),
        seeds.child("engine"),
    );
    e.backlog_all(u64::MAX / 4);
    e.run_until(Instant::from_secs(1)); // warmup: caches filled, unprofiled
    e.obs_mut().profiler = Profiler::with_clock(clock_ns);
    // Cost the spatial layer explicitly: one index + neighbor-table
    // rebuild under the `spatial_build` span.
    e.rebuild_spatial();
    // Drive the profiled second through the harness so every subframe
    // nests under a `harness_tick` root span.
    let harness = SimHarness::new(Duration::from_millis(1), e.now() + Duration::from_secs(1));
    harness.run(&mut e, &mut (), |_, _, _| {}, |_, _, _, _| {});
    let mut profiler = std::mem::replace(&mut e.obs_mut().profiler, Profiler::disabled());

    // The PRACH correlator runs in its own detector loop, not the
    // engine subframe path; profile it directly.
    {
        use cellfi_lte::prach::{awgn_channel, preamble, zc_root, PrachDetector};
        use cellfi_types::units::Db;
        use rand::SeedableRng;
        let det = PrachDetector::new(129);
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let rx = awgn_channel(&preamble(&zc_root(129), 100), 250, Db(-10.0), &mut rng);
        for _ in 0..50 {
            let _ = det.detect_profiled(&rx, &mut profiler);
        }
    }

    // The PAWS lease lifecycle also runs outside the subframe path;
    // step one client against a clean database at the chaos cadence.
    {
        use cellfi_spectrum::database::SpectrumDatabase;
        use cellfi_spectrum::lifecycle::{LeaseLifecycle, LifecycleConfig};
        use cellfi_spectrum::paws::GeoLocation;
        use cellfi_spectrum::plan::ChannelPlan;
        use cellfi_types::geo::Point;
        let mut db = SpectrumDatabase::new(ChannelPlan::Eu, vec![]);
        let mut lc = LeaseLifecycle::new(
            "bench-ap-000",
            6,
            GeoLocation::gps(Point::new(0.0, 0.0)),
            ChannelPlan::Eu,
            LifecycleConfig::paper_default(30.0),
            config.seed,
        );
        for i in 0..400u64 {
            lc.step_profiled(&mut db, &[], Instant::from_millis(i * 250), &mut profiler);
        }
    }

    let mut spans = BTreeMap::new();
    for (name, stats) in profiler.report() {
        if stats.count == 0 {
            continue;
        }
        let mut entry = BTreeMap::new();
        entry.insert("count".to_owned(), Value::Number(stats.count as f64));
        entry.insert("total_ns".to_owned(), Value::Number(stats.total_ns as f64));
        entry.insert("self_ns".to_owned(), Value::Number(stats.self_ns as f64));
        entry.insert(
            "mean_ns".to_owned(),
            Value::Number(stats.total_ns as f64 / stats.count as f64),
        );
        spans.insert(name.to_owned(), Value::Object(entry));
    }
    let mut tree = Vec::new();
    for node in profiler.tree() {
        if node.stats.count == 0 {
            continue;
        }
        let mut entry = BTreeMap::new();
        entry.insert("path".to_owned(), Value::String(node.path.clone()));
        entry.insert("depth".to_owned(), Value::Number(node.depth as f64));
        entry.insert("count".to_owned(), Value::Number(node.stats.count as f64));
        entry.insert(
            "total_ns".to_owned(),
            Value::Number(node.stats.total_ns as f64),
        );
        entry.insert(
            "self_ns".to_owned(),
            Value::Number(node.stats.self_ns as f64),
        );
        tree.push(Value::Object(entry));
    }
    let mut root = BTreeMap::new();
    root.insert(
        "threads".to_owned(),
        Value::Number(cellfi_sim::parallel::configured_threads() as f64),
    );
    root.insert("profiled_subframes".to_owned(), Value::Number(1_000.0));
    root.insert("spans".to_owned(), Value::Object(spans));
    root.insert("tree".to_owned(), Value::Array(tree));
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("bench report serializes");
    match std::fs::write("BENCH_obs.json", json + "\n") {
        Ok(()) => eprintln!("wrote BENCH_obs.json"),
        Err(e) => eprintln!("could not write BENCH_obs.json: {e}"),
    }
    match std::fs::write("BENCH_flame.txt", profiler.folded()) {
        Ok(()) => eprintln!("wrote BENCH_flame.txt"),
        Err(e) => eprintln!("could not write BENCH_flame.txt: {e}"),
    }
}

/// Byte-compare two trace streams line by line; report the first
/// divergence. Returns success only for identical files.
fn trace_diff(path_a: &str, path_b: &str) -> ExitCode {
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("trace-diff: cannot read {p}: {e}");
            None
        }
    };
    let (Some(a), Some(b)) = (read(path_a), read(path_b)) else {
        return ExitCode::FAILURE;
    };
    if a == b {
        println!(
            "trace-diff: identical ({} lines, {} bytes)",
            a.lines().count(),
            a.len()
        );
        return ExitCode::SUCCESS;
    }
    let mut lines_a = a.lines();
    let mut lines_b = b.lines();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        match (lines_a.next(), lines_b.next()) {
            (Some(la), Some(lb)) if la == lb => continue,
            (Some(la), Some(lb)) => {
                eprintln!("trace-diff: first divergence at line {lineno}:");
                eprintln!("  {path_a}: {la}");
                eprintln!("  {path_b}: {lb}");
            }
            (Some(la), None) => {
                eprintln!("trace-diff: {path_b} ends at line {lineno}; {path_a} continues: {la}");
            }
            (None, Some(lb)) => {
                eprintln!("trace-diff: {path_a} ends at line {lineno}; {path_b} continues: {lb}");
            }
            (None, None) => {
                // Same lines but different bytes (e.g. trailing newline).
                eprintln!("trace-diff: files differ only in trailing bytes");
                return ExitCode::FAILURE;
            }
        }
        // Summarise the tails: per-kind event counts from the first
        // divergence onward, so a thread-count or seed mismatch shows
        // *what* diverged (one kind drifting vs. wholesale reordering)
        // without scrolling thousands of raw lines.
        let counts_a = kind_counts(a.lines().skip(lineno - 1));
        let counts_b = kind_counts(b.lines().skip(lineno - 1));
        let mut kinds: Vec<&str> = counts_a.keys().chain(counts_b.keys()).copied().collect();
        kinds.sort_unstable();
        kinds.dedup();
        eprintln!("trace-diff: per-kind event counts after line {lineno}:");
        eprintln!("  {:<16} {:>10} {:>10}", "kind", "a", "b");
        for kind in kinds {
            let na = counts_a.get(kind).copied().unwrap_or(0);
            let nb = counts_b.get(kind).copied().unwrap_or(0);
            let marker = if na == nb { "" } else { "  <- differs" };
            eprintln!("  {kind:<16} {na:>10} {nb:>10}{marker}");
        }
        return ExitCode::FAILURE;
    }
}

/// Per-kind line counts of a trace tail: the `"ev"` value per event
/// line, `<other>` for lines without one (metrics, sketches).
fn kind_counts<'a>(lines: impl Iterator<Item = &'a str>) -> BTreeMap<&'a str, u64> {
    let mut counts = BTreeMap::new();
    for line in lines {
        let kind = line
            .split("\"ev\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or("<other>");
        *counts.entry(kind).or_insert(0) += 1;
    }
    counts
}

/// `exp trace-query`: filter/group/aggregate a written trace stream.
fn trace_query(args: &[String]) -> ExitCode {
    use cellfi_obs::query::{run_query, Agg, Query};
    let mut path: Option<&str> = None;
    let mut query = Query::default();
    let mut it = args.iter();
    let usage = "usage: exp trace-query <TRACE.jsonl> [--kind K] [--entity N] \
                 [--from US] [--to US] [--group-by FIELD] \
                 [--agg count|sum:F|mean:F|q<frac>:F]";
    while let Some(a) = it.next() {
        let mut grab = |what: &str| match it.next() {
            Some(v) => Ok(v.clone()),
            None => Err(format!("{what} needs a value")),
        };
        let r = match a.as_str() {
            "--kind" => grab("--kind").map(|v| query.kind = Some(v)),
            "--entity" => grab("--entity").and_then(|v| {
                v.parse()
                    .map(|n| query.entity = Some(n))
                    .map_err(|_| "--entity needs an integer".to_owned())
            }),
            "--from" => grab("--from").and_then(|v| {
                v.parse()
                    .map(|n| query.tick_lo = Some(n))
                    .map_err(|_| "--from needs a microsecond tick".to_owned())
            }),
            "--to" => grab("--to").and_then(|v| {
                v.parse()
                    .map(|n| query.tick_hi = Some(n))
                    .map_err(|_| "--to needs a microsecond tick".to_owned())
            }),
            "--group-by" => grab("--group-by").map(|v| query.group_by = Some(v)),
            "--agg" => grab("--agg").and_then(|v| Agg::parse(&v).map(|a| query.agg = a)),
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(a.as_str());
                Ok(())
            }
            other => Err(format!("unknown argument {other}")),
        };
        if let Err(e) = r {
            eprintln!("trace-query: {e}");
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    }
    let Some(path) = path else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-query: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_query(&text, &query) {
        Ok(table) => {
            print!("{table}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace-query: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Reconstruct and print the final per-cell subchannel allocation a
/// trace stream implies.
fn replay_trace(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match experiments::replay::replay_jsonl(&text) {
        Ok(r) => {
            print!("{}", experiments::replay::allocation_table(&r));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Write `TRACE_<name>.jsonl` and `METRICS_<name>.jsonl` for each
/// experiment name — plus `SKETCH_<name>.jsonl` under `--sample` and,
/// on a monitor violation, the `FLIGHT_<name>.jsonl` ring dump (the
/// violation also fails the run).
fn write_traces(
    names: &[&str],
    config: ExpConfig,
    opts: &experiments::trace_run::TraceOptions,
) -> bool {
    let mut ok = true;
    for name in names {
        let Some(out) = experiments::trace_run::traced_opts(name, config, opts) else {
            eprintln!("no trace runner for {name}");
            ok = false;
            continue;
        };
        for (path, body) in [
            (format!("TRACE_{name}.jsonl"), &out.events),
            (format!("METRICS_{name}.jsonl"), &out.metrics),
        ] {
            match std::fs::write(&path, body) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    ok = false;
                }
            }
        }
        if !out.sketches.is_empty() {
            let path = format!("SKETCH_{name}.jsonl");
            match std::fs::write(&path, &out.sketches) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    ok = false;
                }
            }
        }
        if !out.verdict.is_empty() {
            println!("{name}: {}", out.verdict);
        }
        if let Some(v) = out.violation {
            eprintln!(
                "{name}: monitor {} violated at tick {} us (value {}, threshold {})",
                v.monitor, v.tick_us, v.value, v.threshold
            );
            let path = format!("FLIGHT_{name}.jsonl");
            match std::fs::write(&path, &out.flight) {
                Ok(()) => eprintln!("wrote {path} (flight-recorder ring, oldest first)"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
            ok = false;
        }
    }
    ok
}

fn write_bench(timed: &[(experiments::ExpReport, f64)], config: ExpConfig) {
    use serde_json::Value;
    let mut per_exp = BTreeMap::new();
    let mut total = 0.0;
    for (rep, secs) in timed {
        per_exp.insert(rep.id.clone(), Value::Number(*secs));
        total += secs;
    }
    let mut root = BTreeMap::new();
    root.insert(
        "threads".to_owned(),
        Value::Number(cellfi_sim::parallel::configured_threads() as f64),
    );
    root.insert("experiment_wall_s".to_owned(), Value::Object(per_exp));
    root.insert("total_cpu_wall_s".to_owned(), Value::Number(total));
    root.insert(
        "engine_subframes_per_sec".to_owned(),
        Value::Number(engine_subframes_per_sec(config.seed)),
    );
    root.insert(
        "prach_line_rate_factor".to_owned(),
        Value::Number(prach_line_rate_factor(config.seed)),
    );
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("bench report serializes");
    match std::fs::write("BENCH_engine.json", json + "\n") {
        Ok(()) => eprintln!("wrote BENCH_engine.json"),
        Err(e) => eprintln!("could not write BENCH_engine.json: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace-diff") {
        let [_, a, b] = args.as_slice() else {
            eprintln!("usage: exp trace-diff <a.jsonl> <b.jsonl>");
            return ExitCode::FAILURE;
        };
        return trace_diff(a, b);
    }
    if args.first().map(String::as_str) == Some("replay") {
        let [_, path] = args.as_slice() else {
            eprintln!("usage: exp replay <TRACE.jsonl>");
            return ExitCode::FAILURE;
        };
        return replay_trace(path);
    }
    if args.first().map(String::as_str) == Some("trace-query") {
        return trace_query(&args[1..]);
    }
    let mut names: Vec<String> = Vec::new();
    let mut config = ExpConfig::default();
    let mut json = false;
    let mut bench = false;
    let mut trace = false;
    let mut opts = experiments::trace_run::TraceOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => config.quick = true,
            "--json" => json = true,
            "--bench" => bench = true,
            "--trace" => trace = true,
            "--trace-detail" => {
                trace = true;
                opts.detail = true;
            }
            "--sample" => {
                trace = true;
                match it.next().and_then(|v| cellfi_obs::SampleSpec::parse(v)) {
                    Some(spec) => opts.sample = spec,
                    None => {
                        eprintln!("--sample needs a K/N spec with 0 < K <= N (e.g. 1/8)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--monitors" => {
                trace = true;
                opts.monitors = true;
                // The flight recorder rides along so a violation has a
                // ring to dump.
                opts.flight_cap = 256;
            }
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => config.seed = s,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                for n in experiments::ALL {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        eprintln!(
            "usage: exp <name>...|all|list|trace-diff <a> <b>|trace-query <trace>|replay <trace> \
             [--quick] [--seed N] [--json] [--bench] [--trace] [--trace-detail] \
             [--sample K/N] [--monitors]"
        );
        eprintln!("experiments: {}", experiments::ALL.join(" "));
        return ExitCode::FAILURE;
    }
    // Validate up front, then fan the known prefix out across the
    // scoped thread pool. Reports come back in input order, so the
    // printed stream is byte-identical to the old serial loop; an
    // unknown name still fails after the experiments preceding it.
    let known = names
        .iter()
        .position(|n| !experiments::ALL.contains(&n.as_str()))
        .unwrap_or(names.len());
    let runnable: Vec<&str> = names[..known].iter().map(String::as_str).collect();
    let timed = experiments::run_many_timed(&runnable, config);
    for (report, _) in &timed {
        println!("=== {} ===", report.id);
        println!("{}", report.text);
        if json {
            match serde_json::to_string_pretty(&report.values) {
                Ok(j) => println!("{j}"),
                Err(e) => eprintln!("json encoding failed: {e}"),
            }
        }
    }
    if bench {
        write_bench(&timed, config);
        write_obs_bench(config);
    }
    if trace && !write_traces(&runnable, config, &opts) {
        return ExitCode::FAILURE;
    }
    if let Some(name) = names.get(known) {
        eprintln!("unknown experiment: {name}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
