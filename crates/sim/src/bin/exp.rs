//! `exp` — the experiment runner.
//!
//! ```text
//! exp <name>... [--quick] [--seed N] [--json]
//! exp all [--quick]          # every table and figure, paper order
//! exp list                   # available experiment names
//! ```
//!
//! Each experiment prints a human-readable report; `--json` appends the
//! headline values as a JSON object (consumed by EXPERIMENTS.md tooling).

use cellfi_sim::experiments::{self, ExpConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut config = ExpConfig::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => config.quick = true,
            "--json" => json = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => config.seed = s,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                for n in experiments::ALL {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        eprintln!("usage: exp <name>...|all|list [--quick] [--seed N] [--json]");
        eprintln!("experiments: {}", experiments::ALL.join(" "));
        return ExitCode::FAILURE;
    }
    for name in &names {
        let Some(report) = experiments::run(name, config) else {
            eprintln!("unknown experiment: {name}");
            return ExitCode::FAILURE;
        };
        println!("=== {} ===", report.id);
        println!("{}", report.text);
        if json {
            match serde_json::to_string_pretty(&report.values) {
                Ok(j) => println!("{j}"),
                Err(e) => eprintln!("json encoding failed: {e}"),
            }
        }
    }
    ExitCode::SUCCESS
}
