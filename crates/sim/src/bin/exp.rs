//! `exp` — the experiment runner.
//!
//! ```text
//! exp <name>... [--quick] [--seed N] [--json] [--bench] [--trace] [--trace-detail]
//! exp all [--quick]          # every table and figure, paper order
//! exp list                   # available experiment names
//! exp trace-diff <a> <b>     # byte-compare two trace streams
//! exp replay <TRACE.jsonl>   # reconstruct per-cell occupancy from a trace
//! ```
//!
//! Each experiment prints a human-readable report; `--json` appends the
//! headline values as a JSON object (consumed by EXPERIMENTS.md tooling).
//! `--bench` additionally writes `BENCH_engine.json` — wall-clock per
//! experiment, engine subframes/sec, and the PRACH line-rate factor —
//! plus `BENCH_obs.json` with span timings from the profiling hooks
//! (SINR cache, fading and CQI scans, PRACH correlator). `--trace`
//! writes `TRACE_<name>.jsonl` (the tick-keyed event stream) and
//! `METRICS_<name>.jsonl` (the final metrics snapshot) per experiment;
//! `--trace-detail` additionally switches on the detail stream
//! (per-epoch `sched` occupancy decisions, per-block `harq_retx`, and
//! per-epoch histogram window snapshots in the metrics export).
//! `trace-diff` compares two such streams line by line and exits
//! non-zero on the first divergence — identical seeds must produce
//! byte-identical traces at any `CELLFI_THREADS`. `replay` reads a
//! written `TRACE_<name>.jsonl` back and prints the final per-cell
//! subchannel allocation table it implies (exact when the trace has
//! `sched` events, folded from hop/pack moves otherwise).

use cellfi_sim::experiments::{self, ExpConfig};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Steady-state engine rate: simulated subframes per wall-clock second
/// on a mid-size CellFi scenario (after a warmup second that absorbs
/// scenario generation and cache fills).
fn engine_subframes_per_sec(seed: u64) -> f64 {
    use cellfi_sim::{ImMode, LteEngine, LteEngineConfig, Scenario, ScenarioConfig};
    use cellfi_types::rng::SeedSeq;
    use cellfi_types::time::Instant;
    let seeds = SeedSeq::new(seed).child("bench-engine");
    let scenario = Scenario::generate(ScenarioConfig::paper_default(8, 6), seeds);
    let mut e = LteEngine::new(
        scenario,
        LteEngineConfig::paper_default(ImMode::CellFi),
        seeds.child("engine"),
    );
    e.backlog_all(u64::MAX / 4);
    e.run_until(Instant::from_secs(1));
    let subframes = 2_000u32;
    let t0 = std::time::Instant::now();
    for _ in 0..subframes {
        e.step_subframe();
    }
    f64::from(subframes) / t0.elapsed().as_secs_f64()
}

/// PRACH detector line-rate factor: how many 800 µs occasions one core
/// clears per occasion time (paper: 16× on an i7).
fn prach_line_rate_factor(seed: u64) -> f64 {
    use cellfi_lte::prach::{awgn_channel, preamble, zc_root, PrachDetector, PREAMBLE_DURATION_US};
    use cellfi_types::units::Db;
    use rand::SeedableRng;
    let det = PrachDetector::new(129);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rx = awgn_channel(&preamble(&zc_root(129), 100), 250, Db(-10.0), &mut rng);
    let mut sink = usize::from(det.detect(&rx).detected); // warmup
    let reps = 50u32;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        sink += usize::from(det.detect(&rx).detected);
    }
    assert!(sink > 0);
    let per_detect_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
    PREAMBLE_DURATION_US / per_detect_us
}

/// Wall-clock nanoseconds since the first call. The profiler clock is
/// injected from the bin layer so library code never reads a clock;
/// span timings are reported, never fed back into simulation state.
fn clock_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(std::time::Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Profile the engine's hot paths (SINR cache refresh, fading and CQI
/// scans) and the PRACH correlator, and write the span totals to
/// `BENCH_obs.json`.
fn write_obs_bench(config: ExpConfig) {
    use cellfi_obs::Profiler;
    use cellfi_sim::{ImMode, LteEngine, LteEngineConfig, Scenario, ScenarioConfig};
    use cellfi_types::rng::SeedSeq;
    use cellfi_types::time::Instant;
    use serde_json::Value;

    let seeds = SeedSeq::new(config.seed).child("bench-obs");
    let scenario = Scenario::generate(ScenarioConfig::paper_default(8, 6), seeds);
    let mut e = LteEngine::new(
        scenario,
        LteEngineConfig::paper_default(ImMode::CellFi),
        seeds.child("engine"),
    );
    e.backlog_all(u64::MAX / 4);
    e.run_until(Instant::from_secs(1)); // warmup: caches filled, unprofiled
    e.obs_mut().profiler = Profiler::with_clock(clock_ns);
    for _ in 0..1_000 {
        e.step_subframe();
    }
    let mut profiler = std::mem::replace(&mut e.obs_mut().profiler, Profiler::disabled());

    // The PRACH correlator runs in its own detector loop, not the
    // engine subframe path; profile it directly.
    {
        use cellfi_lte::prach::{awgn_channel, preamble, zc_root, PrachDetector};
        use cellfi_types::units::Db;
        use rand::SeedableRng;
        let det = PrachDetector::new(129);
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let rx = awgn_channel(&preamble(&zc_root(129), 100), 250, Db(-10.0), &mut rng);
        for _ in 0..50 {
            let _ = det.detect_profiled(&rx, &mut profiler);
        }
    }

    let mut spans = BTreeMap::new();
    for (name, stats) in profiler.report() {
        if stats.count == 0 {
            continue;
        }
        let mut entry = BTreeMap::new();
        entry.insert("count".to_owned(), Value::Number(stats.count as f64));
        entry.insert("total_ns".to_owned(), Value::Number(stats.total_ns as f64));
        entry.insert(
            "mean_ns".to_owned(),
            Value::Number(stats.total_ns as f64 / stats.count as f64),
        );
        spans.insert(name.to_owned(), Value::Object(entry));
    }
    let mut root = BTreeMap::new();
    root.insert(
        "threads".to_owned(),
        Value::Number(cellfi_sim::parallel::configured_threads() as f64),
    );
    root.insert("profiled_subframes".to_owned(), Value::Number(1_000.0));
    root.insert("spans".to_owned(), Value::Object(spans));
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("bench report serializes");
    match std::fs::write("BENCH_obs.json", json + "\n") {
        Ok(()) => eprintln!("wrote BENCH_obs.json"),
        Err(e) => eprintln!("could not write BENCH_obs.json: {e}"),
    }
}

/// Byte-compare two trace streams line by line; report the first
/// divergence. Returns success only for identical files.
fn trace_diff(path_a: &str, path_b: &str) -> ExitCode {
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("trace-diff: cannot read {p}: {e}");
            None
        }
    };
    let (Some(a), Some(b)) = (read(path_a), read(path_b)) else {
        return ExitCode::FAILURE;
    };
    if a == b {
        println!(
            "trace-diff: identical ({} lines, {} bytes)",
            a.lines().count(),
            a.len()
        );
        return ExitCode::SUCCESS;
    }
    let mut lines_a = a.lines();
    let mut lines_b = b.lines();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        match (lines_a.next(), lines_b.next()) {
            (Some(la), Some(lb)) if la == lb => continue,
            (Some(la), Some(lb)) => {
                eprintln!("trace-diff: first divergence at line {lineno}:");
                eprintln!("  {path_a}: {la}");
                eprintln!("  {path_b}: {lb}");
            }
            (Some(la), None) => {
                eprintln!("trace-diff: {path_b} ends at line {lineno}; {path_a} continues: {la}");
            }
            (None, Some(lb)) => {
                eprintln!("trace-diff: {path_a} ends at line {lineno}; {path_b} continues: {lb}");
            }
            (None, None) => {
                // Same lines but different bytes (e.g. trailing newline).
                eprintln!("trace-diff: files differ only in trailing bytes");
            }
        }
        return ExitCode::FAILURE;
    }
}

/// Reconstruct and print the final per-cell subchannel allocation a
/// trace stream implies.
fn replay_trace(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match experiments::replay::replay_jsonl(&text) {
        Ok(r) => {
            print!("{}", experiments::replay::allocation_table(&r));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Write `TRACE_<name>.jsonl` and `METRICS_<name>.jsonl` for each
/// experiment name.
fn write_traces(names: &[&str], config: ExpConfig, detail: bool) -> bool {
    let mut ok = true;
    for name in names {
        let Some(out) = experiments::trace_run::traced_with(name, config, detail) else {
            eprintln!("no trace runner for {name}");
            ok = false;
            continue;
        };
        for (path, body) in [
            (format!("TRACE_{name}.jsonl"), &out.events),
            (format!("METRICS_{name}.jsonl"), &out.metrics),
        ] {
            match std::fs::write(&path, body) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    ok = false;
                }
            }
        }
    }
    ok
}

fn write_bench(timed: &[(experiments::ExpReport, f64)], config: ExpConfig) {
    use serde_json::Value;
    let mut per_exp = BTreeMap::new();
    let mut total = 0.0;
    for (rep, secs) in timed {
        per_exp.insert(rep.id.clone(), Value::Number(*secs));
        total += secs;
    }
    let mut root = BTreeMap::new();
    root.insert(
        "threads".to_owned(),
        Value::Number(cellfi_sim::parallel::configured_threads() as f64),
    );
    root.insert("experiment_wall_s".to_owned(), Value::Object(per_exp));
    root.insert("total_cpu_wall_s".to_owned(), Value::Number(total));
    root.insert(
        "engine_subframes_per_sec".to_owned(),
        Value::Number(engine_subframes_per_sec(config.seed)),
    );
    root.insert(
        "prach_line_rate_factor".to_owned(),
        Value::Number(prach_line_rate_factor(config.seed)),
    );
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("bench report serializes");
    match std::fs::write("BENCH_engine.json", json + "\n") {
        Ok(()) => eprintln!("wrote BENCH_engine.json"),
        Err(e) => eprintln!("could not write BENCH_engine.json: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace-diff") {
        let [_, a, b] = args.as_slice() else {
            eprintln!("usage: exp trace-diff <a.jsonl> <b.jsonl>");
            return ExitCode::FAILURE;
        };
        return trace_diff(a, b);
    }
    if args.first().map(String::as_str) == Some("replay") {
        let [_, path] = args.as_slice() else {
            eprintln!("usage: exp replay <TRACE.jsonl>");
            return ExitCode::FAILURE;
        };
        return replay_trace(path);
    }
    let mut names: Vec<String> = Vec::new();
    let mut config = ExpConfig::default();
    let mut json = false;
    let mut bench = false;
    let mut trace = false;
    let mut detail = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => config.quick = true,
            "--json" => json = true,
            "--bench" => bench = true,
            "--trace" => trace = true,
            "--trace-detail" => {
                trace = true;
                detail = true;
            }
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => config.seed = s,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                for n in experiments::ALL {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        eprintln!(
            "usage: exp <name>...|all|list|trace-diff <a> <b>|replay <trace> \
             [--quick] [--seed N] [--json] [--bench] [--trace] [--trace-detail]"
        );
        eprintln!("experiments: {}", experiments::ALL.join(" "));
        return ExitCode::FAILURE;
    }
    // Validate up front, then fan the known prefix out across the
    // scoped thread pool. Reports come back in input order, so the
    // printed stream is byte-identical to the old serial loop; an
    // unknown name still fails after the experiments preceding it.
    let known = names
        .iter()
        .position(|n| !experiments::ALL.contains(&n.as_str()))
        .unwrap_or(names.len());
    let runnable: Vec<&str> = names[..known].iter().map(String::as_str).collect();
    let timed = experiments::run_many_timed(&runnable, config);
    for (report, _) in &timed {
        println!("=== {} ===", report.id);
        println!("{}", report.text);
        if json {
            match serde_json::to_string_pretty(&report.values) {
                Ok(j) => println!("{j}"),
                Err(e) => eprintln!("json encoding failed: {e}"),
            }
        }
    }
    if bench {
        write_bench(&timed, config);
        write_obs_bench(config);
    }
    if trace && !write_traces(&runnable, config, detail) {
        return ExitCode::FAILURE;
    }
    if let Some(name) = names.get(known) {
        eprintln!("unknown experiment: {name}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
