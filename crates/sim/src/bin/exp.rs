//! `exp` — the experiment runner.
//!
//! ```text
//! exp <name>... [--quick] [--seed N] [--json] [--bench]
//! exp all [--quick]          # every table and figure, paper order
//! exp list                   # available experiment names
//! ```
//!
//! Each experiment prints a human-readable report; `--json` appends the
//! headline values as a JSON object (consumed by EXPERIMENTS.md tooling).
//! `--bench` additionally writes `BENCH_engine.json` — wall-clock per
//! experiment, engine subframes/sec, and the PRACH line-rate factor —
//! for tracking the simulator's own performance over time.

use cellfi_sim::experiments::{self, ExpConfig};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Steady-state engine rate: simulated subframes per wall-clock second
/// on a mid-size CellFi scenario (after a warmup second that absorbs
/// scenario generation and cache fills).
fn engine_subframes_per_sec(seed: u64) -> f64 {
    use cellfi_sim::{ImMode, LteEngine, LteEngineConfig, Scenario, ScenarioConfig};
    use cellfi_types::rng::SeedSeq;
    use cellfi_types::time::Instant;
    let seeds = SeedSeq::new(seed).child("bench-engine");
    let scenario = Scenario::generate(ScenarioConfig::paper_default(8, 6), seeds);
    let mut e = LteEngine::new(
        scenario,
        LteEngineConfig::paper_default(ImMode::CellFi),
        seeds.child("engine"),
    );
    e.backlog_all(u64::MAX / 4);
    e.run_until(Instant::from_secs(1));
    let subframes = 2_000u32;
    let t0 = std::time::Instant::now();
    for _ in 0..subframes {
        e.step_subframe();
    }
    f64::from(subframes) / t0.elapsed().as_secs_f64()
}

/// PRACH detector line-rate factor: how many 800 µs occasions one core
/// clears per occasion time (paper: 16× on an i7).
fn prach_line_rate_factor(seed: u64) -> f64 {
    use cellfi_lte::prach::{awgn_channel, preamble, zc_root, PrachDetector, PREAMBLE_DURATION_US};
    use cellfi_types::units::Db;
    use rand::SeedableRng;
    let det = PrachDetector::new(129);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rx = awgn_channel(&preamble(&zc_root(129), 100), 250, Db(-10.0), &mut rng);
    let mut sink = usize::from(det.detect(&rx).detected); // warmup
    let reps = 50u32;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        sink += usize::from(det.detect(&rx).detected);
    }
    assert!(sink > 0);
    let per_detect_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
    PREAMBLE_DURATION_US / per_detect_us
}

fn write_bench(timed: &[(experiments::ExpReport, f64)], config: ExpConfig) {
    use serde_json::Value;
    let mut per_exp = BTreeMap::new();
    let mut total = 0.0;
    for (rep, secs) in timed {
        per_exp.insert(rep.id.clone(), Value::Number(*secs));
        total += secs;
    }
    let mut root = BTreeMap::new();
    root.insert(
        "threads".to_owned(),
        Value::Number(cellfi_sim::parallel::configured_threads() as f64),
    );
    root.insert("experiment_wall_s".to_owned(), Value::Object(per_exp));
    root.insert("total_cpu_wall_s".to_owned(), Value::Number(total));
    root.insert(
        "engine_subframes_per_sec".to_owned(),
        Value::Number(engine_subframes_per_sec(config.seed)),
    );
    root.insert(
        "prach_line_rate_factor".to_owned(),
        Value::Number(prach_line_rate_factor(config.seed)),
    );
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("bench report serializes");
    match std::fs::write("BENCH_engine.json", json + "\n") {
        Ok(()) => eprintln!("wrote BENCH_engine.json"),
        Err(e) => eprintln!("could not write BENCH_engine.json: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut config = ExpConfig::default();
    let mut json = false;
    let mut bench = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => config.quick = true,
            "--json" => json = true,
            "--bench" => bench = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => config.seed = s,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                for n in experiments::ALL {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        eprintln!("usage: exp <name>...|all|list [--quick] [--seed N] [--json] [--bench]");
        eprintln!("experiments: {}", experiments::ALL.join(" "));
        return ExitCode::FAILURE;
    }
    // Validate up front, then fan the known prefix out across the
    // scoped thread pool. Reports come back in input order, so the
    // printed stream is byte-identical to the old serial loop; an
    // unknown name still fails after the experiments preceding it.
    let known = names
        .iter()
        .position(|n| !experiments::ALL.contains(&n.as_str()))
        .unwrap_or(names.len());
    let runnable: Vec<&str> = names[..known].iter().map(String::as_str).collect();
    let timed = experiments::run_many_timed(&runnable, config);
    for (report, _) in &timed {
        println!("=== {} ===", report.id);
        println!("{}", report.text);
        if json {
            match serde_json::to_string_pretty(&report.values) {
                Ok(j) => println!("{j}"),
                Err(e) => eprintln!("json encoding failed: {e}"),
            }
        }
    }
    if bench {
        write_bench(&timed, config);
    }
    if let Some(name) = names.get(known) {
        eprintln!("unknown experiment: {name}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
