//! Glue: run the `cellfi-wifi` DCF simulator over a [`Scenario`].
//!
//! The paper's Wi-Fi baselines (802.11af outdoors, 802.11ac indoors for
//! Fig 2) run on the *same* topologies as the LTE modes so comparisons
//! are paired. Per §6.3.4 RF settings, Wi-Fi uses 30 dBm at both AP and
//! client; 802.11af gets a 6 MHz channel.

use crate::topology::Scenario;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::Instant;
use cellfi_types::units::Dbm;
use cellfi_wifi::sim::{WifiConfig, WifiSimulator};

/// A Wi-Fi run bound to a scenario.
#[derive(Debug)]
pub struct WifiEngine {
    sim: WifiSimulator,
    n_ues: usize,
    started: Instant,
}

impl WifiEngine {
    /// Build from a scenario. `config` selects 802.11af or 802.11ac.
    pub fn new(scenario: &Scenario, config: WifiConfig, seeds: SeedSeq) -> WifiEngine {
        let sim = WifiSimulator::new(
            scenario.env,
            config,
            scenario.aps.clone(),
            Dbm(30.0), // paper: Wi-Fi AP TX 30 dBm
            scenario.ues.clone(),
            scenario.assoc.clone(),
            seeds.seed("wifi-engine"),
        );
        WifiEngine {
            sim,
            n_ues: scenario.n_ues(),
            started: Instant::ZERO,
        }
    }

    /// Enqueue downlink bytes for a client.
    pub fn enqueue(&mut self, ue: usize, bytes: u64) {
        self.sim.enqueue(ue, bytes);
    }

    /// Backlog every client with `bytes`.
    pub fn backlog_all(&mut self, bytes: u64) {
        for u in 0..self.n_ues {
            self.sim.enqueue(u, bytes);
        }
    }

    /// Advance to `t`.
    pub fn run_until(&mut self, t: Instant) {
        self.sim.run_until(t);
    }

    /// Delivered bytes per client.
    pub fn delivered_bytes(&self) -> &[u64] {
        &self.sim.stats().delivered_bytes
    }

    /// Bytes still queued for a client.
    pub fn queued(&self, ue: usize) -> u64 {
        self.sim.queued(ue)
    }

    /// Per-client throughput in bps over the elapsed run.
    pub fn throughputs_bps(&self) -> Vec<f64> {
        let t = (self.sim.now() - self.started).as_secs_f64().max(1e-9);
        self.sim
            .stats()
            .delivered_bytes
            .iter()
            .map(|&b| b as f64 * 8.0 / t)
            .collect()
    }

    /// Number of clients in the scenario.
    pub fn n_ues(&self) -> usize {
        self.n_ues
    }

    /// Whether a client's downlink closes at all (mean SNR ≥ MCS 0).
    pub fn reachable(&self, ue: usize) -> bool {
        self.sim.reachable(ue)
    }

    /// Underlying simulator (stats access).
    pub fn sim(&self) -> &WifiSimulator {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ScenarioConfig;

    fn scenario() -> Scenario {
        let mut cfg = ScenarioConfig::paper_default(2, 2);
        cfg.shadowing_sigma = 0.0;
        cfg.fading = false;
        Scenario::generate(cfg, SeedSeq::new(31))
    }

    #[test]
    fn runs_and_delivers_on_paper_topology() {
        let s = scenario();
        let mut e = WifiEngine::new(&s, WifiConfig::af_default(), SeedSeq::new(1));
        e.backlog_all(2_000_000);
        e.run_until(Instant::from_secs(1));
        let total: u64 = e.delivered_bytes().iter().sum();
        assert!(total > 0, "nothing delivered");
    }

    #[test]
    fn paired_with_scenario_geometry() {
        let s = scenario();
        let e = WifiEngine::new(&s, WifiConfig::af_default(), SeedSeq::new(1));
        // Every client within 650 m must be reachable on 6 MHz at 30 dBm.
        for u in 0..s.n_ues() {
            assert!(e.reachable(u), "client {u} unreachable");
        }
    }

    #[test]
    fn throughput_accounting_in_bits() {
        let s = scenario();
        let mut e = WifiEngine::new(&s, WifiConfig::af_default(), SeedSeq::new(2));
        e.enqueue(0, 1_000_000);
        e.run_until(Instant::from_secs(1));
        let tput = e.throughputs_bps()[0];
        let bytes = e.delivered_bytes()[0];
        // The run length rounds to whole 9 µs slots, so allow the
        // corresponding relative error.
        assert!((tput - bytes as f64 * 8.0).abs() / (bytes as f64 * 8.0) < 1e-3);
    }
}
