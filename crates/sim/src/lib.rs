//! # cellfi-sim
//!
//! The network simulator and experiment harness that regenerates every
//! table and figure of the CellFi paper (see DESIGN.md §4 for the
//! experiment index, EXPERIMENTS.md for paper-vs-measured results).
//!
//! * [`topology`] — scenario generation: the paper's 2 km × 2 km area
//!   with randomly placed access points and per-AP client drops, plus the
//!   two-cell and drive-test layouts of the testbed experiments.
//! * [`workload`] — traffic models: backlogged flows and the web-like
//!   page model (flow sizes, objects per page, think times per the
//!   paper's cited measurement studies).
//! * [`engine`] — the LTE system simulator, layered as PHY (gain
//!   matrices, fading, SINR cache), MAC (the 1 ms subframe loop: CQI
//!   feedback, PF scheduling, AMC, HARQ, control-channel retention), and
//!   an interference-management strategy layer with one module per
//!   system (plain LTE, CellFi, the centralized oracle, LAA, X2-ICIC),
//!   plus the [`engine::SystemEngine`] trait and [`engine::SimHarness`]
//!   clock loop shared with the Wi-Fi baseline.
//! * [`wifi_engine`] — glue that runs the `cellfi-wifi` DCF simulator
//!   over the same topologies and workloads.
//! * [`metrics`] — CDFs, percentiles, starvation/coverage counters.
//! * [`parallel`] — deterministic scoped-thread work splitting
//!   (`CELLFI_THREADS`); the engine and experiment drivers fan out
//!   through it with results reduced in fixed index order.
//! * [`slab`] — flat strided 2-D/3-D `f64` slabs backing the PHY gain
//!   tensors (contiguous lanes for vectorization and stride-aligned
//!   parallel splitting).
//! * [`spatial`] — deterministic uniform-grid spatial index: radius
//!   queries over node positions, exact-equal to brute-force distance
//!   filtering, backing the neighbor tables that cull far-field
//!   interference at metro scale.
//! * [`report`] — plain-text rendering of tables and CDF series.
//! * [`experiments`] — one driver per paper table/figure.
//!
//! Run experiments with the `exp` binary:
//! `cargo run --release -p cellfi-sim --bin exp -- fig9a`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiments;
pub mod metrics;
pub mod parallel;
pub mod report;
pub mod slab;
pub mod spatial;
pub mod topology;
pub mod wifi_engine;
pub mod workload;

pub use engine::{ImMode, LteEngine, LteEngineConfig};
pub use metrics::Cdf;
pub use topology::{Scenario, ScenarioConfig};
pub use workload::{WebWorkload, WebWorkloadConfig};
