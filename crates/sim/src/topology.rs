//! Scenario generation.
//!
//! The paper's large-scale setting (§6.3.4): "We simulate an area of
//! 2 km × 2 km, with a varying network density as controlled by the
//! number of simulated APs. Base stations are randomly placed in this
//! area with varying number of clients per AP." Client transmit power is
//! 20 dBm (TVWS cap); AP power 30 dBm; propagation is the calibrated
//! urban model. Every scenario is reproducible from its seed, and the
//! same scenario drives the CellFi, plain-LTE, Wi-Fi and oracle runs so
//! comparisons are paired.

use cellfi_propagation::antenna::Antenna;
use cellfi_propagation::fading::BlockFading;
use cellfi_propagation::link::LinkEnd;
use cellfi_propagation::noise::NoiseModel;
use cellfi_propagation::pathloss::PathLossModel;
use cellfi_propagation::shadowing::Shadowing;
use cellfi_propagation::RadioEnvironment;
use cellfi_types::geo::Point;
use cellfi_types::rng::SeedSeq;
use cellfi_types::units::{Db, Dbm, Hertz};
use rand::Rng;

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Area side length (m); the paper uses 2000.
    pub area: f64,
    /// Number of access points.
    pub n_aps: usize,
    /// Clients per AP.
    pub clients_per_ap: usize,
    /// Maximum client distance from its AP. The paper drops clients
    /// "within the corresponding range of each access point" — TVWS
    /// coverage promises "1 km and above" (§2), so the default radius is
    /// 1 km for both technologies.
    pub cell_radius: f64,
    /// AP transmit power (conducted; paper: 30 dBm).
    pub ap_power: Dbm,
    /// Client transmit power (TVWS cap: 20 dBm).
    pub ue_power: Dbm,
    /// Log-normal shadowing σ (dB); 0 disables.
    pub shadowing_sigma: f64,
    /// Enable per-subchannel Rayleigh block fading.
    pub fading: bool,
}

impl ScenarioConfig {
    /// The paper's default large-scale settings.
    pub fn paper_default(n_aps: usize, clients_per_ap: usize) -> ScenarioConfig {
        ScenarioConfig {
            area: 2_000.0,
            n_aps,
            clients_per_ap,
            cell_radius: 1_000.0,
            ap_power: Dbm(30.0),
            ue_power: Dbm(20.0),
            shadowing_sigma: 4.0,
            fading: true,
        }
    }
}

/// A generated scenario: node placement plus the radio environment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Configuration it was drawn from.
    pub config: ScenarioConfig,
    /// Access-point terminals (node keys `0..n_aps`).
    pub aps: Vec<LinkEnd>,
    /// Client terminals (node keys `1000 + i`).
    pub ues: Vec<LinkEnd>,
    /// Client → serving AP index (the AP it was dropped around).
    pub assoc: Vec<usize>,
    /// The shared propagation environment.
    pub env: RadioEnvironment,
}

/// Node-key offset for clients (AP keys start at 0).
pub const UE_NODE_BASE: u32 = 1_000;

impl Scenario {
    /// Generate a scenario deterministically from `seeds`.
    pub fn generate(config: ScenarioConfig, seeds: SeedSeq) -> Scenario {
        let mut rng = seeds.rng("topology");
        let mut aps = Vec::with_capacity(config.n_aps);
        for i in 0..config.n_aps {
            let p = Point::new(
                rng.gen_range(0.0..config.area),
                rng.gen_range(0.0..config.area),
            );
            aps.push(LinkEnd::new(
                i as u32,
                p,
                Antenna::Isotropic { gain: Db(6.0) },
            ));
        }
        let mut ues = Vec::new();
        let mut assoc = Vec::new();
        for (ap_idx, ap) in aps.iter().enumerate() {
            for _ in 0..config.clients_per_ap {
                // Uniform over the disc (sqrt radius), clipped to the area.
                let p = loop {
                    let r = config.cell_radius * rng.gen::<f64>().sqrt();
                    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                    let p = ap.position.offset(theta, cellfi_types::units::Meters(r));
                    if p.within(config.area, config.area) {
                        break p;
                    }
                };
                ues.push(LinkEnd::new(
                    UE_NODE_BASE + ues.len() as u32,
                    p,
                    Antenna::client(),
                ));
                assoc.push(ap_idx);
            }
        }
        let env = RadioEnvironment {
            pathloss: PathLossModel::tvws_urban(),
            shadowing: if config.shadowing_sigma > 0.0 {
                Shadowing::new(seeds.child("shadow"), config.shadowing_sigma)
            } else {
                Shadowing::disabled(seeds.child("shadow"))
            },
            fading: if config.fading {
                BlockFading::pedestrian(seeds.child("fading"))
            } else {
                BlockFading::disabled(seeds.child("fading"))
            },
            noise: NoiseModel::typical(),
            frequency: Hertz(700e6),
        };
        Scenario {
            config,
            aps,
            ues,
            assoc,
            env,
        }
    }

    /// Two cells on a line with one client between them — the Fig 7
    /// outdoor interference layout (serving cell, interfering cell, and a
    /// client walked along a path).
    pub fn two_cell_interference(separation: f64, seeds: SeedSeq) -> Scenario {
        let config = ScenarioConfig {
            area: separation + 1_000.0,
            n_aps: 2,
            clients_per_ap: 0,
            cell_radius: 500.0,
            ap_power: Dbm(23.0), // the E40's power in the testbed
            ue_power: Dbm(20.0),
            shadowing_sigma: 0.0,
            fading: false,
        };
        let aps = vec![
            LinkEnd::new(0, Point::new(0.0, 0.0), Antenna::paper_sector(0.0)),
            LinkEnd::new(
                1,
                Point::new(separation, 0.0),
                Antenna::paper_sector(std::f64::consts::PI),
            ),
        ];
        let env = RadioEnvironment {
            pathloss: PathLossModel::tvws_urban(),
            shadowing: Shadowing::disabled(seeds.child("shadow")),
            fading: BlockFading::disabled(seeds.child("fading")),
            noise: NoiseModel::typical(),
            frequency: Hertz(700e6),
        };
        Scenario {
            config,
            aps,
            ues: Vec::new(),
            assoc: Vec::new(),
            env,
        }
    }

    /// Total number of clients.
    pub fn n_ues(&self) -> usize {
        self.ues.len()
    }

    /// Clients of one AP.
    pub fn clients_of(&self, ap: usize) -> Vec<usize> {
        (0..self.ues.len())
            .filter(|&u| self.assoc[u] == ap)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(seed: u64) -> Scenario {
        Scenario::generate(ScenarioConfig::paper_default(6, 4), SeedSeq::new(seed))
    }

    #[test]
    fn generates_requested_counts() {
        let s = scenario(1);
        assert_eq!(s.aps.len(), 6);
        assert_eq!(s.n_ues(), 24);
        assert_eq!(s.assoc.len(), 24);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = scenario(7);
        let b = scenario(7);
        assert_eq!(a.aps[3].position, b.aps[3].position);
        assert_eq!(a.ues[10].position, b.ues[10].position);
    }

    #[test]
    fn different_seeds_differ() {
        let a = scenario(1);
        let b = scenario(2);
        assert_ne!(a.aps[0].position, b.aps[0].position);
    }

    #[test]
    fn everything_inside_area() {
        let s = scenario(3);
        for n in s.aps.iter().chain(s.ues.iter()) {
            assert!(n.position.within(2_000.0, 2_000.0), "{}", n.position);
        }
    }

    #[test]
    fn clients_within_cell_radius() {
        let s = scenario(4);
        for (u, ue) in s.ues.iter().enumerate() {
            let ap = &s.aps[s.assoc[u]];
            let d = ap.position.distance(ue.position).value();
            assert!(d <= 1_000.0 + 1e-9, "client {u} at {d} m");
        }
    }

    #[test]
    fn node_keys_unique() {
        let s = scenario(5);
        let mut keys: Vec<u32> = s.aps.iter().chain(s.ues.iter()).map(|e| e.node).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), s.aps.len() + s.ues.len());
    }

    #[test]
    fn clients_of_partitions_everyone() {
        let s = scenario(6);
        let total: usize = (0..s.aps.len()).map(|a| s.clients_of(a).len()).sum();
        assert_eq!(total, s.n_ues());
        assert_eq!(s.clients_of(0).len(), 4);
    }

    #[test]
    fn two_cell_layout_faces_antennas_inward() {
        let s = Scenario::two_cell_interference(400.0, SeedSeq::new(1));
        assert_eq!(s.aps.len(), 2);
        // Serving cell's boresight points at the interferer and vice versa.
        let mid = Point::new(200.0, 0.0);
        let g0 = s.aps[0]
            .antenna
            .gain_towards(s.aps[0].position.bearing_to(mid));
        assert!((g0.value() - 7.0).abs() < 0.1);
    }
}
