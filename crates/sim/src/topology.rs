//! Scenario generation.
//!
//! The paper's large-scale setting (§6.3.4): "We simulate an area of
//! 2 km × 2 km, with a varying network density as controlled by the
//! number of simulated APs. Base stations are randomly placed in this
//! area with varying number of clients per AP." Client transmit power is
//! 20 dBm (TVWS cap); AP power 30 dBm; propagation is the calibrated
//! urban model. Every scenario is reproducible from its seed, and the
//! same scenario drives the CellFi, plain-LTE, Wi-Fi and oracle runs so
//! comparisons are paired.

use crate::spatial::UniformGrid;
use cellfi_propagation::antenna::Antenna;
use cellfi_propagation::fading::BlockFading;
use cellfi_propagation::link::LinkEnd;
use cellfi_propagation::noise::NoiseModel;
use cellfi_propagation::pathloss::PathLossModel;
use cellfi_propagation::shadowing::Shadowing;
use cellfi_propagation::RadioEnvironment;
use cellfi_types::geo::Point;
use cellfi_types::rng::SeedSeq;
use cellfi_types::units::{Db, Dbm, Hertz};
use rand::Rng;

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Area side length (m); the paper uses 2000.
    pub area: f64,
    /// Number of access points.
    pub n_aps: usize,
    /// Clients per AP.
    pub clients_per_ap: usize,
    /// Maximum client distance from its AP. The paper drops clients
    /// "within the corresponding range of each access point" — TVWS
    /// coverage promises "1 km and above" (§2), so the default radius is
    /// 1 km for both technologies.
    pub cell_radius: f64,
    /// AP transmit power (conducted; paper: 30 dBm).
    pub ap_power: Dbm,
    /// Client transmit power (TVWS cap: 20 dBm).
    pub ue_power: Dbm,
    /// Log-normal shadowing σ (dB); 0 disables.
    pub shadowing_sigma: f64,
    /// Enable per-subchannel Rayleigh block fading.
    pub fading: bool,
    /// Received-power culling floor (dBm). `None` — the default — keeps
    /// the interference model dense: every AP is a candidate for every
    /// UE and existing results stay byte-identical. `Some(floor)` culls
    /// links whose best-case mean received power (TX power + antenna
    /// gains + shadowing/fading headroom) cannot reach `floor`; the
    /// neighbor tables then carry only near-field candidates, which is
    /// what makes metro-scale (10k cells / 1M UEs) tractable.
    pub cull_floor_dbm: Option<f64>,
}

impl ScenarioConfig {
    /// The paper's default large-scale settings.
    pub fn paper_default(n_aps: usize, clients_per_ap: usize) -> ScenarioConfig {
        ScenarioConfig {
            area: 2_000.0,
            n_aps,
            clients_per_ap,
            cell_radius: 1_000.0,
            ap_power: Dbm(30.0),
            ue_power: Dbm(20.0),
            shadowing_sigma: 4.0,
            fading: true,
            cull_floor_dbm: None,
        }
    }
}

/// Compact neighbor tables built from the spatial index: per-UE
/// candidate-AP lists, per-AP interferer sets, the transpose listener
/// lists, and the per-AP client partition — everything the engine needs
/// to replace all-pairs loops with near-field iteration.
///
/// All four tables are CSR-packed (`offsets` + flat payload) and every
/// row ascends, so iteration order — and therefore every float
/// accumulation order downstream — matches the dense engine's ascending
/// AP/UE loops exactly. With no cull radius the tables are the dense
/// sets and the engine's arithmetic is byte-identical to the
/// pre-spatial-index code.
#[derive(Debug, Clone, Default)]
pub struct NeighborTable {
    /// The cull radius (m) the tables were built with; `None` = dense.
    pub cull_radius_m: Option<f64>,
    /// Maximum candidate-AP row length over all UEs: the uniform
    /// neighbor-slot stride of the engine's `[ue][slot][s]` slabs.
    pub max_neighbors: usize,
    /// Maximum interferer row length over all APs: the uniform slot
    /// stride of the engine's AP-to-AP sensing table.
    pub max_ap_neighbors: usize,
    /// CSR boundaries for `ue_aps`, `n_ues + 1` entries.
    ue_offsets: Vec<u32>,
    /// Per-UE candidate AP ids, ascending; always includes the serving
    /// AP.
    ue_aps: Vec<u32>,
    /// CSR boundaries for `ap_aps`, `n_aps + 1` entries.
    ap_offsets: Vec<u32>,
    /// Per-AP interferer AP ids, ascending, self excluded.
    ap_aps: Vec<u32>,
    /// CSR boundaries for the listener arrays, `n_aps + 1` entries.
    listener_offsets: Vec<u32>,
    /// Transpose of `ue_aps`: for AP `a`, the UEs that carry `a` in
    /// their candidate row, ascending by UE.
    listener_ues: Vec<u32>,
    /// Parallel to `listener_ues`: the neighbor slot `a` occupies in
    /// that UE's candidate row.
    listener_slots: Vec<u32>,
    /// CSR boundaries for `clients`, `n_aps + 1` entries.
    clients_offsets: Vec<u32>,
    /// Per-AP attached clients (ascending UE index).
    clients: Vec<u32>,
}

/// Best-case link-budget headroom (dB) above the mean path-loss curve:
/// peak antenna gains at both ends plus shadowing (3σ) and, when block
/// fading is on, a fading allowance. The cull radius derived from it is
/// deliberately a *superset* bound — a culled link could not have
/// reached the floor even with every favourable term stacked.
fn cull_headroom_db(config: &ScenarioConfig) -> f64 {
    let antenna = 14.0;
    let shadow = 3.0 * config.shadowing_sigma.max(0.0);
    let fade = if config.fading { 12.0 } else { 0.0 };
    antenna + shadow + fade
}

/// The culling radius (m) for `config`, or `None` when the floor is off.
/// A floor so high that even the reference distance cannot reach it
/// degenerates to radius 0 (only the serving AP survives the cull).
fn cull_radius(config: &ScenarioConfig, env: &RadioEnvironment) -> Option<f64> {
    let floor = config.cull_floor_dbm?;
    let target = config.ap_power.value() + cull_headroom_db(config) - floor;
    Some(
        env.pathloss
            .range_for_loss(env.frequency, Db(target))
            .map(|m| m.value())
            .unwrap_or(0.0),
    )
}

impl NeighborTable {
    /// Build the tables for one scenario. Deterministic: the spatial
    /// index answers radius queries exactly equal to brute-force
    /// distance filtering, sorted ascending.
    pub fn build(
        config: &ScenarioConfig,
        aps: &[LinkEnd],
        ues: &[LinkEnd],
        assoc: &[usize],
        env: &RadioEnvironment,
    ) -> NeighborTable {
        let n_ap = aps.len();
        let n_ue = ues.len();
        let radius = cull_radius(config, env);
        let mut ue_offsets = Vec::with_capacity(n_ue + 1);
        let mut ue_aps: Vec<u32>;
        let mut ap_offsets = Vec::with_capacity(n_ap + 1);
        let mut ap_aps: Vec<u32>;
        ue_offsets.push(0);
        ap_offsets.push(0);
        match radius {
            None => {
                // Dense: every AP is a candidate of every UE and an
                // interferer of every other AP, ascending.
                ue_aps = Vec::with_capacity(n_ue * n_ap);
                for _ in 0..n_ue {
                    ue_aps.extend(0..n_ap as u32);
                    ue_offsets.push(ue_aps.len() as u32);
                }
                ap_aps = Vec::with_capacity(n_ap.saturating_sub(1) * n_ap);
                for a in 0..n_ap as u32 {
                    ap_aps.extend((0..n_ap as u32).filter(|&b| b != a));
                    ap_offsets.push(ap_aps.len() as u32);
                }
            }
            Some(r) => {
                let positions: Vec<Point> = aps.iter().map(|a| a.position).collect();
                let grid = UniformGrid::build(&positions, r.max(1.0));
                let mut buf = Vec::new();
                ue_aps = Vec::new();
                for (u, ue) in ues.iter().enumerate() {
                    grid.within_into(ue.position, r, &mut buf);
                    // The serving AP is never culled, wherever it is.
                    let serving = assoc[u] as u32;
                    if let Err(pos) = buf.binary_search(&serving) {
                        buf.insert(pos, serving);
                    }
                    ue_aps.extend_from_slice(&buf);
                    ue_offsets.push(ue_aps.len() as u32);
                }
                ap_aps = Vec::new();
                for (a, ap) in aps.iter().enumerate() {
                    grid.within_into(ap.position, r, &mut buf);
                    buf.retain(|&b| b != a as u32);
                    ap_aps.extend_from_slice(&buf);
                    ap_offsets.push(ap_aps.len() as u32);
                }
            }
        }
        let max_neighbors = (0..n_ue)
            .map(|u| (ue_offsets[u + 1] - ue_offsets[u]) as usize)
            .max()
            .unwrap_or(0);
        let max_ap_neighbors = (0..n_ap)
            .map(|a| (ap_offsets[a + 1] - ap_offsets[a]) as usize)
            .max()
            .unwrap_or(0);
        // Transpose candidates into per-AP (ue, slot) listener lists via
        // a stable counting sort — ascending UE within each AP.
        let mut counts = vec![0u32; n_ap + 1];
        for &a in &ue_aps {
            counts[a as usize + 1] += 1;
        }
        for a in 1..counts.len() {
            counts[a] += counts[a - 1];
        }
        let listener_offsets = counts.clone();
        let mut cursor = counts;
        let mut listener_ues = vec![0u32; ue_aps.len()];
        let mut listener_slots = vec![0u32; ue_aps.len()];
        for u in 0..n_ue {
            let lo = ue_offsets[u] as usize;
            let hi = ue_offsets[u + 1] as usize;
            for (slot, &a) in ue_aps[lo..hi].iter().enumerate() {
                let at = cursor[a as usize] as usize;
                listener_ues[at] = u as u32;
                listener_slots[at] = slot as u32;
                cursor[a as usize] += 1;
            }
        }
        // Per-AP client partition (the `clients_of` CSR), same sort.
        let mut counts = vec![0u32; n_ap + 1];
        for &a in assoc {
            counts[a + 1] += 1;
        }
        for a in 1..counts.len() {
            counts[a] += counts[a - 1];
        }
        let clients_offsets = counts.clone();
        let mut cursor = counts;
        let mut clients = vec![0u32; assoc.len()];
        for (u, &a) in assoc.iter().enumerate() {
            clients[cursor[a] as usize] = u as u32;
            cursor[a] += 1;
        }
        NeighborTable {
            cull_radius_m: radius,
            max_neighbors,
            max_ap_neighbors,
            ue_offsets,
            ue_aps,
            ap_offsets,
            ap_aps,
            listener_offsets,
            listener_ues,
            listener_slots,
            clients_offsets,
            clients,
        }
    }

    /// UE `u`'s candidate AP ids, ascending (serving always present).
    #[inline]
    pub fn candidates(&self, u: usize) -> &[u32] {
        let lo = self.ue_offsets[u] as usize;
        let hi = self.ue_offsets[u + 1] as usize;
        &self.ue_aps[lo..hi]
    }

    /// AP `a`'s interferer AP ids, ascending, self excluded.
    #[inline]
    pub fn interferers(&self, a: usize) -> &[u32] {
        let lo = self.ap_offsets[a] as usize;
        let hi = self.ap_offsets[a + 1] as usize;
        &self.ap_aps[lo..hi]
    }

    /// The UEs that can hear AP `a` (i.e. carry it as a candidate),
    /// ascending, paired with the neighbor slot `a` occupies in each
    /// UE's row.
    #[inline]
    pub fn listeners(&self, a: usize) -> (&[u32], &[u32]) {
        let lo = self.listener_offsets[a] as usize;
        let hi = self.listener_offsets[a + 1] as usize;
        (&self.listener_ues[lo..hi], &self.listener_slots[lo..hi])
    }

    /// AP `a`'s attached clients, ascending.
    #[inline]
    pub fn clients(&self, a: usize) -> &[u32] {
        let lo = self.clients_offsets[a] as usize;
        let hi = self.clients_offsets[a + 1] as usize;
        &self.clients[lo..hi]
    }
}

/// A generated scenario: node placement plus the radio environment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Configuration it was drawn from.
    pub config: ScenarioConfig,
    /// Access-point terminals (node keys `0..n_aps`).
    pub aps: Vec<LinkEnd>,
    /// Client terminals (node keys `1000 + i`).
    pub ues: Vec<LinkEnd>,
    /// Client → serving AP index (the AP it was dropped around).
    pub assoc: Vec<usize>,
    /// The shared propagation environment.
    pub env: RadioEnvironment,
    /// Spatial-index neighbor tables, built at generation time. Tests
    /// that hand-edit `aps`/`ues`/`assoc` must call
    /// [`Scenario::rebuild_index`] (the engine does so defensively at
    /// construction).
    pub nbr: NeighborTable,
}

/// Node-key offset for clients (AP keys start at 0).
pub const UE_NODE_BASE: u32 = 1_000;

impl Scenario {
    /// Generate a scenario deterministically from `seeds`.
    pub fn generate(config: ScenarioConfig, seeds: SeedSeq) -> Scenario {
        let mut rng = seeds.rng("topology");
        let mut aps = Vec::with_capacity(config.n_aps);
        for i in 0..config.n_aps {
            let p = Point::new(
                rng.gen_range(0.0..config.area),
                rng.gen_range(0.0..config.area),
            );
            aps.push(LinkEnd::new(
                i as u32,
                p,
                Antenna::Isotropic { gain: Db(6.0) },
            ));
        }
        // Stream client drops straight into flat preallocated arrays —
        // no intermediate per-node collections, so peak memory at 1M
        // UEs is the final arrays themselves.
        let n_clients = config.n_aps * config.clients_per_ap;
        let mut ues = Vec::with_capacity(n_clients);
        let mut assoc = Vec::with_capacity(n_clients);
        for (ap_idx, ap) in aps.iter().enumerate() {
            for _ in 0..config.clients_per_ap {
                // Uniform over the disc (sqrt radius), clipped to the area.
                let p = loop {
                    let r = config.cell_radius * rng.gen::<f64>().sqrt();
                    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                    let p = ap.position.offset(theta, cellfi_types::units::Meters(r));
                    if p.within(config.area, config.area) {
                        break p;
                    }
                };
                ues.push(LinkEnd::new(
                    UE_NODE_BASE + ues.len() as u32,
                    p,
                    Antenna::client(),
                ));
                assoc.push(ap_idx);
            }
        }
        let env = RadioEnvironment {
            pathloss: PathLossModel::tvws_urban(),
            shadowing: if config.shadowing_sigma > 0.0 {
                Shadowing::new(seeds.child("shadow"), config.shadowing_sigma)
            } else {
                Shadowing::disabled(seeds.child("shadow"))
            },
            fading: if config.fading {
                BlockFading::pedestrian(seeds.child("fading"))
            } else {
                BlockFading::disabled(seeds.child("fading"))
            },
            noise: NoiseModel::typical(),
            frequency: Hertz(700e6),
        };
        let nbr = NeighborTable::build(&config, &aps, &ues, &assoc, &env);
        Scenario {
            config,
            aps,
            ues,
            assoc,
            env,
            nbr,
        }
    }

    /// Two cells on a line with one client between them — the Fig 7
    /// outdoor interference layout (serving cell, interfering cell, and a
    /// client walked along a path).
    pub fn two_cell_interference(separation: f64, seeds: SeedSeq) -> Scenario {
        let config = ScenarioConfig {
            area: separation + 1_000.0,
            n_aps: 2,
            clients_per_ap: 0,
            cell_radius: 500.0,
            ap_power: Dbm(23.0), // the E40's power in the testbed
            ue_power: Dbm(20.0),
            shadowing_sigma: 0.0,
            fading: false,
            cull_floor_dbm: None,
        };
        let aps = vec![
            LinkEnd::new(0, Point::new(0.0, 0.0), Antenna::paper_sector(0.0)),
            LinkEnd::new(
                1,
                Point::new(separation, 0.0),
                Antenna::paper_sector(std::f64::consts::PI),
            ),
        ];
        let env = RadioEnvironment {
            pathloss: PathLossModel::tvws_urban(),
            shadowing: Shadowing::disabled(seeds.child("shadow")),
            fading: BlockFading::disabled(seeds.child("fading")),
            noise: NoiseModel::typical(),
            frequency: Hertz(700e6),
        };
        let nbr = NeighborTable::build(&config, &aps, &[], &[], &env);
        Scenario {
            config,
            aps,
            ues: Vec::new(),
            assoc: Vec::new(),
            env,
            nbr,
        }
    }

    /// Rebuild the neighbor tables from the current placement. Call
    /// after hand-editing `aps`/`ues`/`assoc` (the engine calls this at
    /// construction, so a stale index can never reach the hot path).
    pub fn rebuild_index(&mut self) {
        self.nbr = NeighborTable::build(&self.config, &self.aps, &self.ues, &self.assoc, &self.env);
    }

    /// Total number of clients.
    pub fn n_ues(&self) -> usize {
        self.ues.len()
    }

    /// Clients of one AP: a slice into the CSR partition built at
    /// generation time (ascending UE index), replacing the old
    /// O(n_ues)-scan-per-call.
    pub fn clients_of(&self, ap: usize) -> &[u32] {
        self.nbr.clients(ap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(seed: u64) -> Scenario {
        Scenario::generate(ScenarioConfig::paper_default(6, 4), SeedSeq::new(seed))
    }

    #[test]
    fn generates_requested_counts() {
        let s = scenario(1);
        assert_eq!(s.aps.len(), 6);
        assert_eq!(s.n_ues(), 24);
        assert_eq!(s.assoc.len(), 24);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = scenario(7);
        let b = scenario(7);
        assert_eq!(a.aps[3].position, b.aps[3].position);
        assert_eq!(a.ues[10].position, b.ues[10].position);
    }

    #[test]
    fn different_seeds_differ() {
        let a = scenario(1);
        let b = scenario(2);
        assert_ne!(a.aps[0].position, b.aps[0].position);
    }

    #[test]
    fn everything_inside_area() {
        let s = scenario(3);
        for n in s.aps.iter().chain(s.ues.iter()) {
            assert!(n.position.within(2_000.0, 2_000.0), "{}", n.position);
        }
    }

    #[test]
    fn clients_within_cell_radius() {
        let s = scenario(4);
        for (u, ue) in s.ues.iter().enumerate() {
            let ap = &s.aps[s.assoc[u]];
            let d = ap.position.distance(ue.position).value();
            assert!(d <= 1_000.0 + 1e-9, "client {u} at {d} m");
        }
    }

    #[test]
    fn node_keys_unique() {
        let s = scenario(5);
        let mut keys: Vec<u32> = s.aps.iter().chain(s.ues.iter()).map(|e| e.node).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), s.aps.len() + s.ues.len());
    }

    #[test]
    fn clients_of_partitions_everyone() {
        let s = scenario(6);
        let total: usize = (0..s.aps.len()).map(|a| s.clients_of(a).len()).sum();
        assert_eq!(total, s.n_ues());
        assert_eq!(s.clients_of(0).len(), 4);
    }

    #[test]
    fn dense_tables_cover_all_pairs() {
        let s = scenario(8);
        assert!(s.nbr.cull_radius_m.is_none());
        assert_eq!(s.nbr.max_neighbors, s.aps.len());
        let all: Vec<u32> = (0..s.aps.len() as u32).collect();
        for u in 0..s.n_ues() {
            assert_eq!(s.nbr.candidates(u), &all[..]);
        }
        for a in 0..s.aps.len() {
            let others: Vec<u32> = all.iter().copied().filter(|&b| b != a as u32).collect();
            assert_eq!(s.nbr.interferers(a), &others[..]);
            let (ues, slots) = s.nbr.listeners(a);
            assert_eq!(ues.len(), s.n_ues(), "dense: every UE hears every AP");
            // Dense rows are 0..n_ap, so AP a sits at slot a everywhere.
            assert!(slots.iter().all(|&sl| sl == a as u32));
        }
    }

    #[test]
    fn culled_tables_match_brute_force_and_keep_serving() {
        let mut config = ScenarioConfig::paper_default(12, 3);
        config.cull_floor_dbm = Some(-70.0);
        let s = Scenario::generate(config, SeedSeq::new(21));
        let r = s.nbr.cull_radius_m.expect("floor set implies a radius");
        for u in 0..s.n_ues() {
            let want: Vec<u32> = (0..s.aps.len() as u32)
                .filter(|&a| {
                    a == s.assoc[u] as u32
                        || s.aps[a as usize]
                            .position
                            .distance(s.ues[u].position)
                            .value()
                            <= r
                })
                .collect();
            assert_eq!(s.nbr.candidates(u), &want[..], "ue {u}");
            assert!(s.nbr.candidates(u).contains(&(s.assoc[u] as u32)));
        }
        for a in 0..s.aps.len() {
            let want: Vec<u32> = (0..s.aps.len() as u32)
                .filter(|&b| {
                    b != a as u32
                        && s.aps[a]
                            .position
                            .distance(s.aps[b as usize].position)
                            .value()
                            <= r
                })
                .collect();
            assert_eq!(s.nbr.interferers(a), &want[..], "ap {a}");
        }
    }

    #[test]
    fn listener_lists_are_the_candidate_transpose() {
        let mut config = ScenarioConfig::paper_default(10, 4);
        config.cull_floor_dbm = Some(-75.0);
        let s = Scenario::generate(config, SeedSeq::new(33));
        for a in 0..s.aps.len() {
            let (ues, slots) = s.nbr.listeners(a);
            assert!(ues.windows(2).all(|w| w[0] < w[1]), "ascending UEs");
            for (&u, &slot) in ues.iter().zip(slots) {
                assert_eq!(s.nbr.candidates(u as usize)[slot as usize], a as u32);
            }
        }
        // Every (ue, candidate) pair appears in exactly one listener row.
        let total: usize = (0..s.aps.len()).map(|a| s.nbr.listeners(a).0.len()).sum();
        let expect: usize = (0..s.n_ues()).map(|u| s.nbr.candidates(u).len()).sum();
        assert_eq!(total, expect);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        /// Random topologies and floors: the spatial-index candidate
        /// lists equal brute-force distance filtering (plus the serving
        /// union), and the interferer sets equal the AP-to-AP filter.
        #[test]
        fn neighbor_tables_equal_brute_force(
            seed in 0u64..1_000,
            n_aps in 1usize..14,
            clients in 0usize..5,
            floor in -110.0f64..-40.0,
        ) {
            let mut config = ScenarioConfig::paper_default(n_aps, clients);
            config.cull_floor_dbm = Some(floor);
            let s = Scenario::generate(config, SeedSeq::new(seed));
            let r = s.nbr.cull_radius_m.unwrap();
            for u in 0..s.n_ues() {
                let want: Vec<u32> = (0..n_aps as u32)
                    .filter(|&a| {
                        a == s.assoc[u] as u32
                            || s.aps[a as usize].position.distance(s.ues[u].position).value()
                                <= r
                    })
                    .collect();
                proptest::prop_assert_eq!(s.nbr.candidates(u), &want[..]);
            }
            for a in 0..n_aps {
                let want: Vec<u32> = (0..n_aps as u32)
                    .filter(|&b| {
                        b != a as u32
                            && s.aps[a].position.distance(s.aps[b as usize].position).value()
                                <= r
                    })
                    .collect();
                proptest::prop_assert_eq!(s.nbr.interferers(a), &want[..]);
            }
        }
    }

    #[test]
    fn two_cell_layout_faces_antennas_inward() {
        let s = Scenario::two_cell_interference(400.0, SeedSeq::new(1));
        assert_eq!(s.aps.len(), 2);
        // Serving cell's boresight points at the interferer and vice versa.
        let mid = Point::new(200.0, 0.0);
        let g0 = s.aps[0]
            .antenna
            .gain_towards(s.aps[0].position.bearing_to(mid));
        assert!((g0.value() - 7.0).abs() < 0.1);
    }
}
