//! Measurement collection: CDFs, percentiles, coverage and starvation.
//!
//! The paper reports results almost exclusively as CDFs (Figs 1, 2, 7,
//! 9) plus the coverage-vs-density curve of Fig 9(a). This module
//! provides the small statistics toolkit those reports need, including
//! the two headline counters:
//!
//! * **connected / coverage** — the fraction of clients achieving at
//!   least a threshold throughput (Fig 9a's y-axis);
//! * **starved** — clients receiving (almost) nothing due to contention,
//!   the quantity CellFi reduces by 70–90 %.

/// An empirical CDF over f64 samples.
///
/// Order statistics ([`Cdf::quantile`], [`Cdf::median`], [`Cdf::mean`])
/// are undefined on an empty CDF and return `None` there; the `*_or`
/// companions substitute an explicit default instead, for report code
/// that would rather print 0 than crash on a sweep with no samples.
///
/// ```
/// use cellfi_sim::metrics::Cdf;
/// let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(c.median(), Some(2.5));
/// assert_eq!(c.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(Cdf::default().median_or(0.0), 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs rejected).
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        assert!(
            samples.iter().all(|v| !v.is_nan()),
            "NaN sample in CDF input"
        );
        samples.sort_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The q-quantile (0 ≤ q ≤ 1), linear interpolation; `None` on an
    /// empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile range is 0..=1: {q}");
        let n = self.sorted.len();
        if n == 0 {
            return None;
        }
        if n == 1 {
            return Some(self.sorted[0]);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// The q-quantile, or `default` on an empty CDF.
    pub fn quantile_or(&self, q: f64, default: f64) -> f64 {
        self.quantile(q).unwrap_or(default)
    }

    /// Median; `None` on an empty CDF.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Median, or `default` on an empty CDF.
    pub fn median_or(&self, default: f64) -> f64 {
        self.median().unwrap_or(default)
    }

    /// Mean; `None` on an empty CDF.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
    }

    /// Mean, or `default` on an empty CDF.
    pub fn mean_or(&self, default: f64) -> f64 {
        self.mean().unwrap_or(default)
    }

    /// Fraction of samples at or below `x`: `F(x)`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len().max(1) as f64
    }

    /// Fraction of samples at or above `x`.
    pub fn fraction_at_or_above(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v < x);
        (self.sorted.len() - idx) as f64 / self.sorted.len().max(1) as f64
    }

    /// Evenly spaced (x, F(x)) points for plotting.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2 && !self.is_empty());
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }

    /// Raw sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Coverage: the fraction of `throughputs` (bps) at or above
/// `threshold_bps` — Fig 9(a)'s "fraction of connected users".
pub fn coverage_fraction(throughputs: &[f64], threshold_bps: f64) -> f64 {
    if throughputs.is_empty() {
        return 0.0;
    }
    throughputs.iter().filter(|&&t| t >= threshold_bps).count() as f64 / throughputs.len() as f64
}

/// Starved clients: fraction receiving less than `threshold_bps`.
pub fn starved_fraction(throughputs: &[f64], threshold_bps: f64) -> f64 {
    1.0 - coverage_fraction(throughputs, threshold_bps)
}

/// Jain's fairness index over non-negative allocations.
pub fn jain_fairness(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let sum: f64 = values.iter().sum();
    let sq_sum: f64 = values.iter().map(|v| v * v).sum();
    if sq_sum == 0.0 {
        return 1.0; // all-zero: trivially "fair"
    }
    sum * sum / (values.len() as f64 * sq_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_data() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.median(), Some(3.0));
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(1.0), Some(5.0));
        assert_eq!(c.quantile(0.25), Some(2.0));
        assert_eq!(c.mean(), Some(3.0));
    }

    #[test]
    fn quantile_interpolates() {
        let c = Cdf::new(vec![0.0, 10.0]);
        assert_eq!(c.quantile(0.3), Some(3.0));
    }

    #[test]
    fn unsorted_input_handled() {
        let c = Cdf::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(c.samples(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn fractions_at_thresholds() {
        let c = Cdf::new(vec![0.0, 0.0, 1.0, 2.0]);
        assert_eq!(c.fraction_at_or_below(0.0), 0.5);
        assert_eq!(c.fraction_at_or_below(2.0), 1.0);
        assert_eq!(c.fraction_at_or_above(1.0), 0.5);
        assert_eq!(c.fraction_at_or_above(3.0), 0.0);
    }

    #[test]
    fn points_span_the_range() {
        let c = Cdf::new(vec![0.0, 1.0, 2.0, 3.0]);
        let pts = c.points(4);
        assert_eq!(pts.first().unwrap().0, 0.0);
        assert_eq!(pts.last().unwrap().0, 3.0);
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn coverage_and_starvation_complement() {
        let t = vec![0.0, 0.5e6, 1.5e6, 2.0e6];
        assert_eq!(coverage_fraction(&t, 1e6), 0.5);
        assert_eq!(starved_fraction(&t, 1e6), 0.5);
        assert_eq!(coverage_fraction(&[], 1e6), 0.0);
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_fairness(&[5.0, 5.0, 5.0]), 1.0);
        let unfair = jain_fairness(&[10.0, 0.0, 0.0]);
        assert!((unfair - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Quantiles are monotone and bounded by the sample range.
            #[test]
            fn quantiles_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
                let c = Cdf::new(xs.clone());
                xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mut last = f64::NEG_INFINITY;
                for i in 0..=10 {
                    let q = c.quantile(f64::from(i) / 10.0).expect("non-empty by construction");
                    prop_assert!(q >= last - 1e-9);
                    prop_assert!(q >= xs[0] - 1e-9 && q <= xs[xs.len() - 1] + 1e-9);
                    last = q;
                }
            }

            /// F is a valid CDF: monotone from 0 to 1, and F(max) = 1.
            #[test]
            fn fraction_is_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..60)) {
                let c = Cdf::new(xs.clone());
                let lo = c.quantile(0.0).expect("non-empty by construction");
                let hi = c.quantile(1.0).expect("non-empty by construction");
                let mut last = 0.0;
                for i in 0..=20 {
                    let x = lo + (hi - lo) * f64::from(i) / 20.0;
                    let f = c.fraction_at_or_below(x);
                    prop_assert!((0.0..=1.0).contains(&f));
                    prop_assert!(f >= last - 1e-12);
                    last = f;
                }
                prop_assert_eq!(c.fraction_at_or_below(hi), 1.0);
            }

            /// Coverage + starvation = 1 for any threshold.
            #[test]
            fn coverage_starvation_partition(
                xs in proptest::collection::vec(0.0f64..1e7, 1..80),
                thr in 0.0f64..1e7,
            ) {
                let c = coverage_fraction(&xs, thr);
                let s = starved_fraction(&xs, thr);
                prop_assert!((c + s - 1.0).abs() < 1e-12);
            }

            /// Jain's index lies in [1/n, 1].
            #[test]
            fn jain_bounded(xs in proptest::collection::vec(0.0f64..1e6, 1..50)) {
                let j = jain_fairness(&xs);
                prop_assert!(j <= 1.0 + 1e-12);
                prop_assert!(j >= 1.0 / xs.len() as f64 - 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn empty_cdf_yields_none_and_defaults() {
        let c = Cdf::new(vec![]);
        assert_eq!(c.median(), None);
        assert_eq!(c.quantile(0.9), None);
        assert_eq!(c.mean(), None);
        assert_eq!(c.median_or(-1.0), -1.0);
        assert_eq!(c.quantile_or(0.9, 0.0), 0.0);
        assert_eq!(c.mean_or(2.5), 2.5);
    }
}
