//! Plain-text rendering of experiment output.
//!
//! Every experiment driver produces both a machine-readable value
//! (serialized as JSON by the `exp` binary with `--json`) and a
//! human-readable report built from these helpers: fixed-width tables
//! and ASCII CDF plots shaped like the paper's figures.

use crate::metrics::Cdf;
use std::fmt::Write as _;

/// Render a fixed-width table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n = headers.len();
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.len(), n, "row {i} width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (c, cell) in r.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (c, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {:w$} ", h, w = widths[c]);
    }
    out.push_str("|\n");
    sep(&mut out);
    for r in rows {
        for (c, cell) in r.iter().enumerate() {
            let _ = write!(out, "| {:w$} ", cell, w = widths[c]);
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Render one or more CDFs as an ASCII plot (y: 0..1, x: value range),
/// each series drawn with its own glyph.
pub fn cdf_plot(title: &str, x_label: &str, series: &[(&str, &Cdf)], width: usize) -> String {
    assert!(!series.is_empty() && width >= 20);
    let height = 12usize;
    let lo = series
        .iter()
        .map(|(_, c)| c.samples().first().copied().unwrap_or(0.0))
        .fold(f64::INFINITY, f64::min);
    let hi = series
        .iter()
        .map(|(_, c)| c.samples().last().copied().unwrap_or(0.0))
        .fold(f64::NEG_INFINITY, f64::max);
    let hi = if (hi - lo).abs() < 1e-12 {
        lo + 1.0
    } else {
        hi
    };
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];
    let mut canvas = vec![vec![' '; width]; height];
    for (si, (_, cdf)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        let xs = (0..width).map(|c| lo + (hi - lo) * c as f64 / (width - 1) as f64);
        for (col, x) in xs.enumerate() {
            let f = cdf.fraction_at_or_below(x);
            let row = ((1.0 - f) * (height - 1) as f64).round() as usize;
            canvas[row.min(height - 1)][col] = g;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (r, line) in canvas.iter().enumerate() {
        let y = 1.0 - r as f64 / (height - 1) as f64;
        let _ = writeln!(out, "{y:4.2} |{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "     +{}", "-".repeat(width));
    let _ = writeln!(out, "      {lo:<12.3}{:>w$.3}", hi, w = width - 12);
    let _ = writeln!(out, "      x: {x_label}");
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "      {} {name}", glyphs[si % glyphs.len()]);
    }
    out
}

/// Format bits/sec human-readably.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e6 {
        format!("{:.2} Mbps", bps / 1e6)
    } else if bps >= 1e3 {
        format!("{:.1} kbps", bps / 1e3)
    } else {
        format!("{bps:.0} bps")
    }
}

/// Format a fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["coverage".into(), "87.5%".into()],
                vec!["x".into(), "1".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[1].contains("| name"));
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_rejected() {
        let _ = table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn cdf_plot_contains_series_markers() {
        let c1 = Cdf::new(vec![1.0, 2.0, 3.0]);
        let c2 = Cdf::new(vec![2.0, 3.0, 4.0]);
        let p = cdf_plot("test", "Mbps", &[("a", &c1), ("b", &c2)], 40);
        assert!(p.contains('*') && p.contains('o'));
        assert!(p.contains("x: Mbps"));
        assert!(p.contains("* a") && p.contains("o b"));
    }

    #[test]
    fn cdf_plot_handles_degenerate_range() {
        let c = Cdf::new(vec![5.0, 5.0]);
        let p = cdf_plot("flat", "v", &[("s", &c)], 30);
        assert!(p.contains("flat"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bps(2_300_000.0), "2.30 Mbps");
        assert_eq!(fmt_bps(52_100.0), "52.1 kbps");
        assert_eq!(fmt_bps(12.0), "12 bps");
        assert_eq!(fmt_pct(0.375), "37.5%");
    }
}
