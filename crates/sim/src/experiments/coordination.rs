//! Coordination cost: CellFi vs explicit X2/ICIC vs the oracle.
//!
//! "Conventional LTE access points can coordinate among themselves,
//! using standard protocols (e.g. X2) ... This however requires explicit
//! communication and coordination among access points. In CellFi,
//! coordination is hard to enforce because multiple cellular providers
//! are sharing the spectrum" (§4.3). §7 adds that a hybrid — centralized
//! within one provider, distributed across providers — "could further
//! improve performance".
//!
//! This driver quantifies the trade: how close does CellFi's zero-
//! message passive sensing get to explicit X2 coordination and to the
//! omniscient oracle, and what does X2 cost in messages?

use super::harness::{self, Sweep};
use super::{ExpConfig, ExpReport};
use crate::engine::{ImMode, LteEngineConfig};
use crate::metrics::starved_fraction;
use crate::report::{fmt_bps, fmt_pct, table};
use cellfi_types::time::{Duration, Instant};

/// Outcome of one mode.
#[derive(Debug, Clone)]
pub struct ModeOutcome {
    /// Mode name.
    pub name: &'static str,
    /// Pooled steady-state client throughputs (bps).
    pub tputs: Vec<f64>,
    /// X2 messages per AP per second (0 for the distributed modes).
    pub x2_rate: f64,
}

/// Run the three coordination flavours over the Fig 9 topologies.
pub fn run_matrix(config: ExpConfig) -> Vec<ModeOutcome> {
    let (n_aps, topos, warmup_s, horizon_s) = if config.quick {
        (8, 1, 12u64, 24u64)
    } else {
        (12, 5, 20u64, 35u64)
    };
    let modes: [(&str, ImMode); 3] = [
        ("CellFi (no messages)", ImMode::CellFi),
        ("X2 / ICIC (explicit)", ImMode::X2Icic),
        ("Oracle (omniscient)", ImMode::Oracle),
    ];
    let sweep = Sweep::new("coordination", config.seed, n_aps, 6, topos);
    modes
        .iter()
        .map(|&(name, mode)| {
            let per_topo = sweep.map(|_, scenario, seeds| {
                harness::lte_steady_state_with(
                    scenario,
                    LteEngineConfig::paper_default(mode),
                    seeds.child(name),
                    Duration::from_secs(warmup_s),
                    Instant::from_secs(horizon_s),
                )
            });
            let mut tputs = Vec::new();
            let mut msgs = 0u64;
            for (t, e) in per_topo {
                tputs.extend(t);
                msgs += e.x2_messages;
            }
            ModeOutcome {
                name,
                tputs,
                x2_rate: msgs as f64 / (topos * n_aps) as f64 / horizon_s as f64,
            }
        })
        .collect()
}

/// Run the coordination comparison.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("coordination");
    let outcomes = run_matrix(config);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.name.to_string(),
                fmt_bps(harness::median_bps(&o.tputs)),
                fmt_pct(starved_fraction(&o.tputs, 1_000.0)),
                format!("{:.1}", o.x2_rate),
            ]
        })
        .collect();
    rep.text = table(&["system", "median tput", "starved", "X2 msgs/AP/s"], &rows);
    let median = |i: usize| harness::median_bps(&outcomes[i].tputs);
    rep.text.push_str(&format!(
        "\nCellFi reaches {:.0}% of explicit X2 coordination's median and {:.0}% of \
         the oracle's, with zero inter-operator messages — the §6.3.4 claim \
         that the distributed control plane is \"comparable to the \
         state-of-art centralized control plane\".\n",
        median(0) / median(1).max(1.0) * 100.0,
        median(0) / median(2).max(1.0) * 100.0,
    ));
    rep.record("median_cellfi", median(0));
    rep.record("median_x2", median(1));
    rep.record("median_oracle", median(2));
    rep.record("x2_msgs_per_ap_s", outcomes[1].x2_rate);
    rep.record("cellfi_vs_x2", median(0) / median(1).max(1.0));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "multi-system sweep; run with --ignored or the exp binary"]
    fn cellfi_within_reach_of_explicit_coordination() {
        let r = run(ExpConfig {
            seed: 13,
            quick: true,
        });
        assert!(
            r.values["cellfi_vs_x2"] > 0.5,
            "CellFi should be comparable to X2, got {:.2}",
            r.values["cellfi_vs_x2"]
        );
        assert!(r.values["x2_msgs_per_ap_s"] > 0.0, "X2 must cost messages");
    }
}
