//! Ablations of CellFi's design choices.
//!
//! The paper fixes three knobs with one-line justifications; this driver
//! measures what each is worth on the Fig 9 topology:
//!
//! * **λ = 10** — "we found λ = 10 to be a good choice experimentally"
//!   (§5.3). Small λ hops eagerly (fast convergence, more churn); large
//!   λ tolerates interference too long.
//! * **channel re-use packing** — claimed "upto 2x gain in throughput
//!   for exposed clients" (§5.3); we run with it disabled.
//! * **imperfect sensing** — the measured 80 % detection / 2 % false
//!   positives (§6.3.2) versus a perfect detector: how much performance
//!   does real sensing cost?

use super::harness::{self, Sweep};
use super::{ExpConfig, ExpReport};
use crate::engine::{ImMode, LteEngineConfig};
use crate::metrics::starved_fraction;
use crate::report::table;
use cellfi_core::manager::ManagerConfig;
use cellfi_core::sensing::ImperfectSensing;
use cellfi_types::time::{Duration, Instant};

/// One ablation variant.
#[derive(Debug, Clone, Copy)]
pub struct Variant {
    /// Display name.
    pub name: &'static str,
    /// Bucket mean λ.
    pub lambda: f64,
    /// Re-use packing enabled.
    pub reuse: bool,
    /// Sensing model.
    pub sensing: ImperfectSensing,
}

/// The variant matrix.
pub fn variants() -> Vec<Variant> {
    vec![
        Variant {
            name: "paper default (λ=10, reuse, 80%/2% sensing)",
            lambda: 10.0,
            reuse: true,
            sensing: ImperfectSensing::default(),
        },
        Variant {
            name: "λ=2 (eager hopping)",
            lambda: 2.0,
            reuse: true,
            sensing: ImperfectSensing::default(),
        },
        Variant {
            name: "λ=30 (patient hopping)",
            lambda: 30.0,
            reuse: true,
            sensing: ImperfectSensing::default(),
        },
        Variant {
            name: "no channel re-use packing",
            lambda: 10.0,
            reuse: false,
            sensing: ImperfectSensing::default(),
        },
        Variant {
            name: "perfect sensing",
            lambda: 10.0,
            reuse: true,
            sensing: ImperfectSensing::perfect(),
        },
    ]
}

/// Measured outcome of one variant.
#[derive(Debug, Clone)]
pub struct VariantOutcome {
    /// The variant.
    pub name: &'static str,
    /// Median steady-state client throughput (bps).
    pub median_bps: f64,
    /// Fraction of clients below 10 kbps.
    pub starved: f64,
    /// Total hops per AP per minute (churn).
    pub hops_per_ap_min: f64,
}

/// Run the ablation matrix.
pub fn run_matrix(config: ExpConfig) -> Vec<VariantOutcome> {
    let (n_aps, topos, warmup_s, horizon_s) = if config.quick {
        (6, 1, 3u64, 8u64)
    } else {
        (10, 5, 20u64, 35u64)
    };
    // Every (variant, topology) cell is an independent engine run —
    // the same topology seed is reused across variants on purpose, so
    // variants differ only in the knob under test. Flatten the matrix
    // into one fan-out for load balance, then reduce per variant in
    // fixed order.
    let vs = variants();
    let sweep = Sweep::new("ablation", config.seed, n_aps, 6, topos);
    let cells = crate::parallel::map_indexed(vs.len() * topos, |i| {
        let v = &vs[i / topos];
        let t = i % topos;
        let seeds = sweep.topo_seeds(t);
        let scenario = sweep.scenario(seeds);
        let mut cfg = LteEngineConfig::paper_default(ImMode::CellFi);
        cfg.manager = ManagerConfig {
            lambda: v.lambda,
            enable_reuse: v.reuse,
            ..ManagerConfig::default()
        };
        cfg.sensing = v.sensing;
        let (tputs, e) = harness::lte_steady_state_with(
            &scenario,
            cfg,
            seeds.child("engine"),
            Duration::from_secs(warmup_s),
            Instant::from_secs(horizon_s),
        );
        (tputs, e.manager_hops().iter().sum::<u64>())
    });
    vs.iter()
        .zip(cells.chunks(topos))
        .map(|(v, topo_cells)| {
            let mut tputs = Vec::new();
            let mut hops = 0u64;
            for (t, h) in topo_cells {
                tputs.extend(t.iter().copied());
                hops += h;
            }
            let ap_count = n_aps * topos;
            VariantOutcome {
                name: v.name,
                median_bps: harness::median_bps(&tputs),
                starved: starved_fraction(&tputs, 10_000.0),
                hops_per_ap_min: hops as f64 / ap_count as f64 / (horizon_s as f64 / 60.0),
            }
        })
        .collect()
}

/// Run the ablation experiment.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("ablation");
    let outcomes = run_matrix(config);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.name.to_string(),
                format!("{:.0} kbps", o.median_bps / 1e3),
                format!("{:.1}%", o.starved * 100.0),
                format!("{:.1}", o.hops_per_ap_min),
            ]
        })
        .collect();
    rep.text = table(&["variant", "median tput", "starved", "hops/AP/min"], &rows);
    for o in &outcomes {
        let key: String = o
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        rep.record(&format!("median_{key}"), o.median_bps);
        rep.record(&format!("starved_{key}"), o.starved);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "multi-variant sweep; run with --ignored or the exp binary"]
    fn ablation_matrix_runs_and_default_is_sane() {
        let outcomes = run_matrix(ExpConfig {
            seed: 5,
            quick: true,
        });
        assert_eq!(outcomes.len(), 5);
        let default = &outcomes[0];
        assert!(default.median_bps > 0.0);
        // Eager hopping churns more than the default.
        let eager = outcomes.iter().find(|o| o.name.contains("λ=2")).unwrap();
        assert!(
            eager.hops_per_ap_min >= default.hops_per_ap_min,
            "λ=2 should hop at least as much as λ=10: {} vs {}",
            eager.hops_per_ap_min,
            default.hops_per_ap_min
        );
    }
}
