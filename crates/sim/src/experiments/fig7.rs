//! Figure 7: the outdoor two-cell interference experiment (§6.3.1).
//!
//! Two small cells on a rooftop; a client walks a path with SINR from
//! −15 to +30 dB. Three conditions: serving cell alone, interferer idle
//! (control signalling only), interferer fully backlogged. The paper's
//! findings, which calibrate the large-scale model:
//!
//! * (b) signalling-only interference costs ≤ 20 % goodput, usually less;
//! * (c) at SINR < 10 dB, full data interference halves goodput and
//!   causes disconnections.
//!
//! Goodput is reported like the paper's: bits per symbol =
//! code rate × (1 − BLER). The idle interferer is modelled physically:
//! its always-on control elements (CRS/PSS/SSS) occupy
//! [`IDLE_CELL_ACTIVITY`] of resource elements, so that fraction of the
//! victim's symbols sees full interference power — the ≤ 20 % ceiling
//! *emerges* rather than being assumed.

use super::{ExpConfig, ExpReport};
use crate::metrics::Cdf;
use crate::report::{cdf_plot, table};
use crate::topology::Scenario;
use cellfi_lte::amc::CqiTable;
use cellfi_lte::control::IDLE_CELL_ACTIVITY;
use cellfi_propagation::link::LinkEnd;
use cellfi_types::geo::Point;
use cellfi_types::rng::SeedSeq;
use cellfi_types::units::{sum_power, Db, Dbm};

/// One measurement point on the walk path.
#[derive(Debug, Clone, Copy)]
pub struct PathPoint {
    /// RSSI from the serving cell (dBm).
    pub rssi: Dbm,
    /// SINR towards the interferer (dB).
    pub sinr: Db,
    /// Goodput (bit/symbol) with no interference.
    pub clean: f64,
    /// Goodput with signalling-only interference.
    pub signalling: f64,
    /// Goodput with full data interference (None = disconnected).
    pub full: Option<f64>,
}

/// Goodput in bit/symbol (code rate × (1 − BLER)) when link-adapting to
/// `adapt_sinr` but experiencing `actual_sinr`.
fn goodput(table: &CqiTable, adapt_sinr: Db, actual_sinr: Db) -> f64 {
    let cqi = table.cqi_for_sinr(adapt_sinr);
    if !cqi.usable() {
        return 0.0;
    }
    table.code_rate(cqi) * (1.0 - table.bler(cqi, actual_sinr))
}

/// Walk the path and measure the three conditions.
pub fn walk(config: ExpConfig) -> Vec<PathPoint> {
    let seeds = SeedSeq::new(config.seed).child("fig7");
    let scenario = Scenario::two_cell_interference(15.0, seeds);
    let serving = scenario.aps[0];
    let interferer = scenario.aps[1];
    let table = CqiTable;
    let env = &scenario.env;
    let bw = cellfi_types::units::Hertz::from_mhz(5.0);
    let noise = env.noise.floor(bw);
    let step = if config.quick { 20 } else { 4 };
    // The path starts in front of the serving antenna and curls around
    // behind it towards the interferer's boresight, sweeping SINR from
    // strongly positive to strongly negative, as in Fig 7(a).
    let mut points = Vec::new();
    let mut d = 20.0;
    while d <= 260.0 {
        for angle_deg in [0.0f64, 60.0, 120.0, 180.0] {
            let p = Point::new(
                d * angle_deg.to_radians().cos(),
                d * angle_deg.to_radians().sin(),
            );
            let ue = LinkEnd::new(
                5_000 + points.len() as u32,
                p,
                cellfi_propagation::antenna::Antenna::client(),
            );
            let s = env.mean_rx_power(&serving, Dbm(23.0), &ue);
            let i = env.mean_rx_power(&interferer, Dbm(23.0), &ue);
            let sinr = Db(s.value() - sum_power(&[i, noise]).value());
            let snr = s - noise;
            // Clean: adapt to and experience the clean SNR.
            let clean = goodput(&table, snr, snr);
            // Signalling-only: control REs of the idle neighbour hit
            // IDLE_CELL_ACTIVITY of symbols at full power.
            let signalling = (1.0 - IDLE_CELL_ACTIVITY) * clean
                + IDLE_CELL_ACTIVITY * goodput(&table, snr, sinr);
            // Full: every symbol interfered; the radio adapts to the
            // interfered quality. Below the disconnect threshold the
            // paper observed session loss.
            let full = if cellfi_lte::control::data_interference_disconnects(sinr) {
                None
            } else {
                Some(goodput(&table, sinr, sinr))
            };
            points.push(PathPoint {
                rssi: s,
                sinr,
                clean,
                signalling,
                full,
            });
        }
        d += f64::from(step);
    }
    points
}

/// Fig 7(b): goodput vs RSSI, clean vs signalling interference.
pub fn run_b(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig7b");
    let points = walk(config);
    let mut rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.rssi.value()),
                format!("{:.1}", p.sinr.value()),
                format!("{:.3}", p.clean),
                format!("{:.3}", p.signalling),
            ]
        })
        .collect();
    rows.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap_or(std::cmp::Ordering::Equal));
    rep.text = table(
        &[
            "RSSI (dBm)",
            "SINR (dB)",
            "clean (b/sym)",
            "signalling (b/sym)",
        ],
        &rows,
    );
    // Worst-case relative loss from signalling interference.
    let worst_loss = points
        .iter()
        .filter(|p| p.clean > 0.0)
        .map(|p| 1.0 - p.signalling / p.clean)
        .fold(0.0, f64::max);
    rep.text.push_str(&format!(
        "\nWorst-case signalling-interference loss: {:.0}% (paper: at most 20%, usually less).\n",
        worst_loss * 100.0
    ));
    rep.record("worst_signalling_loss", worst_loss);
    rep
}

/// Fig 7(c): goodput CDFs at SINR < 10 dB, signalling vs full.
pub fn run_c(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig7c");
    let points = walk(config);
    let low: Vec<&PathPoint> = points.iter().filter(|p| p.sinr.value() < 10.0).collect();
    let signalling = Cdf::new(low.iter().map(|p| p.signalling).collect());
    let full = Cdf::new(low.iter().map(|p| p.full.unwrap_or(0.0)).collect());
    rep.text = cdf_plot(
        "Fig 7(c): goodput CDF at SINR < 10 dB",
        "goodput (bit/symbol)",
        &[
            ("full interference", &full),
            ("signalling only", &signalling),
        ],
        60,
    );
    let disconnects =
        low.iter().filter(|p| p.full.is_none()).count() as f64 / low.len().max(1) as f64;
    // The paper reports the throughput reduction ("as much as 50%") and
    // the disconnections separately, so the loss statistic is over the
    // points that stay connected.
    let connected: Vec<&&PathPoint> = low.iter().filter(|p| p.full.is_some()).collect();
    let losses: Vec<f64> = connected
        .iter()
        .map(|p| 1.0 - p.full.expect("connected filter implies Some") / p.signalling.max(1e-9))
        .collect();
    let loss_cdf = Cdf::new(losses);
    rep.text.push_str(&format!(
        "\nGoodput loss from data interference among connected points \
         (SINR < 10 dB): median {:.0}%, worst {:.0}% (paper: up to 50%); \
         disconnected fraction: {:.0}% (paper: frequent disconnects at one \
         end of the path).\n",
        loss_cdf.median_or(0.0) * 100.0,
        loss_cdf.quantile_or(1.0, 0.0) * 100.0,
        disconnects * 100.0
    ));
    rep.record("median_data_interference_loss", loss_cdf.median_or(0.0));
    rep.record("max_data_interference_loss", loss_cdf.quantile_or(1.0, 0.0));
    rep.record("disconnect_fraction", disconnects);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpConfig {
        ExpConfig {
            seed: 3,
            quick: true,
        }
    }

    #[test]
    fn path_sweeps_wide_sinr_range() {
        let pts = walk(quick());
        let min = pts
            .iter()
            .map(|p| p.sinr.value())
            .fold(f64::INFINITY, f64::min);
        let max = pts
            .iter()
            .map(|p| p.sinr.value())
            .fold(f64::NEG_INFINITY, f64::max);
        // The paper measured −15..+30 dB; our sector model's rear
        // attenuation (27 dB) plus the noise floor cap the sweep slightly
        // tighter, but it still spans both interference-dominated and
        // clean regimes.
        assert!(min < -10.0, "min SINR {min}");
        assert!(max > 20.0, "max SINR {max}");
    }

    #[test]
    fn signalling_loss_bounded_at_twenty_percent() {
        let r = run_b(quick());
        let loss = r.values["worst_signalling_loss"];
        assert!(loss <= 0.22, "signalling loss {loss}");
        assert!(loss > 0.02, "no signalling effect at all: {loss}");
    }

    #[test]
    fn data_interference_much_worse_than_signalling() {
        let r = run_c(quick());
        assert!(
            r.values["median_data_interference_loss"] > 0.3,
            "loss {}",
            r.values["median_data_interference_loss"]
        );
        assert!(r.values["disconnect_fraction"] > 0.05);
    }

    #[test]
    fn clean_goodput_monotone_in_snr_regionally() {
        let table = CqiTable;
        let lo = goodput(&table, Db(-5.0), Db(-5.0));
        let hi = goodput(&table, Db(20.0), Db(20.0));
        assert!(hi > lo);
        // Adaptation mismatch punishes: adapting high on a low channel.
        assert!(goodput(&table, Db(20.0), Db(0.0)) < 0.05);
    }
}
