//! Figure 9: the large-scale evaluation (§6.3.4).
//!
//! * (a) coverage (fraction of connected users) vs density for CellFi,
//!   plain LTE and 802.11af — CellFi wins (+37 % over Wi-Fi, +16 % over
//!   LTE at 14 APs × 6 clients in the paper);
//! * (b) client-throughput CDF at the densest point, with the oracle:
//!   Wi-Fi/LTE starve 30–40 % of clients, CellFi cuts starvation by
//!   ~70 % and tracks the oracle;
//! * (c) web page-load-time CDF: CellFi 2.3× better than Wi-Fi at the
//!   median, ~8 % better than LTE, which has a bad interference tail.

use super::harness;
use super::{ExpConfig, ExpReport};
use crate::engine::{ImMode, LteEngine, LteEngineConfig, SimHarness};
use crate::metrics::{coverage_fraction, starved_fraction, Cdf};
use crate::report::{cdf_plot, fmt_pct, table};
use crate::topology::{Scenario, ScenarioConfig};
use crate::wifi_engine::WifiEngine;
use crate::workload::{WebWorkload, WebWorkloadConfig};
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};
use cellfi_wifi::sim::WifiConfig;

pub use harness::SystemsRun;

/// "Connected" threshold. The paper's starved clients are the ones at
/// the *zero* bin of Fig 9(b) — clients contention shuts out entirely —
/// so connectivity means receiving service at all; 1 kbps over a
/// measurement window separates "served (slowly)" from "shut out". (With
/// 84 backlogged clients on one 5 MHz channel — a 3G macro carries 32 —
/// even a fair share is only a few hundred kbps.)
pub const CONNECT_THRESHOLD_BPS: f64 = 1_000.0;

/// Run all systems over `n_topologies` seeds at one density — the
/// shared paired comparison, under fig9's seed lineage.
pub fn run_systems(
    n_aps: usize,
    clients_per_ap: usize,
    n_topologies: usize,
    warmup: Duration,
    horizon: Instant,
    with_oracle: bool,
    master_seed: u64,
) -> SystemsRun {
    harness::paired_systems(
        "fig9",
        n_aps,
        clients_per_ap,
        n_topologies,
        warmup,
        horizon,
        with_oracle,
        master_seed,
    )
}

/// Fig 9(a): coverage vs density.
pub fn run_a(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig9a");
    let (densities, topos, warmup, horizon): (&[usize], usize, Duration, Instant) = if config.quick
    {
        (&[6, 10], 1, Duration::from_secs(3), Instant::from_secs(7))
    } else {
        (
            &[6, 8, 10, 12, 14],
            8,
            Duration::from_secs(20),
            Instant::from_secs(30),
        )
    };
    let mut rows = Vec::new();
    let mut last = None;
    for &n_aps in densities {
        let run = run_systems(n_aps, 6, topos, warmup, horizon, false, config.seed);
        let w = coverage_fraction(&run.wifi, CONNECT_THRESHOLD_BPS);
        let l = coverage_fraction(&run.lte, CONNECT_THRESHOLD_BPS);
        let c = coverage_fraction(&run.cellfi, CONNECT_THRESHOLD_BPS);
        rows.push(vec![n_aps.to_string(), fmt_pct(w), fmt_pct(l), fmt_pct(c)]);
        last = Some((w, l, c));
    }
    rep.text = table(&["APs", "802.11af", "LTE", "CellFi"], &rows);
    let (w, l, c) = last.expect("at least one density");
    rep.text.push_str(&format!(
        "\nAt the densest point: CellFi {} vs LTE {} vs 802.11af {} — gains of \
         {:+.0}% over Wi-Fi and {:+.0}% over LTE (paper at 14 APs: +37% / +16%).\n",
        fmt_pct(c),
        fmt_pct(l),
        fmt_pct(w),
        (c / w.max(1e-9) - 1.0) * 100.0,
        (c / l.max(1e-9) - 1.0) * 100.0,
    ));
    rep.record("coverage_wifi_densest", w);
    rep.record("coverage_lte_densest", l);
    rep.record("coverage_cellfi_densest", c);
    rep.record("gain_over_wifi", c / w.max(1e-9) - 1.0);
    rep.record("gain_over_lte", c / l.max(1e-9) - 1.0);
    rep
}

/// Fig 9(b): client-throughput CDF at the densest point, with the oracle.
pub fn run_b(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig9b");
    let (n_aps, topos, warmup, horizon) = if config.quick {
        (6, 1, Duration::from_secs(3), Instant::from_secs(7))
    } else {
        (14, 8, Duration::from_secs(20), Instant::from_secs(30))
    };
    let run = run_systems(n_aps, 6, topos, warmup, horizon, true, config.seed);
    let to_mbps = |v: &[f64]| Cdf::new(v.iter().map(|t| t / 1e6).collect());
    let wifi = to_mbps(&run.wifi);
    let lte = to_mbps(&run.lte);
    let cellfi = to_mbps(&run.cellfi);
    let oracle = to_mbps(&run.oracle);
    rep.text = cdf_plot(
        "Fig 9(b): client throughput CDF (densest scenario)",
        "client throughput (Mbps)",
        &[
            ("802.11af", &wifi),
            ("LTE", &lte),
            ("CellFi", &cellfi),
            ("Oracle", &oracle),
        ],
        60,
    );
    let starv = |v: &[f64]| starved_fraction(v, CONNECT_THRESHOLD_BPS);
    let sw = starv(&run.wifi);
    let sl = starv(&run.lte);
    let sc = starv(&run.cellfi);
    let so = starv(&run.oracle);
    rep.text.push_str(&format!(
        "\nStarved clients: Wi-Fi {}, LTE {}, CellFi {}, Oracle {} — CellFi cuts \
         starvation by {:.0}% vs Wi-Fi and {:.0}% vs LTE (paper: 70–90%).\n\
         Median throughput: CellFi {:.2} Mbps vs Wi-Fi {:.2} Mbps.\n",
        fmt_pct(sw),
        fmt_pct(sl),
        fmt_pct(sc),
        fmt_pct(so),
        (1.0 - sc / sw.max(1e-9)) * 100.0,
        (1.0 - sc / sl.max(1e-9)) * 100.0,
        cellfi.median_or(0.0),
        wifi.median_or(0.0),
    ));
    rep.record("starved_wifi", sw);
    rep.record("starved_lte", sl);
    rep.record("starved_cellfi", sc);
    rep.record("starved_oracle", so);
    rep.record("starvation_cut_vs_wifi", 1.0 - sc / sw.max(1e-9));
    rep.record("starvation_cut_vs_lte", 1.0 - sc / sl.max(1e-9));
    rep.record("median_cellfi_mbps", cellfi.median_or(0.0));
    rep.record("median_oracle_mbps", oracle.median_or(0.0));
    rep
}

/// The "even denser scenario with 16 clients" of §6.3.4 (its figure was
/// cut for space): "CellFi still offers coverage to more than 80% of
/// users, an increase of 32% and 8% compared to Wi-Fi and LTE."
pub fn run_dense(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig9dense");
    let (n_aps, clients, topos, warmup, horizon) = if config.quick {
        (6, 8, 1, Duration::from_secs(3), Instant::from_secs(7))
    } else {
        (14, 16, 4, Duration::from_secs(20), Instant::from_secs(30))
    };
    let run = run_systems(n_aps, clients, topos, warmup, horizon, false, config.seed);
    let w = coverage_fraction(&run.wifi, CONNECT_THRESHOLD_BPS);
    let l = coverage_fraction(&run.lte, CONNECT_THRESHOLD_BPS);
    let c = coverage_fraction(&run.cellfi, CONNECT_THRESHOLD_BPS);
    rep.text = table(
        &["system", "coverage"],
        &[
            vec!["802.11af".into(), fmt_pct(w)],
            vec!["LTE".into(), fmt_pct(l)],
            vec!["CellFi".into(), fmt_pct(c)],
        ],
    );
    rep.text.push_str(&format!(
        "
{} clients on one 5 MHz channel: CellFi {} (paper: > 80%), gains of          {:+.0}% over Wi-Fi and {:+.0}% over LTE (paper: +32% / +8%).
",
        n_aps * clients,
        fmt_pct(c),
        (c / w.max(1e-9) - 1.0) * 100.0,
        (c / l.max(1e-9) - 1.0) * 100.0,
    ));
    rep.record("coverage_wifi", w);
    rep.record("coverage_lte", l);
    rep.record("coverage_cellfi", c);
    rep
}

/// One web-workload run on the LTE engine; returns page load times (s).
///
/// Deliberately NOT on [`SimHarness`]: this loop feeds the workload in
/// `step_subframe`'s delivery order (grouped by cell, then client),
/// and `WebWorkload::delivered` draws think times from one shared RNG,
/// so the call order is part of the run's seed lineage. The harness
/// reports in global client order, which would silently reshuffle
/// those draws.
fn lte_page_loads(
    scenario: &Scenario,
    mode: ImMode,
    seeds: SeedSeq,
    horizon: Instant,
) -> (Vec<f64>, Vec<f64>) {
    let mut e = LteEngine::new(
        scenario.clone(),
        LteEngineConfig::paper_default(mode),
        seeds,
    );
    let mut web = WebWorkload::new(
        WebWorkloadConfig::default(),
        scenario.n_ues(),
        seeds.child("web"),
    );
    // Accumulate bits and hand whole bytes to the workload; per-delivery
    // truncation would leak a few bits per subframe and pages would never
    // quite complete.
    let mut bit_acc = vec![0u64; scenario.n_ues()];
    let mut handed = vec![0u64; scenario.n_ues()];
    while e.now() < horizon {
        for (client, bytes) in web.poll(e.now()) {
            e.enqueue(client, bytes * 8);
        }
        for (ue, bits) in e.step_subframe() {
            bit_acc[ue] += bits;
            let total_bytes = bit_acc[ue] / 8;
            if total_bytes > handed[ue] {
                web.delivered(ue, total_bytes - handed[ue], e.now());
                handed[ue] = total_bytes;
            }
        }
    }
    let completed: Vec<f64> = web
        .completed
        .iter()
        .map(|p| p.duration().as_secs_f64())
        .collect();
    let censored: Vec<f64> = web
        .outstanding_durations(horizon)
        .iter()
        .map(|d| d.as_secs_f64())
        .collect();
    (completed, censored)
}

/// One web-workload run on the Wi-Fi engine, driven by the shared
/// [`SimHarness`] clock loop at a 10 ms tick. The harness reports
/// deliveries in bits at tick boundaries; ÷8 recovers the byte counts
/// the workload tracks, exactly (deltas are whole bytes × 8).
fn wifi_page_loads(scenario: &Scenario, seeds: SeedSeq, horizon: Instant) -> (Vec<f64>, Vec<f64>) {
    // TCP retransmits what the MAC drops: persistent-retry mode.
    let cfg = WifiConfig {
        persistent_retry: true,
        ..WifiConfig::af_default()
    };
    let mut e = WifiEngine::new(scenario, cfg, seeds);
    let mut web = WebWorkload::new(
        WebWorkloadConfig::default(),
        scenario.n_ues(),
        seeds.child("web"),
    );
    SimHarness::new(Duration::from_millis(10), horizon).run(
        &mut e,
        &mut web,
        |e, web, now| {
            for (client, bytes) in web.poll(now) {
                e.enqueue(client, bytes);
            }
        },
        |web, u, delta_bits, at| web.delivered(u, delta_bits / 8, at),
    );
    let completed: Vec<f64> = web
        .completed
        .iter()
        .map(|p| p.duration().as_secs_f64())
        .collect();
    let censored: Vec<f64> = web
        .outstanding_durations(horizon)
        .iter()
        .map(|d| d.as_secs_f64())
        .collect();
    (completed, censored)
}

/// Fig 9(c): page-load-time CDF under the web workload.
pub fn run_c(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig9c");
    // The paper models dynamic traffic on the dense Fig 9(a)/(b)
    // scenario; with ~30 s think times the 84 clients offer a moderate
    // load — enough contention to expose the MACs without queueing
    // collapse.
    let (n_aps, clients, topos, horizon) = if config.quick {
        (4, 3, 1, Instant::from_secs(15))
    } else {
        (10, 6, 4, Instant::from_secs(60))
    };
    let mut wifi_pair = (Vec::new(), Vec::new());
    let mut lte_pair = (Vec::new(), Vec::new());
    let mut cellfi_pair = (Vec::new(), Vec::new());
    let extend = |acc: &mut (Vec<f64>, Vec<f64>), got: (Vec<f64>, Vec<f64>)| {
        acc.0.extend(got.0);
        acc.1.extend(got.1);
    };
    let per_topo = crate::parallel::map_indexed(topos, |t| {
        let seeds = SeedSeq::new(config.seed)
            .child("fig9c")
            .child(&format!("topo{t}"));
        let scenario = Scenario::generate(ScenarioConfig::paper_default(n_aps, clients), seeds);
        (
            wifi_page_loads(&scenario, seeds.child("wifi"), horizon),
            lte_page_loads(&scenario, ImMode::PlainLte, seeds.child("lte"), horizon),
            lte_page_loads(&scenario, ImMode::CellFi, seeds.child("cellfi"), horizon),
        )
    });
    for (wifi, lte, cellfi) in per_topo {
        extend(&mut wifi_pair, wifi);
        extend(&mut lte_pair, lte);
        extend(&mut cellfi_pair, cellfi);
    }
    // Headline: completed pages only — the paper's (ns-3) methodology.
    let wifi = Cdf::new(wifi_pair.0.clone());
    let lte = Cdf::new(lte_pair.0.clone());
    let cellfi = Cdf::new(cellfi_pair.0.clone());
    // Secondary: censored analysis — pages still hanging at the horizon
    // enter as lower bounds, so clients starved by contention (whose
    // pages never finish) do not silently drop out.
    let with_censored = |p: &(Vec<f64>, Vec<f64>)| {
        let mut v = p.0.clone();
        v.extend(p.1.iter());
        Cdf::new(v)
    };
    let wifi_c = with_censored(&wifi_pair);
    let lte_c = with_censored(&lte_pair);
    let cellfi_c = with_censored(&cellfi_pair);
    rep.text = cdf_plot(
        "Fig 9(c): page load time CDF",
        "page load time (s)",
        &[("802.11af", &wifi), ("LTE", &lte), ("CellFi", &cellfi)],
        60,
    );
    rep.text.push_str(&format!(
        "\nMedian page load: CellFi {:.2} s, LTE {:.2} s, Wi-Fi {:.2} s → CellFi \
         {:.1}x faster than Wi-Fi at the median (paper: 2.3x), {:+.0}% vs LTE \
         (paper: ~8%). 95th percentile: CellFi {:.1} s vs LTE {:.1} s — the LTE \
         interference tail (paper: \"tail performance is significantly degraded\").\n",
        cellfi.median_or(0.0),
        lte.median_or(0.0),
        wifi.median_or(0.0),
        wifi.median_or(0.0) / cellfi.median_or(0.0).max(1e-9),
        (lte.median_or(0.0) / cellfi.median_or(0.0).max(1e-9) - 1.0) * 100.0,
        cellfi.quantile_or(0.95, 0.0),
        lte.quantile_or(0.95, 0.0),
    ));
    rep.text.push_str(&format!(
        "\nCensored analysis (hanging pages enter as lower bounds — the \
         starved clients the completed-only CDF hides): medians CellFi \
         {:.2} s, LTE {:.2} s, Wi-Fi {:.2} s → CellFi {:.1}x faster than \
         Wi-Fi, {:.1}x faster than LTE.\n",
        cellfi_c.median_or(0.0),
        lte_c.median_or(0.0),
        wifi_c.median_or(0.0),
        wifi_c.median_or(0.0) / cellfi_c.median_or(0.0).max(1e-9),
        lte_c.median_or(0.0) / cellfi_c.median_or(0.0).max(1e-9),
    ));
    rep.record("median_plt_wifi_s", wifi.median_or(0.0));
    rep.record("median_plt_lte_s", lte.median_or(0.0));
    rep.record("median_plt_cellfi_s", cellfi.median_or(0.0));
    rep.record(
        "cellfi_speedup_vs_wifi",
        wifi.median_or(0.0) / cellfi.median_or(0.0).max(1e-9),
    );
    rep.record("p95_plt_cellfi_s", cellfi.quantile_or(0.95, 0.0));
    rep.record("p95_plt_lte_s", lte.quantile_or(0.95, 0.0));
    rep.record("censored_median_cellfi_s", cellfi_c.median_or(0.0));
    rep.record("censored_median_lte_s", lte_c.median_or(0.0));
    rep.record("censored_median_wifi_s", wifi_c.median_or(0.0));
    rep.record(
        "censored_speedup_vs_wifi",
        wifi_c.median_or(0.0) / cellfi_c.median_or(0.0).max(1e-9),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpConfig {
        ExpConfig {
            seed: 11,
            quick: true,
        }
    }

    #[test]
    #[ignore = "multi-system sweep; run with --ignored or the exp binary"]
    fn fig9a_ordering_holds() {
        let r = run_a(quick());
        assert!(r.values["coverage_cellfi_densest"] >= r.values["coverage_lte_densest"]);
        assert!(r.values["coverage_cellfi_densest"] > r.values["coverage_wifi_densest"]);
    }

    #[test]
    #[ignore = "multi-system sweep; run with --ignored or the exp binary"]
    fn fig9b_cellfi_cuts_starvation() {
        let r = run_b(quick());
        assert!(r.values["starved_cellfi"] <= r.values["starved_lte"]);
        assert!(r.values["starved_cellfi"] <= r.values["starved_wifi"]);
    }

    #[test]
    #[ignore = "long web-workload run; run with --ignored or the exp binary"]
    fn fig9c_cellfi_beats_wifi() {
        let r = run_c(quick());
        assert!(r.values["cellfi_speedup_vs_wifi"] > 1.0);
    }
}
