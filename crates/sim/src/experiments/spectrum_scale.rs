//! `exp spectrum_scale`: the multi-tenant spectrum-manager fleet under
//! fleet-wide chaos.
//!
//! Sweeps fleet size × per-shard fault intensity × regulatory rule
//! profile over a [`SpectrumFleet`]: thousands of lease lifecycles
//! multiplexed across 8 sharded database backends, each shard with its
//! own seeded [`FaultPlan`], with response caching, desynchronized
//! renewals and occupancy-driven cross-channel assignment. Per leg the
//! report pins:
//!
//! * **lease uptime** — mean and 10th-percentile per-AP fraction of
//!   ticks with permission to radiate;
//! * **renewal load** — peak and mean requests per shard rate window
//!   (the desynchronization jitter is what keeps the peak flat);
//! * **cache hit rate** — availability probes absorbed by the
//!   quantized-location response caches;
//! * **compliance** — worst-case vacate margin, missed deadlines, and
//!   ground-truth lease-gate breaches (the last two must be zero on
//!   every leg: the fleet-wide regulatory property).
//!
//! Everything derives from the experiment seed; legs fan out over the
//! thread pool and each fleet steps serially in AP index order, so the
//! report and the traced run are byte-identical at any `CELLFI_THREADS`.

use super::{ExpConfig, ExpReport};
use crate::report::table;
use cellfi_obs::monitor::TickFacts;
use cellfi_obs::{Event, MonitorRegistry, Registry, Tracer};
use cellfi_spectrum::faults::FaultPlan;
use cellfi_spectrum::fleet::{FleetConfig, FleetEvent, FleetStats, SpectrumFleet};
use cellfi_spectrum::lifecycle::{LifecycleConfig, LifecycleEvent};
use cellfi_spectrum::paws::GeoLocation;
use cellfi_spectrum::profile::RuleProfile;
use cellfi_types::geo::Point;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};

/// Cadence at which the fleet is stepped. Must stay ≤ the lifecycle's
/// vacate margin so an expiry between steps is always caught in time.
pub const FLEET_TICK: Duration = Duration::from_millis(250);

/// Database shards every leg runs over.
pub const N_SHARDS: usize = 8;

/// Compressed lease validity per profile, scaled so renewal, expiry and
/// revocation all happen within an experiment horizon while the 2:1
/// ETSI:FCC validity ratio survives the compression.
fn compressed_validity(profile: &RuleProfile) -> Duration {
    if profile.name == "fcc" {
        Duration::from_secs(30)
    } else {
        Duration::from_secs(15)
    }
}

/// The fleet tuning every leg uses: the chaos-experiment lifecycle
/// cadence under `profile`'s EIRP cap, a cache TTL of one poll interval
/// and a renewal spread of one poll interval (jitter on).
fn fleet_config(profile: &RuleProfile) -> FleetConfig {
    let lifecycle = LifecycleConfig {
        eirp_dbm: profile.max_eirp_dbm,
        poll: Duration::from_secs(2),
        renew_fraction: 0.5,
        backoff_base: Duration::from_millis(500),
        backoff_max: Duration::from_secs(4),
        jitter_frac: 0.25,
        vacate_margin: Duration::from_millis(500),
    };
    FleetConfig {
        n_shards: N_SHARDS,
        cache_ttl: lifecycle.poll,
        ..FleetConfig::new(
            profile
                .clone()
                .with_lease_validity(compressed_validity(profile)),
            lifecycle,
        )
    }
}

/// A deterministic metro grid of AP sites, 200 m pitch: several APs per
/// 500 m cache-quantum cell, so response caching has real sharing.
fn grid_locations(n_aps: usize) -> Vec<GeoLocation> {
    let width = (n_aps as f64).sqrt().ceil() as usize;
    (0..n_aps)
        .map(|i| {
            let x = (i % width) as f64 * 200.0;
            let y = (i / width) as f64 * 200.0;
            GeoLocation::gps(Point::new(100_000.0 + x, y))
        })
        .collect()
}

/// Build and drive one fleet leg to `horizon`, returning the aggregate
/// stats and the drained event stream.
fn fleet_run(
    profile: &RuleProfile,
    intensity: f64,
    n_aps: usize,
    renew_spread: Option<Duration>,
    horizon: Instant,
    seeds: &SeedSeq,
) -> (FleetStats, Vec<(Instant, FleetEvent)>) {
    let mut config = fleet_config(profile);
    if let Some(spread) = renew_spread {
        config.renew_spread = spread;
    }
    let plans: Vec<FaultPlan> = (0..config.n_shards)
        .map(|s| {
            FaultPlan::at_intensity(
                seeds.seed_indexed("shard-faults", s as u64),
                intensity,
                horizon,
            )
        })
        .collect();
    let mut fleet = SpectrumFleet::new(config, &grid_locations(n_aps), plans, seeds);
    let mut events = Vec::new();
    let mut now = Instant::ZERO;
    while now < horizon {
        fleet.step(now);
        events.append(&mut fleet.drain_events());
        now += FLEET_TICK;
    }
    (fleet.finish(horizon), events)
}

/// Worst-case vacate margin in seconds; the profile's full deadline
/// when no AP in the leg ever had to vacate.
fn min_margin_s(stats: &FleetStats, profile: &RuleProfile) -> f64 {
    if stats.lifecycles.min_vacate_margin_us == u64::MAX {
        profile.vacate_deadline.as_micros() as f64 / 1e6
    } else {
        stats.lifecycles.min_vacate_margin_us as f64 / 1e6
    }
}

/// Run the fleet-scale sweep.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("spectrum_scale");
    let (sizes, horizon, intensities): (&[usize], Instant, &[f64]) = if config.quick {
        (&[128, 384], Instant::from_secs(30), &[0.0, 0.6])
    } else {
        (&[256, 1024], Instant::from_secs(60), &[0.0, 0.3, 0.6, 0.9])
    };
    let profiles = [RuleProfile::etsi(), RuleProfile::fcc()];
    let legs: Vec<(&RuleProfile, f64, usize)> = profiles
        .iter()
        .flat_map(|p| {
            intensities
                .iter()
                .flat_map(move |&i| sizes.iter().map(move |&n| (p, i, n)))
        })
        .collect();
    // Fan the independent legs over the pool; each fleet steps serially
    // inside, and results reduce in input order, so the report is
    // thread-count independent.
    let outcomes = crate::parallel::map_indexed(legs.len(), |l| {
        let (profile, intensity, n_aps) = legs[l];
        let seeds = SeedSeq::new(config.seed)
            .child("spectrum-scale")
            .child(&format!(
                "{}-i{:02}-n{n_aps:04}",
                profile.name,
                (intensity * 10.0) as u32
            ));
        fleet_run(profile, intensity, n_aps, None, horizon, &seeds)
    });

    let mut rows = Vec::new();
    for (l, (profile, intensity, n_aps)) in legs.iter().enumerate() {
        let (stats, _) = &outcomes[l];
        let margin_s = min_margin_s(stats, profile);
        rows.push(vec![
            profile.name.to_string(),
            format!("{intensity:.1}"),
            format!("{n_aps}"),
            format!("{:.3}", stats.uptime_mean),
            format!("{:.3}", stats.uptime_p10),
            format!("{}", stats.peak_shard_rate),
            format!("{:.1}", stats.mean_shard_rate),
            format!("{:.2}", stats.cache_hit_rate),
            format!("{margin_s:.1} s"),
            format!("{}", stats.lifecycles.missed_deadlines),
            format!("{}", stats.lease_gate_breaches),
        ]);
        let key = format!(
            "{}_i{:02}_n{n_aps:04}",
            profile.name,
            (intensity * 10.0) as u32
        );
        rep.record(&format!("{key}_uptime_mean"), stats.uptime_mean);
        rep.record(&format!("{key}_uptime_p10"), stats.uptime_p10);
        rep.record(&format!("{key}_renew_peak"), stats.peak_shard_rate as f64);
        rep.record(&format!("{key}_renew_mean"), stats.mean_shard_rate);
        rep.record(&format!("{key}_cache_hit_rate"), stats.cache_hit_rate);
        rep.record(&format!("{key}_min_margin_s"), margin_s);
        rep.record(
            &format!("{key}_missed_deadlines"),
            stats.lifecycles.missed_deadlines as f64,
        );
        rep.record(
            &format!("{key}_lease_gate_breaches"),
            stats.lease_gate_breaches as f64,
        );
    }
    rep.text = table(
        &[
            "profile",
            "intensity",
            "APs",
            "uptime",
            "p10",
            "peak req/win",
            "mean req/win",
            "cache hit",
            "min margin",
            "missed",
            "breaches",
        ],
        &rows,
    );
    rep.text.push_str(
        "\nEach leg multiplexes the fleet over 8 sharded PAWS backends with\n\
         independent seeded fault plans. `missed` and `breaches` must be 0 on\n\
         every leg: no AP transmits without a valid lease and every vacate\n\
         beats its profile's deadline, fleet-wide, at any fault intensity.\n\
         `min margin` reports the profile's full deadline when a leg never\n\
         had to vacate.\n",
    );
    rep
}

/// Translate one fleet event into the obs trace/metrics bundle of a
/// traced run. Shard-scoped events keep the shard as their entity.
fn emit_fleet_event(
    tracer: &mut Tracer,
    metrics: &mut Registry,
    at: Instant,
    event: FleetEvent,
    min_margin_us: &mut i64,
) {
    match event {
        FleetEvent::Lifecycle { ap, event } => match event {
            LifecycleEvent::Acquired {
                channel, expires, ..
            }
            | LifecycleEvent::Renewed { channel, expires } => {
                tracer.emit(
                    at,
                    Event::LeaseRenew {
                        cell: ap,
                        channel: channel.0,
                        expires_us: expires.as_micros(),
                    },
                );
                metrics.inc("lease_renewals", ap, 1);
            }
            LifecycleEvent::Degraded { step, channel } => {
                tracer.emit(
                    at,
                    Event::Degrade {
                        cell: ap,
                        channel: channel.0,
                        step: step.code(),
                    },
                );
                metrics.inc("lease_degrades", ap, 1);
            }
            LifecycleEvent::Recovered { channel } => {
                tracer.emit(
                    at,
                    Event::Recover {
                        cell: ap,
                        channel: channel.0,
                    },
                );
                metrics.inc("lease_recoveries", ap, 1);
            }
            LifecycleEvent::Vacated { channel, margin } => {
                tracer.emit(
                    at,
                    Event::PawsVacated {
                        channel: channel.0,
                        margin_us: margin.as_micros(),
                    },
                );
                metrics.observe("vacate_margin_s", ap, margin.as_micros() as f64 / 1e6);
                *min_margin_us = (*min_margin_us).min(margin.as_micros() as i64);
            }
            LifecycleEvent::BackedOff { .. } => {
                metrics.inc("lease_backoffs", ap, 1);
            }
        },
        FleetEvent::ShardOutage { shard, until } => {
            tracer.emit(
                at,
                Event::ShardOutage {
                    shard,
                    until_us: until.as_micros(),
                },
            );
            metrics.inc("shard_outages", shard, 1);
        }
        FleetEvent::CacheHit { shard, age } => {
            tracer.emit(
                at,
                Event::CacheHit {
                    shard,
                    age_us: age.as_micros(),
                },
            );
            metrics.inc("cache_hits", shard, 1);
        }
        FleetEvent::RenewBatch { shard, size } => {
            tracer.emit(at, Event::RenewBatch { shard, size });
            metrics.observe("renew_batch", shard, size as f64);
        }
        FleetEvent::Fault { shard, kind } => {
            tracer.emit(at, Event::FaultInject { cell: shard, kind });
            metrics.inc("faults_injected", shard, 1);
        }
    }
}

/// A traced fleet run behind `exp spectrum_scale --trace`: one
/// representative ETSI leg under moderate chaos, engine-free (the fleet
/// is the whole system under test). Fleet events map onto the obs event
/// stream (`shard_outage`, `cache_hit`, `renew_batch` plus the lease
/// lifecycle kinds), and `--monitors` arms the fleet catalogue
/// ([`MonitorRegistry::fleet`]) against per-tick facts. Byte-identical
/// at any `CELLFI_THREADS`: the fleet steps serially in AP index order.
pub(crate) fn trace(
    config: ExpConfig,
    opts: &super::trace_run::TraceOptions,
) -> super::trace_run::TraceOutput {
    let seeds = SeedSeq::new(config.seed)
        .child("trace")
        .child("spectrum_scale");
    let (n_aps, horizon) = if config.quick {
        (48, Instant::from_secs(15))
    } else {
        (64, Instant::from_secs(30))
    };
    let profile = RuleProfile::etsi();
    let fleet_cfg = fleet_config(&profile);
    let plans: Vec<FaultPlan> = (0..fleet_cfg.n_shards)
        .map(|s| {
            FaultPlan::at_intensity(seeds.seed_indexed("shard-faults", s as u64), 0.6, horizon)
        })
        .collect();
    let mut fleet = SpectrumFleet::new(fleet_cfg, &grid_locations(n_aps), plans, &seeds);

    let mut tracer = Tracer::new(true);
    tracer.set_sample(opts.sample);
    if opts.flight_cap > 0 {
        tracer.enable_flight(opts.flight_cap);
    }
    let mut metrics = Registry::new();
    let mut monitors = if opts.monitors {
        MonitorRegistry::fleet()
    } else {
        MonitorRegistry::disabled()
    };

    let mut min_margin_us = i64::MAX;
    let mut missed_seen = 0u64;
    let mut now = Instant::ZERO;
    while now < horizon {
        fleet.step(now);
        for (at, ev) in fleet.drain_events() {
            emit_fleet_event(&mut tracer, &mut metrics, at, ev, &mut min_margin_us);
        }
        // A missed deadline saturates the event margin at zero, so the
        // miss counter is the signal: surface it to the monitors as a
        // negative margin, exactly like the chaos engine runs do.
        let missed: u64 = (0..fleet.n_aps())
            .map(|i| fleet.lifecycle(i).stats().missed_deadlines)
            .sum();
        if missed > missed_seen {
            missed_seen = missed;
            min_margin_us = min_margin_us.min(-1);
        }
        monitors.check_tick(&TickFacts {
            tick_us: now.as_micros(),
            n_ues: fleet.n_aps() as u32,
            rlf_drops: 0,
            max_starved_epochs: 0,
            cache_hits: 0,
            cache_misses: 0,
            min_margin_us,
            lease_gate_breaches: fleet.lease_gate_breaches(),
        });
        now += FLEET_TICK;
    }
    let stats = fleet.finish(horizon);
    metrics.inc("lease_gate_breaches", 0, stats.lease_gate_breaches);

    super::trace_run::TraceOutput {
        events: tracer.to_jsonl(),
        metrics: metrics.snapshot_jsonl(horizon),
        sketches: tracer.sketches().to_jsonl(),
        verdict: if monitors.is_armed() {
            monitors.verdict_line()
        } else {
            String::new()
        },
        violation: monitors.first_violation().copied(),
        flight: tracer.flight().to_jsonl(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_threads;

    fn quick() -> ExpConfig {
        ExpConfig {
            seed: 9,
            quick: true,
        }
    }

    #[test]
    fn every_leg_is_compliant() {
        let r = run(quick());
        for (k, v) in &r.values {
            if k.ends_with("missed_deadlines") || k.ends_with("lease_gate_breaches") {
                assert_eq!(*v, 0.0, "{k}");
            }
            if k.ends_with("min_margin_s") {
                assert!(*v >= 0.0, "{k} = {v}");
            }
            if k.ends_with("uptime_mean") {
                assert!(*v > 0.0, "{k} = {v}");
            }
        }
        // Quick sweep covers >= 2000 lifecycles: 2 profiles x 2
        // intensities x (128 + 384) APs.
        assert_eq!(r.values.len(), 8 * 8, "8 legs x 8 metrics");
    }

    #[test]
    fn chaos_costs_uptime_but_zero_is_free() {
        let r = run(quick());
        assert_eq!(r.values["etsi_i00_n0128_uptime_mean"], 1.0);
        assert!(r.values["etsi_i06_n0128_uptime_mean"] < 1.0);
        assert!(r.values["etsi_i00_n0128_cache_hit_rate"] > 0.2);
        // Chaos poisons cache reuse (outages stall refreshes), but the
        // caches still absorb real load.
        assert!(r.values["etsi_i06_n0128_cache_hit_rate"] > 0.05);
    }

    /// Satellite: renewal desynchronization. Jitter off lets every AP
    /// on a shard renew in lockstep (a storm); the deterministic jitter
    /// keeps the per-shard peak strictly below it and under a pinned
    /// bound — byte-identically at 1 and 8 threads.
    #[test]
    fn desync_flattens_renewal_storms_at_any_thread_count() {
        let go = |spread: Option<Duration>| {
            with_threads(1, || {
                let seeds = SeedSeq::new(41).child("desync");
                fleet_run(
                    &RuleProfile::etsi(),
                    0.0,
                    96,
                    spread,
                    Instant::from_secs(20),
                    &seeds,
                )
            })
        };
        let spread = Some(Duration::from_secs(8));
        let (storm, _) = go(Some(Duration::ZERO));
        let (calm, calm_events) = go(spread);
        assert!(
            calm.peak_shard_rate < storm.peak_shard_rate,
            "jitter must flatten the peak: {} vs {}",
            calm.peak_shard_rate,
            storm.peak_shard_rate
        );
        // Pinned bound: spreading activations over 8 s keeps every 1 s
        // shard window under half the synchronized burst.
        assert!(
            calm.peak_shard_rate as f64 <= storm.peak_shard_rate as f64 * 0.5,
            "{} vs {}",
            calm.peak_shard_rate,
            storm.peak_shard_rate
        );
        let rerun = with_threads(8, || {
            let seeds = SeedSeq::new(41).child("desync");
            fleet_run(
                &RuleProfile::etsi(),
                0.0,
                96,
                spread,
                Instant::from_secs(20),
                &seeds,
            )
        });
        assert_eq!(calm, rerun.0, "stats byte-identical across thread counts");
        assert_eq!(calm_events, rerun.1, "events byte-identical too");
    }

    #[test]
    fn report_is_thread_count_independent() {
        let a = with_threads(1, || run(quick()));
        let b = with_threads(8, || run(quick()));
        assert_eq!(a.values, b.values);
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn traced_fleet_emits_the_new_event_kinds() {
        let out = trace(quick(), &Default::default());
        assert!(
            out.events.contains("\"ev\":\"cache_hit\""),
            "cache hits traced"
        );
        assert!(
            out.events.contains("\"ev\":\"renew_batch\""),
            "batches traced"
        );
        assert!(
            out.events.contains("\"ev\":\"lease_renew\""),
            "renewals traced"
        );
        assert!(
            out.events.contains("\"ev\":\"fault_inject\""),
            "faults traced at intensity 0.6"
        );
        assert!(out.verdict.is_empty(), "monitors not armed by default");
    }

    #[test]
    fn traced_fleet_monitors_stay_green() {
        let out = trace(
            quick(),
            &super::super::trace_run::TraceOptions {
                monitors: true,
                flight_cap: 64,
                ..Default::default()
            },
        );
        assert!(
            out.verdict.starts_with("monitors: armed=2"),
            "{}",
            out.verdict
        );
        assert!(out.verdict.contains("violations=0"), "{}", out.verdict);
        assert!(out.violation.is_none());
    }
}
