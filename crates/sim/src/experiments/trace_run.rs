//! Traced runs behind `exp --trace`.
//!
//! Maps each experiment name onto a deterministic, traced replay of its
//! canonical topology: `fig6` re-runs the PAWS withdrawal script with
//! the lease lifecycle traced; every other name runs the CellFi engine
//! over that experiment's topology with the event tracer enabled. Both
//! streams are pure functions of the seed — simulation ticks, never wall
//! clock — so two runs at *any* `CELLFI_THREADS` byte-compare equal via
//! `exp trace-diff`.

use super::ExpConfig;
use crate::engine::{ImMode, LteEngine, LteEngineConfig};
use crate::topology::{Scenario, ScenarioConfig, UE_NODE_BASE};
use cellfi_obs::{Event, Registry, Tracer};
use cellfi_propagation::antenna::Antenna;
use cellfi_propagation::link::LinkEnd;
use cellfi_types::geo::Point;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::Instant;

/// A traced run's exports: the event stream plus a metrics snapshot
/// taken at the final tick, and — when the corresponding layers are
/// switched on — histogram sketches of the unsampled remainder, the
/// monitor verdict, and a flight-recorder dump.
#[derive(Debug, Clone)]
pub struct TraceOutput {
    /// JSONL event stream, one record per line, in tick order.
    pub events: String,
    /// JSONL metrics snapshot (counters, gauges, histograms).
    pub metrics: String,
    /// JSONL per-kind histogram sketches of the events the sampler
    /// dropped. Empty under [`cellfi_obs::SampleSpec::FULL`].
    pub sketches: String,
    /// Monitor verdict line ([`cellfi_obs::MonitorRegistry::verdict_line`]).
    /// Empty when monitors were not armed.
    pub verdict: String,
    /// The first invariant violation, when monitors were armed and one
    /// fired.
    pub violation: Option<cellfi_obs::monitor::Violation>,
    /// Flight-recorder ring dump (JSONL, oldest first). Empty unless
    /// flight recording was enabled.
    pub flight: String,
}

/// Knobs for a traced run: the detail stream, the deterministic
/// sampling spec, the invariant monitors, and the flight-recorder
/// capacity. `Default` reproduces the classic full-fidelity trace
/// byte for byte.
#[derive(Debug, Clone, Default)]
pub struct TraceOptions {
    /// Emit the high-rate detail stream (`sched`/`harq_retx`, per-epoch
    /// histogram windows).
    pub detail: bool,
    /// Stratified sampling spec; `SampleSpec::FULL` keeps everything.
    pub sample: cellfi_obs::SampleSpec,
    /// Arm the standard invariant-monitor catalogue.
    pub monitors: bool,
    /// Flight-recorder ring capacity in events; 0 disables it.
    pub flight_cap: usize,
}

/// Run experiment `name`'s topology with tracing enabled; `None` for
/// unknown names.
pub fn traced(name: &str, config: ExpConfig) -> Option<TraceOutput> {
    traced_with(name, config, false)
}

/// As [`traced`], with the detail stream (`sched`/`harq_retx` events
/// and per-epoch histogram window snapshots) switched on or off.
pub fn traced_with(name: &str, config: ExpConfig, detail: bool) -> Option<TraceOutput> {
    traced_opts(
        name,
        config,
        &TraceOptions {
            detail,
            ..TraceOptions::default()
        },
    )
}

/// As [`traced`], with the full option set: sampling, monitors, and the
/// flight recorder, on top of the detail switch.
pub fn traced_opts(name: &str, config: ExpConfig, opts: &TraceOptions) -> Option<TraceOutput> {
    if !super::ALL.contains(&name) {
        return None;
    }
    if name == "fig6" {
        return Some(paws_trace());
    }
    if name == "chaos" {
        return Some(chaos_trace(config, opts));
    }
    if name == "spectrum_scale" {
        return Some(super::spectrum_scale::trace(config, opts));
    }
    let e = traced_engine(name, config, opts).expect("known non-fig6 names have an engine run");
    // Per-epoch window snapshots (chronological) precede the final
    // cumulative snapshot; without detail the window log is empty
    // and the export is byte-identical to the classic stream.
    let metrics = format!(
        "{}{}",
        e.obs().metrics.window_log(),
        e.obs().metrics.snapshot_jsonl(e.now())
    );
    Some(output_from_engine(&e, metrics))
}

/// Assemble a [`TraceOutput`] from a finished engine's obs bundle.
fn output_from_engine(e: &LteEngine, metrics: String) -> TraceOutput {
    let obs = e.obs();
    TraceOutput {
        events: obs.tracer.to_jsonl(),
        metrics,
        sketches: obs.tracer.sketches().to_jsonl(),
        verdict: if obs.monitors.is_armed() {
            obs.monitors.verdict_line()
        } else {
            String::new()
        },
        violation: obs.monitors.first_violation().copied(),
        flight: obs.tracer.flight().to_jsonl(),
    }
}

/// Configure an engine's obs bundle from `opts` (tracer always on).
fn apply_opts(e: &mut LteEngine, opts: &TraceOptions) {
    let mut tracer = Tracer::new(true);
    tracer.set_sample(opts.sample);
    if opts.flight_cap > 0 {
        tracer.enable_flight(opts.flight_cap);
    }
    e.obs_mut().tracer = tracer;
    e.obs_mut().detail = opts.detail;
    if opts.monitors {
        e.obs_mut().monitors = cellfi_obs::MonitorRegistry::standard();
    }
}

/// The finished engine behind a traced run of `name` — exposed so the
/// replay round-trip test can compare reconstructed occupancy with the
/// engine's actual final masks. `None` for unknown names and for
/// `fig6`, whose trace has no engine.
pub(crate) fn traced_engine(
    name: &str,
    config: ExpConfig,
    opts: &TraceOptions,
) -> Option<LteEngine> {
    if !super::ALL.contains(&name) || name == "fig6" || name == "chaos" || name == "spectrum_scale"
    {
        return None;
    }
    let scenario = match name {
        "fig7b" | "fig7c" => two_cell_with_clients(config, name),
        "fig9metro" => metro_culled(config, name),
        _ => large_scale(config, name),
    };
    Some(engine_trace(scenario, name, config, opts))
}

/// The Fig 6 PAWS script with the lease lifecycle traced. Metrics
/// summarise the trace itself: lease-event counts and the margin left
/// before the 60 s ETSI deadline when transmissions stopped.
fn paws_trace() -> TraceOutput {
    let mut tracer = Tracer::new(true);
    let timeline = super::fig6::timeline_traced(&mut tracer);
    let mut metrics = Registry::new();
    for r in tracer.records() {
        match r.event {
            Event::PawsGrant { .. } => metrics.inc("paws_grants", 0, 1),
            Event::PawsRenew { .. } => metrics.inc("paws_renews", 0, 1),
            Event::PawsVacate { .. } => metrics.inc("paws_vacates", 0, 1),
            Event::PawsVacated { margin_us, .. } => {
                metrics.observe("vacate_margin_s", 0, margin_us as f64 / 1e6);
            }
            _ => {}
        }
    }
    let end = timeline.last().map(|e| e.at).unwrap_or(Instant::ZERO);
    TraceOutput {
        events: tracer.to_jsonl(),
        metrics: metrics.snapshot_jsonl(end),
        sketches: String::new(),
        verdict: String::new(),
        violation: None,
        flight: String::new(),
    }
}

/// A traced chaos run: one CellFi engine under a representative fault
/// intensity, with the resilience event stream (`fault_inject`,
/// `lease_renew`, `degrade`, `recover`, `paws_vacated`) and the
/// downtime/vacate-margin metrics the injector and lifecycles feed into
/// the engine's obs bundle. Byte-identical at any `CELLFI_THREADS`: the
/// lifecycles step serially in cell index order, and the engine's own
/// events merge through the fork/absorb sinks.
fn chaos_trace(config: ExpConfig, opts: &TraceOptions) -> TraceOutput {
    let seeds = SeedSeq::new(config.seed).child("trace").child("chaos");
    let horizon = Instant::from_secs(if config.quick { 10 } else { 20 });
    let out = super::chaos::chaos_run(ImMode::CellFi, 0.6, 3, 2, horizon, seeds, Some(opts));
    let metrics = out.engine.obs().metrics.snapshot_jsonl(out.engine.now());
    output_from_engine(&out.engine, metrics)
}

/// The paper's large-scale drop, sized for a short traced run.
fn large_scale(config: ExpConfig, name: &str) -> Scenario {
    let seeds = SeedSeq::new(config.seed).child("trace").child(name);
    Scenario::generate(ScenarioConfig::paper_default(4, 3), seeds.child("topo"))
}

/// A pocket edition of the fig9metro drop: same AP density, flat
/// channel and received-power cull floor as
/// [`super::fig9metro::metro_config`], shrunk to a map a traced run can
/// afford. The floor is active, so the spatial index genuinely culls
/// far links and the trace carries one `cull` event per client.
fn metro_culled(config: ExpConfig, name: &str) -> Scenario {
    let seeds = SeedSeq::new(config.seed).child("trace").child(name);
    let mut cfg = super::fig9metro::metro_config(super::fig9metro::QUICK[0]);
    cfg.n_aps = 36;
    cfg.clients_per_ap = 2;
    cfg.area = 2_400.0;
    Scenario::generate(cfg, seeds.child("topo"))
}

/// The Fig 7 two-cell rooftop layout. The walk experiment itself has no
/// resident clients (the probe is moved by hand), so the traced engine
/// run gives each cell two so there is traffic to schedule, PRACH to
/// overhear and interference to flag.
fn two_cell_with_clients(config: ExpConfig, name: &str) -> Scenario {
    let seeds = SeedSeq::new(config.seed).child("trace").child(name);
    let mut s = Scenario::two_cell_interference(15.0, seeds.child("topo"));
    let serving = s.aps[0].position;
    let interferer = s.aps[1].position;
    let drops = [
        (serving, 40.0, 0.0, 0),
        (serving, 80.0, 30.0, 0),
        (interferer, -40.0, 0.0, 1),
        (interferer, -80.0, -30.0, 1),
    ];
    for (i, (anchor, dx, dy, ap)) in drops.iter().enumerate() {
        s.ues.push(LinkEnd::new(
            UE_NODE_BASE + i as u32,
            Point::new(anchor.x + dx, anchor.y + dy),
            Antenna::client(),
        ));
        s.assoc.push(*ap);
    }
    s.config.clients_per_ap = 2;
    s
}

/// Run the CellFi engine over `scenario` with the tracer on, fully
/// backlogged, for a couple of simulated seconds (one in `--quick`).
fn engine_trace(
    scenario: Scenario,
    name: &str,
    config: ExpConfig,
    opts: &TraceOptions,
) -> LteEngine {
    let seeds = SeedSeq::new(config.seed).child("trace").child(name);
    let mut e = LteEngine::new(
        scenario,
        LteEngineConfig::paper_default(ImMode::CellFi),
        seeds.child("engine"),
    );
    apply_opts(&mut e, opts);
    // One cull record per client, before traffic: a no-op on dense
    // scenarios, so every pre-culling trace stays byte-identical.
    e.emit_cull_events();
    e.backlog_all(u64::MAX / 4);
    let horizon = if config.quick { 1 } else { 2 };
    e.run_until(Instant::from_secs(horizon));
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpConfig {
        ExpConfig {
            seed: 9,
            quick: true,
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(traced("fig99", quick()).is_none());
    }

    #[test]
    fn fig6_trace_has_paws_lifecycle() {
        let out = traced("fig6", quick()).expect("fig6 is a known experiment");
        assert!(out.events.contains("\"ev\":\"paws_grant\""));
        assert!(out.events.contains("\"ev\":\"paws_vacate\""));
        assert!(out.events.contains("\"ev\":\"paws_vacated\""));
        assert!(out.metrics.contains("vacate_margin_s"));
    }

    #[test]
    fn engine_trace_is_seed_deterministic() {
        let a = traced("fig7b", quick()).expect("fig7b is a known experiment");
        let b = traced("fig7b", quick()).expect("fig7b is a known experiment");
        assert_eq!(a.events, b.events);
        assert_eq!(a.metrics, b.metrics);
        assert!(!a.events.is_empty(), "engine trace captured no events");
    }
}
