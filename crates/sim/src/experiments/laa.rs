//! §8's untested claim: LAA/MulteFire-style listen-before-talk "will
//! face similar MAC inefficiencies as 802.11af" in long-range whitespace
//! networks.
//!
//! The paper asserts this without an experiment; our LTE engine has an
//! LBT mode ([`crate::engine::ImMode::Laa`]), so we can run the
//! comparison the paper implies: CellFi vs LAA vs plain LTE on the Fig 9
//! topology. Two effects are expected at TVWS ranges:
//!
//! * the −72 dBm energy-detect threshold reaches only ~290 m, so LBT
//!   almost never actually defers to a neighbouring cell — collisions
//!   persist like plain LTE's;
//! * every backlogged cell still pays the mandatory contention gaps
//!   (8 ms MCOT + ~7.5 ms expected backoff ≈ 52 % duty cycle), halving
//!   capacity even for isolated cells — overhead without coordination,
//!   the CSMA-at-range pathology in LTE clothing.

use super::harness::{self, Sweep};
use super::{ExpConfig, ExpReport};
use crate::engine::ImMode;
use crate::metrics::starved_fraction;
use crate::report::{fmt_bps, fmt_pct, table};
use cellfi_types::time::{Duration, Instant};

/// Run the LAA comparison.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("laa");
    // Even quick mode needs CellFi past its convergence transient
    // (bucket mean λ = 10 epochs), hence the 12 s warm-up.
    let (n_aps, topos, warmup, horizon) = if config.quick {
        (8, 1, Duration::from_secs(12), Instant::from_secs(24))
    } else {
        (10, 5, Duration::from_secs(20), Instant::from_secs(35))
    };
    let modes: [(&str, ImMode); 3] = [
        ("plain LTE", ImMode::PlainLte),
        ("LAA (LBT)", ImMode::Laa),
        ("CellFi", ImMode::CellFi),
    ];
    let per_topo = Sweep::new("laa", config.seed, n_aps, 6, topos).map(|_, scenario, seeds| {
        modes.map(|(name, mode)| {
            harness::lte_steady_state(scenario, mode, seeds.child(name), warmup, horizon)
        })
    });
    let mut by_mode: Vec<(&str, ImMode, Vec<f64>)> = modes
        .iter()
        .map(|&(name, mode)| (name, mode, Vec::new()))
        .collect();
    for topo in per_topo {
        for (acc, tputs) in by_mode.iter_mut().zip(topo) {
            acc.2.extend(tputs);
        }
    }
    let rows: Vec<Vec<String>> = by_mode
        .iter()
        .map(|(name, _, tputs)| {
            vec![
                name.to_string(),
                fmt_bps(harness::median_bps(tputs)),
                fmt_bps(harness::mean_bps(tputs)),
                fmt_pct(starved_fraction(tputs, 1_000.0)),
            ]
        })
        .collect();
    rep.text = table(&["system", "median tput", "mean tput", "starved"], &rows);

    let median = |i: usize| harness::median_bps(&by_mode[i].2);
    let mean = |i: usize| harness::mean_bps(&by_mode[i].2);
    rep.text.push_str(&format!(
        "\nCellFi median is {:.2}x LAA's — LBT pays its contention gaps at every\n\
         cell while its −72 dBm sensing (≈290 m reach) almost never prevents a\n\
         long-range collision; reservation beats listen-before-talk at TVWS\n\
         ranges, as §8 predicts.\n",
        median(2) / median(1).max(1.0),
    ));
    rep.record("median_plain", median(0));
    rep.record("median_laa", median(1));
    rep.record("median_cellfi", median(2));
    rep.record("mean_laa", mean(1));
    rep.record("mean_cellfi", mean(2));
    rep.record("starved_laa", starved_fraction(&by_mode[1].2, 1_000.0));
    rep.record("starved_cellfi", starved_fraction(&by_mode[2].2, 1_000.0));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "multi-system sweep; run with --ignored or the exp binary"]
    fn cellfi_outperforms_laa_at_range() {
        let r = run(ExpConfig {
            seed: 9,
            quick: true,
        });
        // The robust full-scale finding: CellFi's reserved subchannels
        // beat LBT's duty-cycled full channel at the median. (LAA's
        // randomized gaps also suppress starvation — both sit far below
        // plain LTE there — so the median is the discriminating metric.)
        assert!(
            r.values["median_cellfi"] > r.values["median_laa"],
            "CellFi median {} should beat LAA {}",
            r.values["median_cellfi"],
            r.values["median_laa"]
        );
        assert!(r.values["starved_cellfi"] < r.values["median_plain"].max(0.5));
    }
}
