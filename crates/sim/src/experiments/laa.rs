//! §8's untested claim: LAA/MulteFire-style listen-before-talk "will
//! face similar MAC inefficiencies as 802.11af" in long-range whitespace
//! networks.
//!
//! The paper asserts this without an experiment; our LTE engine has an
//! LBT mode ([`crate::lte_engine::ImMode::Laa`]), so we can run the
//! comparison the paper implies: CellFi vs LAA vs plain LTE on the Fig 9
//! topology. Two effects are expected at TVWS ranges:
//!
//! * the −72 dBm energy-detect threshold reaches only ~290 m, so LBT
//!   almost never actually defers to a neighbouring cell — collisions
//!   persist like plain LTE's;
//! * every backlogged cell still pays the mandatory contention gaps
//!   (8 ms MCOT + ~7.5 ms expected backoff ≈ 52 % duty cycle), halving
//!   capacity even for isolated cells — overhead without coordination,
//!   the CSMA-at-range pathology in LTE clothing.

use super::{ExpConfig, ExpReport};
use crate::lte_engine::{ImMode, LteEngine, LteEngineConfig};
use crate::metrics::{starved_fraction, Cdf};
use crate::report::{fmt_bps, fmt_pct, table};
use crate::topology::{Scenario, ScenarioConfig};
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};

fn throughputs(
    scenario: &Scenario,
    mode: ImMode,
    seeds: SeedSeq,
    warmup: Duration,
    horizon: Instant,
) -> Vec<f64> {
    let mut e = LteEngine::new(
        scenario.clone(),
        LteEngineConfig::paper_default(mode),
        seeds,
    );
    e.backlog_all(u64::MAX / 4);
    e.run_until(Instant::ZERO + warmup);
    let w = e.delivered_bits().to_vec();
    e.run_until(horizon);
    let span = (horizon - warmup).as_secs_f64();
    e.delivered_bits()
        .iter()
        .zip(&w)
        .map(|(&a, &b)| (a - b) as f64 / span)
        .collect()
}

/// Run the LAA comparison.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("laa");
    // Even quick mode needs CellFi past its convergence transient
    // (bucket mean λ = 10 epochs), hence the 12 s warm-up.
    let (n_aps, topos, warmup, horizon) = if config.quick {
        (8, 1, Duration::from_secs(12), Instant::from_secs(24))
    } else {
        (10, 5, Duration::from_secs(20), Instant::from_secs(35))
    };
    let mut by_mode: Vec<(&str, ImMode, Vec<f64>)> = vec![
        ("plain LTE", ImMode::PlainLte, Vec::new()),
        ("LAA (LBT)", ImMode::Laa, Vec::new()),
        ("CellFi", ImMode::CellFi, Vec::new()),
    ];
    for t in 0..topos {
        let seeds = SeedSeq::new(config.seed)
            .child("laa")
            .child(&format!("topo{t}"));
        let scenario = Scenario::generate(ScenarioConfig::paper_default(n_aps, 6), seeds);
        for (name, mode, acc) in by_mode.iter_mut() {
            acc.extend(throughputs(
                &scenario,
                *mode,
                seeds.child(name),
                warmup,
                horizon,
            ));
        }
    }
    let rows: Vec<Vec<String>> = by_mode
        .iter()
        .map(|(name, _, tputs)| {
            let cdf = Cdf::new(tputs.clone());
            vec![
                name.to_string(),
                fmt_bps(cdf.median_or(0.0)),
                fmt_bps(cdf.mean_or(0.0)),
                fmt_pct(starved_fraction(tputs, 1_000.0)),
            ]
        })
        .collect();
    rep.text = table(&["system", "median tput", "mean tput", "starved"], &rows);

    let median = |i: usize| Cdf::new(by_mode[i].2.clone()).median_or(0.0);
    let mean = |i: usize| Cdf::new(by_mode[i].2.clone()).mean_or(0.0);
    rep.text.push_str(&format!(
        "\nCellFi median is {:.2}x LAA's — LBT pays its contention gaps at every\n\
         cell while its −72 dBm sensing (≈290 m reach) almost never prevents a\n\
         long-range collision; reservation beats listen-before-talk at TVWS\n\
         ranges, as §8 predicts.\n",
        median(2) / median(1).max(1.0),
    ));
    rep.record("median_plain", median(0));
    rep.record("median_laa", median(1));
    rep.record("median_cellfi", median(2));
    rep.record("mean_laa", mean(1));
    rep.record("mean_cellfi", mean(2));
    rep.record("starved_laa", starved_fraction(&by_mode[1].2, 1_000.0));
    rep.record("starved_cellfi", starved_fraction(&by_mode[2].2, 1_000.0));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "multi-system sweep; run with --ignored or the exp binary"]
    fn cellfi_outperforms_laa_at_range() {
        let r = run(ExpConfig {
            seed: 9,
            quick: true,
        });
        // The robust full-scale finding: CellFi's reserved subchannels
        // beat LBT's duty-cycled full channel at the median. (LAA's
        // randomized gaps also suppress starvation — both sit far below
        // plain LTE there — so the median is the discriminating metric.)
        assert!(
            r.values["median_cellfi"] > r.values["median_laa"],
            "CellFi median {} should beat LAA {}",
            r.values["median_cellfi"],
            r.values["median_laa"]
        );
        assert!(r.values["starved_cellfi"] < r.values["median_plain"].max(0.5));
    }
}
