//! Figure 1: the outdoor LTE drive test (§3.1).
//!
//! A single cell at 36 dBm EIRP; a client is moved through the coverage
//! area. The paper reports (a) TCP throughput vs distance — 1 Mbps
//! beyond 1 km, ≥ 1 Mbps at 85 % of locations; (b) the CDF of code rates
//! used — median 1/2, well below anything Wi-Fi could select; (c) the
//! CDF of the fraction of channel used — downlink fills the channel
//! while the TCP-ACK uplink rides in a single resource block; and 25 %
//! of packets beyond 500 m use HARQ.
//!
//! The testbed is replaced by a link-level simulation over the
//! calibrated propagation model: per-subchannel Rayleigh block fading,
//! CQI link adaptation, HARQ with chase combining, TDD config 4, and a
//! TCP-ACK uplink model (one ~70 B ACK per two 1500 B segments).

use super::{ExpConfig, ExpReport};
use crate::metrics::Cdf;
use crate::report::{cdf_plot, table};
use cellfi_lte::amc::CqiTable;
use cellfi_lte::grid::{ChannelBandwidth, ResourceGrid};
use cellfi_lte::harq::{HarqEntity, HarqOutcome};
use cellfi_lte::tdd::TddConfig;
use cellfi_propagation::antenna::Antenna;
use cellfi_propagation::fading::BlockFading;
use cellfi_propagation::link::LinkEnd;
use cellfi_propagation::noise::NoiseModel;
use cellfi_propagation::pathloss::PathLossModel;
use cellfi_propagation::shadowing::Shadowing;
use cellfi_propagation::RadioEnvironment;
use cellfi_types::geo::Point;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::{Db, Dbm};
use cellfi_types::SubchannelId;

/// One location's measurements.
#[derive(Debug, Clone)]
pub struct DrivePoint {
    /// Distance from the cell (m).
    pub distance: f64,
    /// Downlink TCP throughput (bps).
    pub dl_tcp_bps: f64,
    /// Downlink code rates used (one per transmission).
    pub dl_code_rates: Vec<f64>,
    /// Uplink code rates used.
    pub ul_code_rates: Vec<f64>,
    /// Channel fraction used per downlink transmission.
    pub dl_channel_fraction: Vec<f64>,
    /// Channel fraction used per uplink transmission.
    pub ul_channel_fraction: Vec<f64>,
    /// Fraction of delivered packets that needed HARQ retransmission.
    pub harq_usage: f64,
}

/// TCP protocol efficiency (headers + ACK airtime on a clean link).
const TCP_EFFICIENCY: f64 = 0.92;

/// Simulate one location for `duration` of subframes.
fn measure_location(
    env: &RadioEnvironment,
    ap: &LinkEnd,
    distance: f64,
    duration: Duration,
    seeds: SeedSeq,
) -> DrivePoint {
    let grid = ResourceGrid::new(ChannelBandwidth::Mhz5);
    let tdd = TddConfig::paper_default();
    let table = CqiTable;
    let ue = LinkEnd::new(
        1_000 + distance as u32,
        Point::new(distance, 0.0),
        Antenna::client(),
    );
    let mut rng = seeds.rng_indexed("fig1-loc", distance as u64);
    let mut harq = HarqEntity::new();
    let mut delivered_bits = 0.0f64;
    let mut dl_code_rates = Vec::new();
    let mut ul_code_rates = Vec::new();
    let mut dl_channel_fraction = Vec::new();
    let mut ul_channel_fraction = Vec::new();
    // The uplink owes one ~70 B TCP ACK per two 1500 B segments.
    let mut ack_debt_bits = 0.0f64;

    let mut now = Instant::ZERO;
    while now < Instant::ZERO + duration {
        let cap = tdd.dl_capacity(now);
        if cap > 0.0 {
            // Downlink: backlogged, all subchannels.
            let mut sinrs = Vec::new();
            for s in grid.subchannel_ids() {
                // Downlink power splits across the carrier's RBs.
                let sc_power = grid.subchannel_tx_power(Dbm(30.0), s);
                let p = env.rx_power(ap, sc_power, &ue, s, now);
                sinrs.push(p - env.noise.floor(grid.subchannel_bandwidth(s)));
            }
            let mean_linear = sinrs.iter().map(|s| s.to_linear()).sum::<f64>() / sinrs.len() as f64;
            let eff_sinr = Db(10.0 * mean_linear.max(1e-12).log10());
            // Outer-loop link adaptation runs slightly hot (a +1.5 dB
            // offset), trusting HARQ to mop up the ~10–30 % first-attempt
            // losses — standard vendor practice, and what produces the
            // paper's "25 % of packets beyond 500 m use hybrid ARQ".
            let cqi = table.cqi_for_sinr(eff_sinr + Db(1.5));
            if cqi.usable() {
                let bits: f64 = grid
                    .subchannel_ids()
                    .map(|s| table.efficiency(cqi) * grid.data_res_per_subframe(s) * cap)
                    .sum();
                let process = (now.as_millis() % 8) as usize;
                match harq.transmit(process, cqi, eff_sinr, &mut rng) {
                    HarqOutcome::Ack { .. } => {
                        delivered_bits += bits;
                        // Delayed ACKs: one 40 B (ROHC-compressed) ACK per
                        // two 1500 B segments.
                        ack_debt_bits += bits / (2.0 * 1500.0 * 8.0) * (40.0 * 8.0);
                        dl_code_rates.push(table.code_rate(cqi));
                        let all: Vec<SubchannelId> = grid.subchannel_ids().collect();
                        dl_channel_fraction.push(grid.channel_fraction(&all));
                    }
                    HarqOutcome::Nack | HarqOutcome::Dropped => {}
                }
            }
        } else if ack_debt_bits > 0.0 {
            // Uplink subframe: send pending TCP ACKs. OFDMA lets the
            // scheduler put the small ACK on the *best* subchannel.
            let best = grid
                .subchannel_ids()
                .max_by(|&a, &b| {
                    let pa = env.rx_power(&ue, Dbm(20.0), ap, a, now).value();
                    let pb = env.rx_power(&ue, Dbm(20.0), ap, b, now).value();
                    pa.partial_cmp(&pb).expect("finite powers")
                })
                .expect("non-empty grid");
            let p = env.rx_power(&ue, Dbm(20.0), ap, best, now);
            let sinr = p - env.noise.floor(grid.subchannel_bandwidth(best));
            let cqi = table.cqi_for_sinr(sinr);
            if cqi.usable() {
                let per_sc = table.efficiency(cqi) * grid.data_res_per_subframe(best);
                // How many subchannels do the pending ACKs need?
                let needed = ((ack_debt_bits / per_sc).ceil() as usize)
                    .clamp(1, grid.num_subchannels() as usize);
                let scs: Vec<SubchannelId> = grid.subchannel_ids().take(needed).collect();
                ack_debt_bits = (ack_debt_bits - per_sc * needed as f64).max(0.0);
                ul_code_rates.push(table.code_rate(cqi));
                ul_channel_fraction.push(grid.channel_fraction(&scs));
            }
        }
        now += Duration::SUBFRAME;
    }
    DrivePoint {
        distance,
        dl_tcp_bps: delivered_bits * TCP_EFFICIENCY / duration.as_secs_f64(),
        dl_code_rates,
        ul_code_rates,
        dl_channel_fraction,
        ul_channel_fraction,
        harq_usage: harq.harq_usage(),
    }
}

/// Run the full drive test.
pub fn drive_test(config: ExpConfig) -> Vec<DrivePoint> {
    let seeds = SeedSeq::new(config.seed).child("fig1");
    let env = RadioEnvironment {
        pathloss: PathLossModel::tvws_urban(),
        shadowing: Shadowing::new(seeds.child("shadow"), 4.0),
        fading: BlockFading::pedestrian(seeds.child("fading")),
        noise: NoiseModel::typical(),
        frequency: cellfi_types::units::Hertz(700e6),
    };
    // 30 dBm + 6 dBi isotropic = the paper's 36 dBm EIRP.
    let ap = LinkEnd::new(0, Point::ORIGIN, Antenna::Isotropic { gain: Db(6.0) });
    let step: u32 = if config.quick { 150 } else { 25 };
    let duration = Duration::from_secs(if config.quick { 1 } else { 2 });
    // Locations are independent (the environment is pure and each
    // location's RNG is indexed by its distance), so fan them out; the
    // results come back in distance order, as the serial loop produced.
    crate::parallel::map_indexed((1_400 / step) as usize, |i| {
        measure_location(&env, &ap, f64::from((i as u32 + 1) * step), duration, seeds)
    })
}

/// Fig 1(a): throughput vs distance.
pub fn run_a(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig1a");
    let points = drive_test(config);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.distance),
                format!("{:.2}", p.dl_tcp_bps / 1e6),
            ]
        })
        .collect();
    rep.text = table(&["distance (m)", "TCP throughput (Mbps)"], &rows);
    let above_1m =
        points.iter().filter(|p| p.dl_tcp_bps >= 1e6).count() as f64 / points.len() as f64;
    let range_1mbps = points
        .iter()
        .filter(|p| p.dl_tcp_bps >= 1e6)
        .map(|p| p.distance)
        .fold(0.0, f64::max);
    rep.text.push_str(&format!(
        "\nLocations with >= 1 Mbps: {:.0}% (paper: 85%); furthest 1 Mbps location: {:.0} m \
         (paper: ~1.3 km); peak: {:.1} Mbps.\n",
        above_1m * 100.0,
        range_1mbps,
        points
            .iter()
            .map(|p| p.dl_tcp_bps / 1e6)
            .fold(0.0, f64::max)
    ));
    rep.record("frac_locations_1mbps", above_1m);
    rep.record("range_1mbps_m", range_1mbps);
    rep
}

/// Fig 1(b): CDF of code rates used.
pub fn run_b(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig1b");
    let points = drive_test(config);
    let dl: Vec<f64> = points
        .iter()
        .flat_map(|p| p.dl_code_rates.clone())
        .collect();
    let ul: Vec<f64> = points
        .iter()
        .flat_map(|p| p.ul_code_rates.clone())
        .collect();
    let dl_cdf = Cdf::new(dl);
    let ul_cdf = Cdf::new(ul);
    rep.text = cdf_plot(
        "Fig 1(b): CDF of code rate used",
        "code rate",
        &[("downlink", &dl_cdf), ("uplink", &ul_cdf)],
        60,
    );
    rep.text.push_str(&format!(
        "\nMedian DL code rate {:.2} (paper: 0.5); median UL {:.2}; \
         min DL code rate observed {:.3} — below Wi-Fi's 0.5 floor.\n",
        dl_cdf.median_or(0.0),
        ul_cdf.median_or(0.0),
        dl_cdf.quantile_or(0.0, 0.0),
    ));
    // HARQ usage beyond 500 m (paper: 25 %).
    let far: Vec<&DrivePoint> = points.iter().filter(|p| p.distance > 500.0).collect();
    let harq = far.iter().map(|p| p.harq_usage).sum::<f64>() / far.len().max(1) as f64;
    rep.text.push_str(&format!(
        "HARQ usage beyond 500 m: {:.0}% (paper: 25%).\n",
        harq * 100.0
    ));
    rep.record("median_dl_code_rate", dl_cdf.median_or(0.0));
    rep.record("median_ul_code_rate", ul_cdf.median_or(0.0));
    rep.record("harq_usage_beyond_500m", harq);
    rep
}

/// Fig 1(c): CDF of the fraction of channel used.
pub fn run_c(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig1c");
    let points = drive_test(config);
    let dl: Vec<f64> = points
        .iter()
        .flat_map(|p| p.dl_channel_fraction.clone())
        .collect();
    let ul: Vec<f64> = points
        .iter()
        .flat_map(|p| p.ul_channel_fraction.clone())
        .collect();
    let dl_cdf = Cdf::new(dl);
    let ul_cdf = Cdf::new(ul);
    rep.text = cdf_plot(
        "Fig 1(c): CDF of fraction of channel used",
        "fraction of channel",
        &[("downlink", &dl_cdf), ("uplink", &ul_cdf)],
        60,
    );
    rep.text.push_str(&format!(
        "\nMedian DL fraction {:.2} (backlogged fills the channel); median UL fraction {:.3} \
         — TCP ACKs ride in a sliver of the channel thanks to OFDMA (paper: a single RB).\n",
        dl_cdf.median_or(0.0),
        ul_cdf.median_or(0.0),
    ));
    rep.record("median_dl_fraction", dl_cdf.median_or(0.0));
    rep.record("median_ul_fraction", ul_cdf.median_or(0.0));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpConfig {
        ExpConfig {
            seed: 1,
            quick: true,
        }
    }

    #[test]
    fn throughput_declines_with_distance() {
        let pts = drive_test(quick());
        let near = pts.first().unwrap().dl_tcp_bps;
        let far = pts.last().unwrap().dl_tcp_bps;
        assert!(near > 5e6, "near-cell throughput {near}");
        assert!(far < near / 3.0, "no decline: near {near}, far {far}");
    }

    #[test]
    fn most_locations_exceed_1mbps() {
        let r = run_a(quick());
        assert!(
            r.values["frac_locations_1mbps"] > 0.6,
            "only {}",
            r.values["frac_locations_1mbps"]
        );
        assert!(r.values["range_1mbps_m"] >= 750.0);
    }

    #[test]
    fn code_rates_reach_below_wifi_floor() {
        let r = run_b(quick());
        assert!(r.values["median_dl_code_rate"] < 0.75);
        assert!(r.values["harq_usage_beyond_500m"] > 0.05);
    }

    #[test]
    fn uplink_uses_sliver_downlink_fills_channel() {
        let r = run_c(quick());
        assert!(r.values["median_dl_fraction"] > 0.95);
        assert!(r.values["median_ul_fraction"] < 0.2);
    }
}
