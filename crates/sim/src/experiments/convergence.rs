//! §6.3.4 convergence: "the vast majority of access points only hop very
//! few times in all of our runs; roughly 1 %–2 % of access points do not
//! converge due to interference and hop almost continuously."
//!
//! We run the Fig 9 topologies under CellFi and report the distribution
//! of hops per AP plus the fraction of APs still hopping in the last
//! quarter of the run.

use super::harness::Sweep;
use super::{ExpConfig, ExpReport};
use crate::engine::{ImMode, LteEngine, LteEngineConfig};
use crate::report::table;
use cellfi_types::time::Instant;

/// Run the convergence study.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("convergence");
    let (n_aps, topos, secs) = if config.quick {
        (6, 1, 16u64)
    } else {
        (12, 8, 40u64)
    };
    // One engine run per topology seed, fanned out over the thread
    // pool and reduced in topology order.
    let per_topo =
        Sweep::new("convergence", config.seed, n_aps, 6, topos).map(|_, scenario, seeds| {
            let mut e = LteEngine::new(
                scenario.clone(),
                LteEngineConfig::paper_default(ImMode::CellFi),
                seeds,
            );
            e.backlog_all(u64::MAX / 4);
            // Run ¾ of the horizon, snapshot, then the last ¼: an AP that
            // still hops in the tail has not converged.
            e.run_until(Instant::from_secs(secs * 3 / 4));
            let snapshot = e.manager_hops();
            e.run_until(Instant::from_secs(secs));
            (snapshot, e.manager_hops())
        });
    let mut hops_per_ap = Vec::new();
    let mut non_converged = 0usize;
    let mut total_aps = 0usize;
    for (snapshot, final_hops) in per_topo {
        for (&before, &after) in snapshot.iter().zip(&final_hops) {
            let tail = after - before;
            hops_per_ap.push(after);
            total_aps += 1;
            // "Hop almost continuously": more than one hop per 2 epochs
            // in the tail window.
            if tail as f64 > (secs as f64 / 4.0) / 2.0 {
                non_converged += 1;
            }
        }
    }
    hops_per_ap.sort_unstable();
    let median = hops_per_ap[hops_per_ap.len() / 2];
    let max = *hops_per_ap.last().expect("at least one AP");
    let frac_nc = non_converged as f64 / total_aps.max(1) as f64;
    let few = hops_per_ap
        .iter()
        .filter(|&&h| h as f64 <= secs as f64 / 5.0)
        .count() as f64
        / total_aps as f64;
    rep.text = table(
        &["metric", "value"],
        &[
            vec!["APs observed".into(), total_aps.to_string()],
            vec!["median hops per AP".into(), median.to_string()],
            vec!["max hops per AP".into(), max.to_string()],
            vec!["APs with few hops".into(), format!("{:.0}%", few * 100.0)],
            vec![
                "non-converged APs".into(),
                format!("{:.1}% (paper: 1-2%)", frac_nc * 100.0),
            ],
        ],
    );
    rep.record("median_hops", median as f64);
    rep.record("frac_non_converged", frac_nc);
    rep.record("frac_few_hops", few);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "multi-topology sweep; run with --ignored or the exp binary"]
    fn most_aps_converge() {
        let r = run(ExpConfig {
            seed: 3,
            quick: true,
        });
        assert!(
            r.values["frac_non_converged"] < 0.35,
            "non-converged {}",
            r.values["frac_non_converged"]
        );
        assert!(r.values["frac_few_hops"] > 0.5);
    }
}
