//! `exp chaos`: regulatory resilience under deterministic fault
//! injection.
//!
//! Sweeps PAWS fault intensity (request loss, response delay, database
//! outages, transient errors, truncated grant lists, mid-lease
//! revocations — all from a seeded [`FaultPlan`] schedule) over the
//! paper's topology and reports, per IM system:
//!
//! * **downtime** — fraction of lifecycle ticks a cell was off the air
//!   (no valid lease);
//! * **vacate margins** — the worst margin left before the applicable
//!   deadline when a cell stopped transmitting, and the count of missed
//!   deadlines (must be zero: the compliance property);
//! * **throughput loss** — pooled client throughput at each intensity
//!   relative to the fault-free run of the same system.
//!
//! Each cell runs a [`LeaseLifecycle`] (proactive renewal, seeded
//! backoff, the degradation ladder) against one shared [`FaultInjector`]
//! in front of the spectrum database; the engine's per-cell lease gate
//! and EIRP offset mirror the lifecycle's verdict every tick. Everything
//! derives from the experiment seed — traces are byte-identical at any
//! `CELLFI_THREADS`.

use super::{ExpConfig, ExpReport};
use crate::engine::{ImMode, LteEngine, LteEngineConfig, SimHarness};
use crate::report::table;
use crate::topology::{Scenario, ScenarioConfig};
use cellfi_obs::Event;
use cellfi_spectrum::database::SpectrumDatabase;
use cellfi_spectrum::faults::{FaultInjector, FaultPlan};
use cellfi_spectrum::lifecycle::{LeaseLifecycle, LifecycleConfig, LifecycleEvent, LifecycleStats};
use cellfi_spectrum::paws::GeoLocation;
use cellfi_spectrum::plan::ChannelPlan;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};

/// Cadence at which each cell's lease lifecycle is stepped. Must stay
/// ≤ the lifecycle's vacate margin so an expiry between steps is always
/// caught with margin to spare.
pub const LIFECYCLE_TICK: Duration = Duration::from_millis(250);

/// Lease validity the chaos database issues — compressed from the
/// paper's hours so renewal, expiry and revocation all occur within an
/// experiment horizon.
pub const LEASE_VALIDITY: Duration = Duration::from_secs(15);

/// Full authorized EIRP (dBm): the database's ETSI cap. A lifecycle
/// operating below this shows up as a negative engine power offset.
pub const FULL_EIRP_DBM: f64 = 36.0;

/// The lifecycle tuning used by every chaos run: fast polls and short
/// backoffs matched to [`LEASE_VALIDITY`].
fn lifecycle_config() -> LifecycleConfig {
    LifecycleConfig {
        eirp_dbm: FULL_EIRP_DBM,
        poll: Duration::from_secs(2),
        renew_fraction: 0.5,
        backoff_base: Duration::from_millis(500),
        backoff_max: Duration::from_secs(4),
        jitter_frac: 0.25,
        vacate_margin: Duration::from_millis(500),
    }
}

/// Aggregated outcome of one chaos run (one system at one intensity).
pub(crate) struct ChaosOutcome {
    /// The finished engine (trace/metrics live in its obs bundle).
    pub engine: LteEngine,
    /// Fraction of (cell, tick) samples with no permission to radiate.
    pub downtime_frac: f64,
    /// Worst vacate margin, seconds; the full ETSI minute when the run
    /// never had to vacate.
    pub min_margin_s: f64,
    /// Summed lifecycle counters across cells.
    pub stats: LifecycleStats,
    /// PAWS exchanges perturbed by the injector.
    pub faults: u64,
}

/// Run one system under one fault intensity. All randomness descends
/// from `seeds`; `trace` switches the engine event stream on and
/// carries the sampling/monitor/flight knobs of a traced run (`None`
/// for untraced sweep legs).
pub(crate) fn chaos_run(
    mode: ImMode,
    intensity: f64,
    n_aps: usize,
    clients_per_ap: usize,
    horizon: Instant,
    seeds: SeedSeq,
    trace: Option<&super::trace_run::TraceOptions>,
) -> ChaosOutcome {
    let scenario = Scenario::generate(
        ScenarioConfig::paper_default(n_aps, clients_per_ap),
        seeds.child("topo"),
    );
    let locations: Vec<GeoLocation> = scenario
        .aps
        .iter()
        .map(|ap| GeoLocation::gps(ap.position))
        .collect();
    let mut engine = LteEngine::new(
        scenario,
        LteEngineConfig::paper_default(mode),
        seeds.child("engine"),
    );
    if let Some(opts) = trace {
        let mut tracer = cellfi_obs::Tracer::new(true);
        tracer.set_sample(opts.sample);
        if opts.flight_cap > 0 {
            tracer.enable_flight(opts.flight_cap);
        }
        engine.obs_mut().tracer = tracer;
        engine.obs_mut().detail = opts.detail;
        if opts.monitors {
            engine.obs_mut().monitors = cellfi_obs::MonitorRegistry::standard();
        }
    }
    engine.backlog_all(super::harness::LTE_BACKLOG);

    let db = SpectrumDatabase::new(ChannelPlan::Eu, vec![]).with_lease_validity(LEASE_VALIDITY);
    let plan = FaultPlan::at_intensity(seeds.seed("faults"), intensity, horizon);
    let mut injector = FaultInjector::new(db, plan);
    let mut lifecycles: Vec<LeaseLifecycle> = locations
        .iter()
        .enumerate()
        .map(|(i, loc)| {
            LeaseLifecycle::new(
                &format!("cellfi-ap-{i:03}"),
                clients_per_ap as u32,
                *loc,
                ChannelPlan::Eu,
                lifecycle_config(),
                seeds.seed_indexed("lease", i as u64),
            )
        })
        .collect();

    let mut downtime_ticks = 0u64;
    let mut total_ticks = 0u64;
    let mut faults = 0u64;
    let mut missed_seen: Vec<u64> = vec![0; lifecycles.len()];
    let harness = SimHarness::new(LIFECYCLE_TICK, horizon);
    harness.run(
        &mut engine,
        &mut (),
        |e, _, now| {
            // Cells consult the database in index order; the shared
            // injector's fault draws are therefore a pure function of
            // the seed, independent of worker threads.
            for (c, lc) in lifecycles.iter_mut().enumerate() {
                injector.advance_to(now);
                lc.step_profiled(&mut injector, &[], now, &mut e.obs_mut().profiler);
                // A missed ETSI deadline surfaces to the monitors as a
                // negative margin (vacate margins saturate at zero in
                // the lifecycle stats, so the miss counter is the only
                // signal left).
                let missed = lc.stats().missed_deadlines;
                if missed > missed_seen[c] {
                    missed_seen[c] = missed;
                    e.observe_vacate_margin_us(-1);
                }
                let cell = c as u32;
                for (at, kind) in injector.drain_faults() {
                    faults += 1;
                    e.obs_mut().tracer.emit(
                        at,
                        Event::FaultInject {
                            cell,
                            kind: kind.code(),
                        },
                    );
                    e.obs_mut().metrics.inc("faults_injected", cell, 1);
                }
                for (at, ev) in lc.drain_events() {
                    emit_lifecycle_event(e, cell, at, ev);
                }
                let ok = lc.may_transmit(now);
                total_ticks += 1;
                if !ok {
                    downtime_ticks += 1;
                    e.obs_mut().metrics.inc("lease_downtime_ticks", cell, 1);
                }
                e.set_lease_ok(c, ok);
                let offset = if lc.current_channel().is_some() {
                    lc.eirp_dbm() - FULL_EIRP_DBM
                } else {
                    0.0
                };
                e.set_power_offset_db(c, offset);
            }
        },
        |_, _, _, _| {},
    );

    let mut stats = LifecycleStats::default();
    let mut min_margin_us = u64::MAX;
    for lc in &lifecycles {
        let s = lc.stats();
        stats.renewals += s.renewals;
        stats.vacates += s.vacates;
        stats.degrades += s.degrades;
        stats.recoveries += s.recoveries;
        stats.backoffs += s.backoffs;
        stats.missed_deadlines += s.missed_deadlines;
        min_margin_us = min_margin_us.min(s.min_vacate_margin_us);
    }
    let min_margin_s = if min_margin_us == u64::MAX {
        cellfi_spectrum::client::ETSI_VACATE_DEADLINE.as_micros() as f64 / 1e6
    } else {
        min_margin_us as f64 / 1e6
    };
    ChaosOutcome {
        downtime_frac: downtime_ticks as f64 / total_ticks.max(1) as f64,
        min_margin_s,
        stats,
        faults,
        engine,
    }
}

/// Translate a lifecycle transition into the obs event stream and
/// metrics registry of the engine hosting the affected cell.
fn emit_lifecycle_event(e: &mut LteEngine, cell: u32, at: Instant, ev: LifecycleEvent) {
    match ev {
        LifecycleEvent::Acquired {
            channel, expires, ..
        }
        | LifecycleEvent::Renewed { channel, expires } => {
            e.obs_mut().tracer.emit(
                at,
                Event::LeaseRenew {
                    cell,
                    channel: channel.0,
                    expires_us: expires.as_micros(),
                },
            );
            e.obs_mut().metrics.inc("lease_renewals", cell, 1);
        }
        LifecycleEvent::Degraded { step, channel } => {
            e.obs_mut().tracer.emit(
                at,
                Event::Degrade {
                    cell,
                    channel: channel.0,
                    step: step.code(),
                },
            );
            e.obs_mut().metrics.inc("lease_degrades", cell, 1);
        }
        LifecycleEvent::Recovered { channel } => {
            e.obs_mut().tracer.emit(
                at,
                Event::Recover {
                    cell,
                    channel: channel.0,
                },
            );
            e.obs_mut().metrics.inc("lease_recoveries", cell, 1);
        }
        LifecycleEvent::Vacated { channel, margin } => {
            e.obs_mut().tracer.emit(
                at,
                Event::PawsVacated {
                    channel: channel.0,
                    margin_us: margin.as_micros(),
                },
            );
            e.obs_mut()
                .metrics
                .observe("vacate_margin_s", cell, margin.as_micros() as f64 / 1e6);
            e.observe_vacate_margin_us(margin.as_micros() as i64);
        }
        LifecycleEvent::BackedOff { .. } => {
            e.obs_mut().metrics.inc("lease_backoffs", cell, 1);
        }
    }
}

/// Run the chaos sweep.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("chaos");
    let (n_aps, clients, horizon, intensities): (usize, usize, Instant, &[f64]) = if config.quick {
        (4, 2, Instant::from_secs(20), &[0.0, 0.6])
    } else {
        (6, 4, Instant::from_secs(60), &[0.0, 0.3, 0.6, 0.9])
    };
    let modes: &[(ImMode, &str)] = &[(ImMode::PlainLte, "lte"), (ImMode::CellFi, "cellfi")];
    let runs: Vec<(ImMode, &str, f64)> = modes
        .iter()
        .flat_map(|&(m, label)| intensities.iter().map(move |&i| (m, label, i)))
        .collect();
    // Fan the independent (system, intensity) runs over the pool;
    // results reduce in input order, so the report is thread-count
    // independent.
    let outcomes = crate::parallel::map_indexed(runs.len(), |r| {
        let (mode, label, intensity) = runs[r];
        let seeds = SeedSeq::new(config.seed)
            .child("chaos")
            .child(&format!("{label}-i{:02}", (intensity * 10.0) as u32));
        chaos_run(mode, intensity, n_aps, clients, horizon, seeds, None)
    });

    let mut rows = Vec::new();
    for (r, (mode, label, intensity)) in runs.iter().enumerate() {
        let out = &outcomes[r];
        let tput = super::harness::median_bps(&out.engine.throughputs_bps());
        let base = outcomes[runs
            .iter()
            .position(|(m, _, i)| m == mode && *i == 0.0)
            .expect("every system sweeps intensity 0")]
        .engine
        .throughputs_bps();
        let base_tput = super::harness::median_bps(&base);
        let loss = if base_tput > 0.0 {
            1.0 - tput / base_tput
        } else {
            0.0
        };
        rows.push(vec![
            label.to_string(),
            format!("{intensity:.1}"),
            format!("{:.2} Mbps", tput / 1e6),
            format!("{:.1} %", out.downtime_frac * 100.0),
            format!("{:.1} s", out.min_margin_s),
            format!("{}", out.stats.missed_deadlines),
            format!("{:.1} %", loss * 100.0),
        ]);
        let key = format!("{label}_i{:02}", (intensity * 10.0) as u32);
        rep.record(&format!("{key}_faults"), out.faults as f64);
        rep.record(&format!("{key}_median_bps"), tput);
        rep.record(&format!("{key}_downtime_frac"), out.downtime_frac);
        rep.record(&format!("{key}_min_margin_s"), out.min_margin_s);
        rep.record(
            &format!("{key}_missed_deadlines"),
            out.stats.missed_deadlines as f64,
        );
        rep.record(&format!("{key}_loss_frac"), loss);
    }
    rep.text = table(
        &[
            "system",
            "intensity",
            "median tput",
            "downtime",
            "min margin",
            "missed",
            "tput loss",
        ],
        &rows,
    );
    rep.text.push_str(
        "\nFaults: seeded PAWS perturbations (loss, delay, outages, transient\n\
         errors, truncated grants, revocations). Margins are against the ETSI\n\
         60 s vacate deadline; `missed` must be 0 — the resilience ladder\n\
         (retry -> channel fallback -> EIRP cap -> vacate) keeps every cell\n\
         compliant while faults escalate. `min margin` reports the full 60 s\n\
         when a run never had to vacate.\n",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpConfig {
        ExpConfig {
            seed: 9,
            quick: true,
        }
    }

    #[test]
    fn chaos_never_misses_a_deadline() {
        let r = run(quick());
        for (k, v) in &r.values {
            if k.ends_with("missed_deadlines") {
                assert_eq!(*v, 0.0, "{k}");
            }
            if k.ends_with("min_margin_s") {
                assert!(*v >= 0.0, "{k} = {v}");
            }
        }
    }

    #[test]
    fn faults_cost_throughput_but_zero_is_free() {
        let r = run(quick());
        assert_eq!(r.values["cellfi_i00_loss_frac"], 0.0);
        assert_eq!(r.values["cellfi_i00_downtime_frac"], 0.0);
        assert_eq!(r.values["cellfi_i00_faults"], 0.0);
        assert!(r.values["cellfi_i06_faults"] > 0.0);
        // Under intensity 0.6 some downtime is expected (outages and
        // revocations do land). Median loss can legitimately be negative
        // — muting a cell relieves its neighbours' interference — so only
        // pin that it is well-defined.
        assert!(r.values["cellfi_i06_downtime_frac"] > 0.0);
        assert!(r.values["cellfi_i06_loss_frac"].is_finite());
    }

    #[test]
    fn chaos_run_is_seed_deterministic() {
        let go = || {
            let seeds = SeedSeq::new(3).child("chaos").child("det");
            let out = chaos_run(
                ImMode::CellFi,
                0.7,
                3,
                2,
                Instant::from_secs(10),
                seeds,
                Some(&Default::default()),
            );
            (
                out.engine.obs().tracer.to_jsonl(),
                out.downtime_frac.to_bits(),
                out.stats.vacates,
                out.faults,
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn traced_chaos_emits_resilience_events() {
        let seeds = SeedSeq::new(5).child("chaos").child("trace-test");
        let out = chaos_run(
            ImMode::CellFi,
            0.8,
            3,
            2,
            Instant::from_secs(15),
            seeds,
            Some(&Default::default()),
        );
        let events = out.engine.obs().tracer.to_jsonl();
        assert!(events.contains("\"ev\":\"lease_renew\""), "renewals traced");
        assert!(
            events.contains("\"ev\":\"fault_inject\""),
            "faults traced at intensity 0.8"
        );
    }
}
