//! Theorem 1 (§5.5): empirical verification of the convergence bound.
//!
//! The hopping process converges in `O(M·log n / ((1−p)·γ))` rounds.
//! We sweep network size `n` and fading probability `p` on ring
//! conflict graphs satisfying the demand assumption, measure the rounds
//! to convergence, and compare against the bound: measured rounds must
//! stay within a small constant of it, grow ~logarithmically in `n`,
//! and scale like `1/(1−p)`.

use super::{ExpConfig, ExpReport};
use crate::report::table;
use cellfi_core::theory::{convergence_bound_rounds, demand_gamma, HoppingProcess};
use cellfi_core::ConflictGraph;
use cellfi_types::rng::SeedSeq;

fn ring(n: u32) -> ConflictGraph {
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    ConflictGraph::from_edges(n as usize, &edges)
}

/// Median convergence rounds over `reps` seeds.
fn median_rounds(n: u32, m: u32, demand: u32, p: f64, reps: u32, seeds: SeedSeq) -> f64 {
    let mut results: Vec<u32> = (0..reps)
        .map(|r| {
            let g = ring(n);
            let mut proc = HoppingProcess::new(
                g,
                vec![demand; n as usize],
                m,
                p,
                seeds.seed_indexed("run", u64::from(r) * 1_000 + u64::from(n)),
            );
            proc.run(100_000).expect("slack instances always converge")
        })
        .collect();
    results.sort_unstable();
    f64::from(results[results.len() / 2])
}

/// Run the Theorem 1 verification.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("theorem1");
    let seeds = SeedSeq::new(config.seed).child("theorem1");
    let reps = if config.quick { 5 } else { 15 };
    let m = 13u32;
    let demand = 3u32;

    let mut rows = Vec::new();
    let mut worst_ratio = 0.0f64;
    for &n in &[4u32, 8, 16, 32, 64] {
        for &p in &[0.0, 0.3, 0.6] {
            let g = ring(n);
            let gamma = demand_gamma(&g, &vec![demand; n as usize], m)
                .expect("ring instances always satisfy the demand assumption");
            let bound = convergence_bound_rounds(m, n as usize, p, gamma);
            let measured = median_rounds(n, m, demand, p, reps, seeds);
            worst_ratio = worst_ratio.max(measured / bound);
            rows.push(vec![
                n.to_string(),
                format!("{p:.1}"),
                format!("{gamma:.2}"),
                format!("{measured:.0}"),
                format!("{bound:.0}"),
                format!("{:.2}", measured / bound),
            ]);
        }
    }
    rep.text = table(
        &["n", "p", "gamma", "measured rounds", "bound", "ratio"],
        &rows,
    );

    // Scaling checks at p = 0.
    let r8 = median_rounds(8, m, demand, 0.0, reps, seeds.child("scale"));
    let r64 = median_rounds(64, m, demand, 0.0, reps, seeds.child("scale"));
    let log_growth = r64 / r8.max(1.0);
    let f0 = median_rounds(16, m, demand, 0.0, reps, seeds.child("fade"));
    let f6 = median_rounds(16, m, demand, 0.6, reps, seeds.child("fade"));
    let fading_slowdown = f6 / f0.max(1.0);
    rep.text.push_str(&format!(
        "\nGrowth 8→64 nodes: {log_growth:.2}x (log n predicts ~2x, linear would be 8x)\n\
         Slowdown at p=0.6: {fading_slowdown:.2}x (theory: 1/(1−p) = 2.5x)\n\
         Worst measured/bound ratio: {worst_ratio:.2} (the theorem's hidden constant)\n"
    ));
    rep.record("worst_ratio", worst_ratio);
    rep.record("log_growth_8_to_64", log_growth);
    rep.record("fading_slowdown_p06", fading_slowdown);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rounds_within_constant_of_bound() {
        let r = run(ExpConfig {
            seed: 7,
            quick: true,
        });
        assert!(
            r.values["worst_ratio"] < 3.0,
            "hidden constant blew up: {}",
            r.values["worst_ratio"]
        );
    }

    #[test]
    fn growth_is_sublinear_in_n() {
        let r = run(ExpConfig {
            seed: 7,
            quick: true,
        });
        assert!(
            r.values["log_growth_8_to_64"] < 4.0,
            "8→64 growth {}",
            r.values["log_growth_8_to_64"]
        );
    }

    #[test]
    fn fading_slowdown_tracks_theory() {
        let r = run(ExpConfig {
            seed: 7,
            quick: true,
        });
        let s = r.values["fading_slowdown_p06"];
        assert!((1.2..5.0).contains(&s), "slowdown {s}");
    }
}
