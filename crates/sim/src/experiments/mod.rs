//! Experiment drivers — one per table/figure of the paper.
//!
//! Each driver is a pure function from an [`ExpConfig`] to a
//! [`ExpReport`]: a human-readable text report plus machine-readable
//! key/value results that EXPERIMENTS.md tracks against the paper's
//! numbers. The `exp` binary dispatches by experiment name.

pub mod ablation;
pub mod chaos;
pub mod convergence;
pub mod coordination;
pub mod fig1;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fig9metro;
pub mod harness;
pub mod laa;
pub mod overhead;
pub mod prach;
pub mod replay;
pub mod roaming;
pub mod spectrum_scale;
pub mod table1;
pub mod theorem1;
pub mod trace_run;

use std::collections::BTreeMap;

/// Common experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Master seed; every experiment is deterministic given it.
    pub seed: u64,
    /// Quick mode: fewer topologies / shorter runs, for tests and smoke
    /// checks. Full mode reproduces the paper-scale sweep.
    pub quick: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            seed: 20171212, // the paper's conference date
            quick: false,
        }
    }
}

/// An experiment's output.
#[derive(Debug, Clone)]
pub struct ExpReport {
    /// Experiment id (e.g. "fig9a").
    pub id: String,
    /// Human-readable report.
    pub text: String,
    /// Headline numbers for EXPERIMENTS.md / JSON output.
    pub values: BTreeMap<String, f64>,
}

impl ExpReport {
    /// Create a report.
    pub fn new(id: &str) -> ExpReport {
        ExpReport {
            id: id.to_owned(),
            text: String::new(),
            values: BTreeMap::new(),
        }
    }

    /// Record a headline value.
    pub fn record(&mut self, key: &str, value: f64) {
        self.values.insert(key.to_owned(), value);
    }
}

/// All experiment names, in paper order.
pub const ALL: &[&str] = &[
    "table1",
    "fig1a",
    "fig1b",
    "fig1c",
    "fig2",
    "fig6",
    "fig7b",
    "fig7c",
    "fig8",
    "prach",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9dense",
    "fig9metro",
    "convergence",
    "overhead",
    "theorem1",
    "ablation",
    "laa",
    "coordination",
    "roaming",
    "chaos",
    "spectrum_scale",
];

/// Run several experiments concurrently on the scoped thread pool
/// ([`crate::parallel`]), returning reports in input order. Every name
/// must be valid (see [`run`] / [`ALL`]); each experiment derives all
/// randomness from its own [`SeedSeq`](cellfi_types::rng::SeedSeq)
/// children of `config.seed`, so runs are independent and the reduced
/// output is byte-identical to calling [`run`] serially in a loop.
pub fn run_many(names: &[&str], config: ExpConfig) -> Vec<ExpReport> {
    run_many_timed(names, config)
        .into_iter()
        .map(|(rep, _)| rep)
        .collect()
}

/// As [`run_many`], also reporting each experiment's wall-clock seconds
/// (its self time on whichever worker ran it — the `exp --bench` emitter
/// consumes these).
pub fn run_many_timed(names: &[&str], config: ExpConfig) -> Vec<(ExpReport, f64)> {
    crate::parallel::map_indexed(names.len(), |i| {
        // cellfi-lint: allow(determinism) — wall-clock self-times are
        // *reported* (exp --bench) but never fed back into simulation
        // state, so replay stays byte-identical.
        let t0 = std::time::Instant::now();
        let rep = run(names[i], config)
            // cellfi-lint: allow(panic) — an unknown experiment name is a
            // caller typo; failing loudly beats silently dropping a figure
            // from the reproduction run.
            .unwrap_or_else(|| panic!("unknown experiment: {}", names[i]));
        (rep, t0.elapsed().as_secs_f64())
    })
}

/// Dispatch an experiment by name.
pub fn run(name: &str, config: ExpConfig) -> Option<ExpReport> {
    Some(match name {
        "table1" => table1::run(config),
        "fig1a" => fig1::run_a(config),
        "fig1b" => fig1::run_b(config),
        "fig1c" => fig1::run_c(config),
        "fig2" => fig2::run(config),
        "fig6" => fig6::run(config),
        "fig7b" => fig7::run_b(config),
        "fig7c" => fig7::run_c(config),
        "fig8" => fig8::run(config),
        "prach" => prach::run(config),
        "fig9a" => fig9::run_a(config),
        "fig9b" => fig9::run_b(config),
        "fig9c" => fig9::run_c(config),
        "fig9dense" => fig9::run_dense(config),
        "fig9metro" => fig9metro::run(config),
        "convergence" => convergence::run(config),
        "overhead" => overhead::run(config),
        "theorem1" => theorem1::run(config),
        "ablation" => ablation::run(config),
        "laa" => laa::run(config),
        "coordination" => coordination::run(config),
        "roaming" => roaming::run(config),
        "chaos" => chaos::run(config),
        "spectrum_scale" => spectrum_scale::run(config),
        _ => return None,
    })
}
