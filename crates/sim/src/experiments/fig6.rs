//! Figure 6: the spectrum-database interaction experiment (§6.2).
//!
//! The paper's script: the network operates; at t = 57 s the channel is
//! removed from the database for 5 minutes; the AP radio goes down 2 s
//! later and the client stops transmitting instantly. When the channel
//! reappears, the AP needs 1 min 36 s to reboot and the client another
//! 56 s of multi-band cell search to reconnect. ETSI requires
//! transmissions to stop within one minute of losing the channel.
//!
//! We replay the same script against our database, client, cell and UE
//! state machines and verify every deadline.

use super::{ExpConfig, ExpReport};
use crate::report::table;
use cellfi_lte::cell::{Cell, CellConfig};
use cellfi_lte::earfcn::{Band, Earfcn};
use cellfi_lte::ue::{Ue, UeTimings};
use cellfi_obs::Tracer;
use cellfi_spectrum::client::{ClientState, DatabaseClient};
use cellfi_spectrum::database::SpectrumDatabase;
use cellfi_spectrum::paws::GeoLocation;
use cellfi_spectrum::plan::ChannelPlan;
use cellfi_types::geo::Point;
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::Dbm;
use cellfi_types::{ApId, UeId};

/// AP reboot time after a radio parameter change (paper: 1 min 36 s).
pub const AP_REBOOT: Duration = Duration::from_secs(96);

/// The AP's database poll interval; the paper's AP noticed the withdrawal
/// within 2 s.
pub const DB_POLL: Duration = Duration::from_secs(2);

/// One timeline event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When it happened.
    pub at: Instant,
    /// What happened.
    pub what: String,
}

/// Replay the Fig 6 script; returns the event timeline.
pub fn timeline() -> Vec<Event> {
    timeline_traced(&mut Tracer::disabled())
}

/// As [`timeline`], additionally emitting PAWS lease/vacate events into
/// `tracer` (grant, vacate order with deadline, stop confirmation with
/// the margin left before the ETSI minute) — the stream behind
/// `exp fig6 --trace`.
pub fn timeline_traced(tracer: &mut Tracer) -> Vec<Event> {
    let mut events = Vec::new();
    let mut db = SpectrumDatabase::new(ChannelPlan::Eu, vec![]);
    let ap_location = GeoLocation::gps(Point::new(0.0, 0.0));
    let mut client = DatabaseClient::new("cellfi-ap-001", 10, ap_location);
    let mut cell = Cell::new(CellConfig::paper_default(ApId::new(0)));
    let mut ue = Ue::new(UeId::new(0), UeTimings::paper_measured(), Instant::ZERO);

    // Bootstrap: grant, operate, attach (before the recorded window).
    client
        .refresh_traced(&mut db, Instant::ZERO, tracer)
        .expect("the in-process database transport is infallible");
    let channel = client.grants()[0].channel;
    client
        .start_operation_traced(&mut db, channel, 36.0, Instant::ZERO, tracer)
        .expect("bootstrap channel comes straight from the grant list");
    let carrier = Earfcn::from_frequency(
        Band::Tvws,
        ChannelPlan::Eu
            .channel(channel.0)
            .expect("granted channels are always in the plan")
            .centre,
    );
    cell.set_carrier(carrier, Dbm(20.0), Instant::ZERO);
    ue.cell_found(ApId::new(0), Instant::ZERO);
    ue.attach_complete();
    cell.attach(UeId::new(0));
    events.push(Event {
        at: Instant::ZERO,
        what: format!("network operating on {channel}"),
    });

    // The script: withdraw at 57 s for 5 minutes.
    let withdraw_at = Instant::from_secs(57);
    let reinstate_at = withdraw_at + Duration::from_secs(300);
    db.withdraw_channel(channel, Some(reinstate_at));
    events.push(Event {
        at: withdraw_at,
        what: format!("{channel} removed from database (5 min)"),
    });

    // Simulate in DB_POLL ticks.
    let mut reboot_done: Option<Instant> = None;
    let mut search_started: Option<Instant> = None;
    let mut t = withdraw_at;
    let end = Instant::from_secs(650);
    while t < end {
        t += DB_POLL;
        // AP rebooting? Finish that first.
        if let Some(done) = reboot_done {
            if t >= done && !cell.radio_on() {
                cell.set_carrier(carrier, Dbm(20.0), t);
                events.push(Event {
                    at: t,
                    what: "AP radio back on after reboot".into(),
                });
                reboot_done = None;
            }
        }
        // Database poll.
        let state = client
            .refresh_traced(&mut db, t, tracer)
            .expect("the in-process database transport is infallible");
        match state {
            ClientState::Vacating { .. } if cell.radio_on() => {
                // Stop transmitting immediately (well inside the ETSI
                // minute); clients mute instantly — no grants, no uplink.
                cell.radio_off();
                client.confirm_stopped_traced(t, tracer);
                ue.lost_cell(t);
                search_started = Some(t);
                events.push(Event {
                    at: t,
                    what: "AP radio off; client transmissions stop".into(),
                });
            }
            ClientState::Idle
                if client.grants().iter().any(|g| g.channel == channel)
                    && reboot_done.is_none()
                    && !cell.radio_on() =>
            {
                // Channel is back: start the (slow) reboot.
                client
                    .start_operation_traced(&mut db, channel, 36.0, t, tracer)
                    .expect("reacquired channel comes straight from the grant list");
                reboot_done = Some(t + AP_REBOOT);
                events.push(Event {
                    at: t,
                    what: format!("{channel} reinstated; AP reboot started"),
                });
            }
            _ => {}
        }
        // Client search: the multi-band scan can only *find* the cell
        // once the AP is radiating, so the 56 s scan clock effectively
        // restarts from whichever is later — search start or radio-on.
        if let Some(started) = search_started {
            if cell.radio_on() {
                let radio_on_at = events
                    .iter()
                    .rev()
                    .find(|e| e.what.contains("back on"))
                    .map(|e| e.at)
                    .unwrap_or(started);
                let anchor = radio_on_at.max(started);
                if t.duration_since(anchor) >= UeTimings::paper_measured().cell_search {
                    ue.cell_found(ApId::new(0), t);
                    ue.attach_complete();
                    cell.attach(UeId::new(0));
                    events.push(Event {
                        at: t,
                        what: "client reconnected; traffic resumes".into(),
                    });
                    search_started = None;
                }
            }
        }
    }
    events
}

/// Run the Fig 6 experiment.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig6");
    let events = timeline();
    let rows: Vec<Vec<String>> = events
        .iter()
        .map(|e| vec![format!("{:.0} s", e.at.as_secs_f64()), e.what.clone()])
        .collect();
    rep.text = table(&["t", "event"], &rows);

    let find = |needle: &str| {
        events
            .iter()
            .find(|e| e.what.contains(needle))
            .map(|e| e.at)
    };
    let removed = find("removed").expect("timeline records the withdrawal");
    let off = find("radio off").expect("timeline records the radio-off");
    let reinstated = find("reinstated").expect("timeline records the reinstatement");
    let back_on = find("back on").expect("timeline records the reboot completion");
    let reconnected = find("reconnected").expect("timeline records the reconnect");

    let vacate = off.duration_since(removed);
    let reboot = back_on.duration_since(reinstated);
    let reconnect = reconnected.duration_since(back_on);
    rep.text.push_str(&format!(
        "\nVacate delay: {} (ETSI bound 60 s; paper: 2 s)\n\
         AP reboot after reinstatement: {} (paper: 1 min 36 s)\n\
         Client reconnect after radio-on: {} (paper: 56 s cell search)\n",
        vacate, reboot, reconnect
    ));
    rep.record("vacate_s", vacate.as_secs_f64());
    rep.record("reboot_s", reboot.as_secs_f64());
    rep.record("reconnect_s", reconnect.as_secs_f64());
    // The timeline replays the paper's fixed §6.2 script — nothing is
    // sampled, so the run config cannot change the outcome; say so
    // rather than silently ignoring it.
    rep.text.push_str(&format!(
        "\nNote: fig6 replays a fixed database script; --seed {} and {} mode \
         do not alter this report.\n",
        config.seed,
        if config.quick { "--quick" } else { "full" },
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vacate_within_etsi_minute() {
        let r = run(ExpConfig::default());
        assert!(
            r.values["vacate_s"] <= 60.0,
            "vacated in {} s",
            r.values["vacate_s"]
        );
        // And with our 2 s poll, within a couple of polls.
        assert!(r.values["vacate_s"] <= 4.0);
    }

    #[test]
    fn reboot_and_reconnect_match_paper_timings() {
        let r = run(ExpConfig::default());
        assert!(
            (r.values["reboot_s"] - 96.0).abs() <= 4.0,
            "{}",
            r.values["reboot_s"]
        );
        assert!(
            (r.values["reconnect_s"] - 56.0).abs() <= 4.0,
            "{}",
            r.values["reconnect_s"]
        );
    }

    #[test]
    fn timeline_events_ordered() {
        let ev = timeline();
        for w in ev.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(ev.iter().any(|e| e.what.contains("reconnected")));
    }
}
