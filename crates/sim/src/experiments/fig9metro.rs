//! Metro-scale capacity density: the spatial-index stress case.
//!
//! The paper's large-scale runs stop at 14 APs × 6 clients on a 2 km
//! square (§6.3). This experiment asks what the same engine does at
//! *metro* scale — thousands of cells, 10⁵–10⁶ clients — which is the
//! deployment regime Hessar & Roy analysed for TVWS secondary networks
//! (arXiv 1304.1785): with a single shared TV channel, area capacity is
//! interference-limited and the interesting figure of merit is
//! **aggregate capacity density in bps/Hz/km²**, not per-link rate.
//!
//! Dense interference bookkeeping is O(n_ue × n_ap) and drowns at this
//! scale (10k APs × 1M UEs would be 10¹⁰ link entries). The run only
//! becomes tractable through the spatial index: a received-power cull
//! floor (`ScenarioConfig::cull_floor_dbm`) bounds every candidate and
//! interferer list to the near field, so the slabs scale with
//! n_ue × K (K ≈ a dozen) instead of n_ue × n_ap.
//!
//! AP density is held at 6.25 AP/km² (2 500 APs on a 20 km square)
//! across the sweep, so capacity density should be roughly flat as the
//! map grows — growth in aggregate capacity is pure area scaling, which
//! is exactly the "small cells reuse the channel spatially" argument of
//! Hessar & Roy: their Seattle-metro study puts the achievable order of
//! magnitude at O(1) bps/Hz/km² for interference-limited secondary
//! cells of a few hundred metres' radius.

use super::{ExpConfig, ExpReport};
use crate::engine::{ImMode, LteEngine, LteEngineConfig};
use crate::report::table;
use crate::topology::{Scenario, ScenarioConfig};
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::Instant;

/// One density point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct MetroPoint {
    /// Number of cells.
    pub n_aps: usize,
    /// Clients per cell.
    pub clients_per_ap: usize,
    /// Map side (m); chosen to hold AP density at 6.25 AP/km².
    pub side_m: f64,
    /// Received-power cull floor (dBm). Tighter floors at the larger
    /// points keep the neighbor stride — and the slab memory — bounded.
    pub floor_dbm: f64,
}

/// Quick mode: the tier-1 smoke point — 2 500 cells, 100 000 clients.
pub const QUICK: &[MetroPoint] = &[MetroPoint {
    n_aps: 2_500,
    clients_per_ap: 40,
    side_m: 20_000.0,
    floor_dbm: -80.0,
}];

/// Full mode: sweep to 10 000 cells / 1 000 000 clients at constant
/// AP density (side grows as √n_aps).
pub const FULL: &[MetroPoint] = &[
    MetroPoint {
        n_aps: 2_500,
        clients_per_ap: 40,
        side_m: 20_000.0,
        floor_dbm: -80.0,
    },
    MetroPoint {
        n_aps: 5_000,
        clients_per_ap: 60,
        side_m: 28_284.0,
        floor_dbm: -77.0,
    },
    MetroPoint {
        n_aps: 10_000,
        clients_per_ap: 100,
        side_m: 40_000.0,
        floor_dbm: -75.0,
    },
];

/// Hessar & Roy's order-of-magnitude for interference-limited TVWS
/// small cells (arXiv 1304.1785), quoted in the report for context.
pub const REFERENCE_BPS_HZ_KM2: f64 = 1.0;

/// Metro scenario: flat urban propagation (no shadowing or fading — at
/// 10⁵+ links the spatial mean is the story, and a constant channel
/// lets the CQI memo carry the steady state), culled to the near field.
pub fn metro_config(p: MetroPoint) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_default(p.n_aps, p.clients_per_ap);
    cfg.area = p.side_m;
    cfg.cell_radius = 300.0;
    cfg.shadowing_sigma = 0.0;
    cfg.fading = false;
    cfg.cull_floor_dbm = Some(p.floor_dbm);
    cfg
}

/// Saturated-downlink capacity density at one point.
fn run_point(p: MetroPoint, warmup: Instant, horizon: Instant, seeds: SeedSeq) -> PointOutcome {
    let scenario = Scenario::generate(metro_config(p), seeds.child("topo"));
    let n_ue = scenario.n_ues();
    let n_ap = scenario.aps.len();
    let kept: u64 = (0..n_ue)
        .map(|u| scenario.nbr.candidates(u).len() as u64)
        .sum();
    let culled = (n_ue as u64) * (n_ap as u64) - kept;
    let outcome_radius = scenario.nbr.cull_radius_m.expect("metro runs always cull");
    let max_neighbors = scenario.nbr.max_neighbors;

    let mut e = LteEngine::new(
        scenario,
        LteEngineConfig::paper_default(ImMode::CellFi),
        seeds.child("engine"),
    );
    e.backlog_all(u64::MAX / 4);
    e.run_until(warmup);
    let at_warmup: u64 = e.delivered_bits().iter().sum();
    e.run_until(horizon);
    let delivered: u64 = e.delivered_bits().iter().sum::<u64>() - at_warmup;

    let window_s = horizon.duration_since(warmup).as_secs_f64();
    let area_km2 = (p.side_m / 1_000.0) * (p.side_m / 1_000.0);
    let agg_bps = delivered as f64 / window_s;
    PointOutcome {
        n_ue,
        kept,
        culled,
        cull_radius_m: outcome_radius,
        max_neighbors,
        agg_bps,
        density_bps_hz_km2: agg_bps / 5e6 / area_km2,
        area_km2,
    }
}

struct PointOutcome {
    n_ue: usize,
    kept: u64,
    culled: u64,
    cull_radius_m: f64,
    max_neighbors: usize,
    agg_bps: f64,
    density_bps_hz_km2: f64,
    area_km2: f64,
}

/// Run the metro capacity-density sweep.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig9metro");
    let (points, warmup, horizon) = if config.quick {
        (QUICK, Instant::from_secs(1), Instant::from_millis(1_300))
    } else {
        (FULL, Instant::from_secs(1), Instant::from_millis(1_500))
    };

    let mut rows = Vec::new();
    for &p in points {
        let seeds = SeedSeq::new(config.seed)
            .child("fig9metro")
            .child(&format!("aps{}", p.n_aps));
        let out = run_point(p, warmup, horizon, seeds);

        let mean_k = out.kept as f64 / out.n_ue as f64;
        rows.push(vec![
            p.n_aps.to_string(),
            out.n_ue.to_string(),
            format!("{:.0}", out.area_km2),
            format!("{:.0}", out.cull_radius_m),
            format!("{mean_k:.1}"),
            out.max_neighbors.to_string(),
            format!("{:.3e}", out.agg_bps),
            format!("{:.2}", out.density_bps_hz_km2),
        ]);
        let id = p.n_aps;
        rep.record(&format!("aps{id}_n_ues"), out.n_ue as f64);
        rep.record(&format!("aps{id}_kept_links"), out.kept as f64);
        rep.record(&format!("aps{id}_culled_links"), out.culled as f64);
        rep.record(&format!("aps{id}_cull_radius_m"), out.cull_radius_m);
        rep.record(&format!("aps{id}_max_neighbors"), out.max_neighbors as f64);
        rep.record(&format!("aps{id}_agg_capacity_bps"), out.agg_bps);
        rep.record(
            &format!("aps{id}_capacity_density_bps_hz_km2"),
            out.density_bps_hz_km2,
        );
    }
    rep.record("reference_bps_hz_km2", REFERENCE_BPS_HZ_KM2);

    rep.text = format!(
        "{}\n\nAP density held at 6.25/km²; capacity density is the\n\
         interference-limited figure of merit. Hessar & Roy (arXiv\n\
         1304.1785) put interference-limited TVWS small cells at\n\
         O({REFERENCE_BPS_HZ_KM2:.0}) bps/Hz/km² for a Seattle-scale metro; the culled\n\
         engine lands in the same regime with spectral reuse doing the\n\
         work — aggregate capacity grows with area, density stays flat.",
        table(
            &[
                "APs",
                "UEs",
                "km²",
                "cull m",
                "K mean",
                "K max",
                "agg bps",
                "bps/Hz/km²",
            ],
            &rows,
        )
    );
    rep
}
