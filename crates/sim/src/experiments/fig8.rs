//! Figure 8: CQI as an interference estimator (§6.3.2).
//!
//! A single link reports CQI every 2 ms while an interfering radio
//! toggles OFF → ON → OFF → ON. The paper's observations, reproduced
//! here: throughput varies with the channel even in OFF periods (the
//! detector must not chase fades), a faded interferer can be present but
//! harmless (last ON period), and the max-window/60 %/10-sample detector
//! achieves < 2 % false positives and ~80 % detection of strong
//! interference.

use super::{ExpConfig, ExpReport};
use crate::report::table;
use cellfi_core::sensing::CqiInterferenceDetector;
use cellfi_lte::amc::CqiTable;
use cellfi_lte::grid::{ChannelBandwidth, ResourceGrid};
use cellfi_propagation::antenna::Antenna;
use cellfi_propagation::fading::{BlockFading, FadingKind};
use cellfi_propagation::link::{LinkEnd, Transmission};
use cellfi_propagation::noise::NoiseModel;
use cellfi_propagation::pathloss::PathLossModel;
use cellfi_propagation::shadowing::Shadowing;
use cellfi_propagation::RadioEnvironment;
use cellfi_types::geo::Point;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::{Dbm, Hertz};

/// One 2 ms sample of the timeline.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Time of the sample.
    pub at: Instant,
    /// Whether the interferer radio was ON.
    pub interferer_on: bool,
    /// Wideband CQI reported.
    pub cqi: u8,
    /// Instantaneous PHY throughput (Mbps).
    pub throughput_mbps: f64,
    /// Detector verdict at this sample.
    pub detected: bool,
}

/// Run the ON/OFF timeline; returns the 2 ms samples.
pub fn run_timeline(config: ExpConfig) -> Vec<Sample> {
    let seeds = SeedSeq::new(config.seed).child("fig8");
    let env = RadioEnvironment {
        pathloss: PathLossModel::tvws_urban(),
        shadowing: Shadowing::disabled(seeds.child("shadow")),
        // Strong fast fading so the OFF periods wobble like the paper's.
        fading: BlockFading::new(
            seeds.child("fading"),
            FadingKind::Rayleigh,
            Duration::from_millis(40),
        ),
        noise: NoiseModel::typical(),
        frequency: Hertz(700e6),
    };
    let serving = LinkEnd::new(
        0,
        Point::ORIGIN,
        Antenna::Isotropic {
            gain: cellfi_types::units::Db(6.0),
        },
    );
    let interferer = LinkEnd::new(
        1,
        Point::new(400.0, 50.0),
        Antenna::Isotropic {
            gain: cellfi_types::units::Db(6.0),
        },
    );
    let ue = LinkEnd::new(1_000, Point::new(200.0, 0.0), Antenna::client());
    let grid = ResourceGrid::new(ChannelBandwidth::Mhz5);
    let table = CqiTable;
    let mut detector = CqiInterferenceDetector::default();

    // The Fig 8 script: OFF 0–1.2 s, ON 1.2–2.4 s, OFF 2.4–3.6 s,
    // ON 3.6–5 s but with the interferer's signal faded 15 dB down
    // (the "weak interference" episode that must not starve throughput).
    let horizon = Instant::from_secs(5);
    let on = |t: Instant| {
        let s = t.as_secs_f64();
        (1.2..2.4).contains(&s) || s >= 3.6
    };
    let faded_episode = |t: Instant| t.as_secs_f64() >= 3.6;

    let mut samples = Vec::new();
    let mut t = Instant::ZERO;
    while t < horizon {
        let interferer_on = on(t);
        let int_power = if faded_episode(t) {
            Dbm(23.0 - 18.0) // deep shadow: present but harmless
        } else {
            Dbm(23.0)
        };
        let interferers: Vec<Transmission> = if interferer_on {
            vec![Transmission {
                from: interferer,
                power: int_power,
            }]
        } else {
            Vec::new()
        };
        let serving_tx = Transmission {
            from: serving,
            power: Dbm(23.0),
        };
        // Wideband: linear-mean SINR across subchannels (our commercial-
        // small-cell stand-in, like the paper's, reports wideband only).
        let mean_linear = grid
            .subchannel_ids()
            .map(|s| {
                // Downlink power splits across the carrier: scale both the
                // serving and interfering transmissions per subchannel.
                let scale = grid.subchannel_tx_power(Dbm(0.0), s) - Dbm(0.0);
                let serving_sc = Transmission {
                    from: serving_tx.from,
                    power: serving_tx.power + scale,
                };
                let interferers_sc: Vec<Transmission> = interferers
                    .iter()
                    .map(|i| Transmission {
                        from: i.from,
                        power: i.power + scale,
                    })
                    .collect();
                env.subchannel_sinr(
                    &serving_sc,
                    &ue,
                    &interferers_sc,
                    s,
                    t,
                    grid.subchannel_bandwidth(s),
                )
                .to_linear()
            })
            .sum::<f64>()
            / f64::from(grid.num_subchannels());
        let sinr = cellfi_types::units::Db(10.0 * mean_linear.max(1e-12).log10());
        let cqi = table.cqi_for_sinr(sinr);
        let throughput = if cqi.usable() {
            table.efficiency(cqi) * grid.total_data_res_per_subframe() * 1_000.0 / 1e6
        } else {
            0.0
        };
        let detected = detector.push(cqi.0);
        samples.push(Sample {
            at: t,
            interferer_on,
            cqi: cqi.0,
            throughput_mbps: throughput,
            detected,
        });
        t += Duration::CQI_PERIOD;
    }
    samples
}

/// Run the Fig 8 experiment and score the detector.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig8");
    let samples = run_timeline(config);

    // Bucket to 100 ms for the timeline table.
    let mut rows = Vec::new();
    let bucket = Duration::from_millis(200);
    let mut i = 0;
    while i < samples.len() {
        let t0 = samples[i].at;
        let chunk: Vec<&Sample> = samples
            .iter()
            .skip(i)
            .take_while(|s| s.at < t0 + bucket)
            .collect();
        let tput = chunk.iter().map(|s| s.throughput_mbps).sum::<f64>() / chunk.len() as f64;
        let cqi = chunk.iter().map(|s| f64::from(s.cqi)).sum::<f64>() / chunk.len() as f64;
        let on = chunk.iter().filter(|s| s.interferer_on).count() > chunk.len() / 2;
        let det = chunk.iter().filter(|s| s.detected).count() as f64 / chunk.len() as f64;
        rows.push(vec![
            format!("{:.1}", t0.as_secs_f64()),
            if on { "ON" } else { "OFF" }.into(),
            format!("{tput:.1}"),
            format!("{cqi:.1}"),
            format!("{:.0}%", det * 100.0),
        ]);
        i += chunk.len();
    }
    rep.text = table(
        &["t (s)", "interferer", "tput (Mbps)", "CQI", "detected"],
        &rows,
    );

    // Score: strong-ON period = 1.2–2.4 s; OFF periods; faded-ON ≥ 3.6 s.
    let strong_on: Vec<&Sample> = samples
        .iter()
        .filter(|s| (1.3..2.4).contains(&s.at.as_secs_f64()))
        .collect();
    let off: Vec<&Sample> = samples.iter().filter(|s| !s.interferer_on).collect();
    let faded: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.at.as_secs_f64() >= 3.7)
        .collect();
    let detection =
        strong_on.iter().filter(|s| s.detected).count() as f64 / strong_on.len().max(1) as f64;
    let false_pos = off.iter().filter(|s| s.detected).count() as f64 / off.len().max(1) as f64;
    let faded_tput =
        faded.iter().map(|s| s.throughput_mbps).sum::<f64>() / faded.len().max(1) as f64;
    let off_tput = off.iter().map(|s| s.throughput_mbps).sum::<f64>() / off.len().max(1) as f64;

    rep.text.push_str(&format!(
        "\nStrong-interference detection: {:.0}% of samples (paper: 80%)\n\
         False positives on clean channel: {:.1}% (paper: < 2%)\n\
         Faded-interferer throughput: {:.1} Mbps vs clean {:.1} Mbps — weak \
         interference barely hurts, as in the paper's last ON period.\n",
        detection * 100.0,
        false_pos * 100.0,
        faded_tput,
        off_tput
    ));
    rep.record("detection_rate", detection);
    rep.record("false_positive_rate", false_pos);
    rep.record("faded_over_clean_tput", faded_tput / off_tput.max(1e-9));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExpConfig {
        ExpConfig {
            seed: 4,
            quick: true,
        }
    }

    #[test]
    fn detector_catches_strong_interference() {
        let r = run(cfg());
        assert!(
            r.values["detection_rate"] > 0.5,
            "detection {}",
            r.values["detection_rate"]
        );
    }

    #[test]
    fn false_positives_below_paper_bound() {
        let r = run(cfg());
        assert!(
            r.values["false_positive_rate"] < 0.05,
            "FP {}",
            r.values["false_positive_rate"]
        );
    }

    #[test]
    fn faded_interferer_mostly_harmless() {
        let r = run(cfg());
        assert!(
            r.values["faded_over_clean_tput"] > 0.7,
            "faded/clean {}",
            r.values["faded_over_clean_tput"]
        );
    }

    #[test]
    fn cqi_drops_when_interferer_on() {
        let samples = run_timeline(cfg());
        let on_cqi: f64 = samples
            .iter()
            .filter(|s| (1.3..2.4).contains(&s.at.as_secs_f64()))
            .map(|s| f64::from(s.cqi))
            .sum::<f64>()
            / samples
                .iter()
                .filter(|s| (1.3..2.4).contains(&s.at.as_secs_f64()))
                .count() as f64;
        let off_cqi: f64 = samples
            .iter()
            .filter(|s| !s.interferer_on)
            .map(|s| f64::from(s.cqi))
            .sum::<f64>()
            / samples.iter().filter(|s| !s.interferer_on).count() as f64;
        assert!(off_cqi - on_cqi > 2.0, "CQI gap {off_cqi} vs {on_cqi}");
    }
}
