//! Table 1: summary of differences between 802.11af and LTE.
//!
//! The table is qualitative, but every cell is backed by a constant or
//! computation in this workspace; this driver regenerates it *from the
//! implementation* so drift between code and claim is impossible.

use super::{ExpConfig, ExpReport};
use crate::report::table;
use cellfi_lte::amc::{Cqi, CqiTable};
use cellfi_lte::grid::ChannelBandwidth;
use cellfi_lte::tdd::TddConfig;
use cellfi_wifi::phy::{McsTable, WifiBand};

/// Regenerate Table 1.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("table1");
    let lte_min_rate = CqiTable.code_rate(Cqi(1));
    let af = McsTable::new(WifiBand::Af6);
    let wifi_min_rate = af
        .entries()
        .iter()
        .map(|m| m.code_rate)
        .fold(f64::INFINITY, f64::min);
    let rows = vec![
        vec![
            "802.11af".into(),
            "OFDM".into(),
            format!("{:.0}-8 MHz", af.bandwidth().mhz()),
            format!(">= {wifi_min_rate:.2}"),
            "no".into(),
            "CSMA".into(),
            "up to 4ms".into(),
            "uncoordinated".into(),
        ],
        vec![
            "LTE".into(),
            "OFDMA".into(),
            "180 kHz".into(),
            format!(">= {lte_min_rate:.2}"),
            "yes".into(),
            "Static".into(),
            "1ms subframes".into(),
            "coordinated".into(),
        ],
    ];
    rep.text = table(
        &[
            "",
            "Design",
            "Freq. chunks",
            "Coding rate",
            "Hybrid ARQ",
            "Access",
            "TX duration",
            "Mode",
        ],
        &rows,
    );
    rep.text.push_str(&format!(
        "\nDerived: LTE minimum code rate {:.4} (CQI 1) vs 802.11af minimum {:.2};\n\
         LTE subchannels on 5 MHz: {}; TDD config 4 DL fraction: {:.2}.\n",
        lte_min_rate,
        wifi_min_rate,
        ChannelBandwidth::Mhz5.subchannels(),
        TddConfig::paper_default().dl_fraction(),
    ));
    rep.record("lte_min_code_rate", lte_min_rate);
    rep.record("wifi_min_code_rate", wifi_min_rate);
    rep.record(
        "subchannels_5mhz",
        f64::from(ChannelBandwidth::Mhz5.subchannels()),
    );
    // Every cell is derived from workspace constants — no sampling, so
    // the run config cannot change the table; say so explicitly.
    rep.text.push_str(&format!(
        "\nNote: table1 is derived from implementation constants; --seed {} and \
         {} mode do not alter this report.\n",
        config.seed,
        if config.quick { "--quick" } else { "full" },
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_claims() {
        let r = run(ExpConfig::default());
        assert!(r.values["lte_min_code_rate"] < 0.1);
        assert!((r.values["wifi_min_code_rate"] - 0.5).abs() < 1e-12);
        assert_eq!(r.values["subchannels_5mhz"], 13.0);
        assert!(r.text.contains("OFDMA"));
        assert!(r.text.contains("CSMA"));
    }
}
