//! Shared experiment harness: seed fan-out, topology sweeps, and
//! steady-state measurement.
//!
//! Every multi-topology driver repeats the same scaffold — derive a
//! [`SeedSeq`] child per topology index, generate the paper's scenario,
//! fan the independent runs over [`crate::parallel`], back-log an
//! engine, and rate the delivered bits between a warm-up snapshot and
//! the horizon. This module is that scaffold, written once:
//!
//! * [`fan_out`] — deterministic seed fan-out over the thread pool,
//!   reduced in index order (byte-identical to a serial loop);
//! * [`Sweep`] — a topology sweep (experiment label × density × seed
//!   count) built on `fan_out`;
//! * [`lte_steady_state`] / [`wifi_steady_state`] — backlogged
//!   steady-state throughput of one engine run, via
//!   [`crate::engine::steady_state_bps`];
//! * [`SystemsRun`] / [`paired_systems`] — the paper's paired-system
//!   comparison (802.11af, plain LTE, CellFi, optionally the oracle)
//!   over one sweep, pooled across topologies;
//! * [`median_bps`] / [`mean_bps`] — the pooled-throughput statistics
//!   the report tables quote.
//!
//! Seed-derivation labels are part of each experiment's identity (the
//! golden reports pin every value), so the helpers reproduce the exact
//! `child()` strings the drivers have always used rather than imposing
//! a new convention.

use crate::engine::{steady_state_bps, ImMode, LteEngine, LteEngineConfig};
use crate::metrics::Cdf;
use crate::topology::{Scenario, ScenarioConfig};
use crate::wifi_engine::WifiEngine;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};
use cellfi_wifi::sim::WifiConfig;

/// Backlog applied to every LTE client in a steady-state run — large
/// enough to never drain, small enough that byte arithmetic can't wrap.
pub const LTE_BACKLOG: u64 = u64::MAX / 4;

/// Backlog (bytes) applied to every Wi-Fi client in a steady-state run.
pub const WIFI_BACKLOG: u64 = 1 << 40;

/// Run `f(i, seeds)` for every `i` in `0..n` on the scoped thread pool,
/// where `seeds` is `SeedSeq::new(master_seed).child(exp).child(&label(i))`.
/// Results come back in index order, so pooling them reproduces the
/// serial loop byte for byte; each run must derive all its randomness
/// from its own `seeds` (the fan-out gives it nothing else to race on).
pub fn fan_out<T: Send>(
    master_seed: u64,
    exp: &str,
    n: usize,
    label: impl Fn(usize) -> String + Sync,
    f: impl Fn(usize, SeedSeq) -> T + Sync,
) -> Vec<T> {
    crate::parallel::map_indexed(n, |i| {
        let seeds = SeedSeq::new(master_seed).child(exp).child(&label(i));
        f(i, seeds)
    })
}

/// A topology sweep: `topologies` independent drops of the paper's
/// 2 km × 2 km scenario at one density, each with its own seed lineage.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    /// Experiment label used as the seed child (e.g. `"laa"`).
    pub exp: &'static str,
    /// Master seed (from [`super::ExpConfig`]).
    pub master_seed: u64,
    /// Access points per topology.
    pub n_aps: usize,
    /// Clients per access point.
    pub clients_per_ap: usize,
    /// Number of topology drops.
    pub topologies: usize,
    /// Whether the per-topology seed label embeds the density
    /// (`topo-{n_aps}-{clients}-{t}`, the fig9 lineage) or just the
    /// index (`topo{t}`, everyone else's).
    pub density_label: bool,
}

impl Sweep {
    /// A sweep with the common `topo{t}` seed labels.
    pub fn new(
        exp: &'static str,
        master_seed: u64,
        n_aps: usize,
        clients_per_ap: usize,
        topologies: usize,
    ) -> Sweep {
        Sweep {
            exp,
            master_seed,
            n_aps,
            clients_per_ap,
            topologies,
            density_label: false,
        }
    }

    fn label(&self, t: usize) -> String {
        if self.density_label {
            format!("topo-{}-{}-{}", self.n_aps, self.clients_per_ap, t)
        } else {
            format!("topo{t}")
        }
    }

    /// The seed lineage of topology `t`.
    pub fn topo_seeds(&self, t: usize) -> SeedSeq {
        SeedSeq::new(self.master_seed)
            .child(self.exp)
            .child(&self.label(t))
    }

    /// The scenario drawn from `seeds` at this sweep's density.
    pub fn scenario(&self, seeds: SeedSeq) -> Scenario {
        Scenario::generate(
            ScenarioConfig::paper_default(self.n_aps, self.clients_per_ap),
            seeds,
        )
    }

    /// Fan `f(t, &scenario, seeds)` over the topologies, results in
    /// topology order.
    pub fn map<T: Send>(&self, f: impl Fn(usize, &Scenario, SeedSeq) -> T + Sync) -> Vec<T> {
        crate::parallel::map_indexed(self.topologies, |t| {
            let seeds = self.topo_seeds(t);
            let scenario = self.scenario(seeds);
            f(t, &scenario, seeds)
        })
    }
}

/// Steady-state client throughputs (bps) of one backlogged LTE run with
/// the paper-default config for `mode`.
pub fn lte_steady_state(
    scenario: &Scenario,
    mode: ImMode,
    seeds: SeedSeq,
    warmup: Duration,
    horizon: Instant,
) -> Vec<f64> {
    lte_steady_state_with(
        scenario,
        LteEngineConfig::paper_default(mode),
        seeds,
        warmup,
        horizon,
    )
    .0
}

/// As [`lte_steady_state`] with an explicit engine config, also handing
/// back the finished engine so callers can read run counters (X2
/// messages, manager hops, …).
pub fn lte_steady_state_with(
    scenario: &Scenario,
    config: LteEngineConfig,
    seeds: SeedSeq,
    warmup: Duration,
    horizon: Instant,
) -> (Vec<f64>, LteEngine) {
    let mut e = LteEngine::new(scenario.clone(), config, seeds);
    e.backlog_all(LTE_BACKLOG);
    let tputs = steady_state_bps(&mut e, warmup, horizon);
    (tputs, e)
}

/// Steady-state client throughputs (bps) of one backlogged Wi-Fi run.
pub fn wifi_steady_state(
    scenario: &Scenario,
    config: WifiConfig,
    seeds: SeedSeq,
    warmup: Duration,
    horizon: Instant,
) -> Vec<f64> {
    let mut e = WifiEngine::new(scenario, config, seeds);
    e.backlog_all(WIFI_BACKLOG);
    steady_state_bps(&mut e, warmup, horizon)
}

/// Pooled per-client throughputs across seeds for every system.
pub struct SystemsRun {
    /// 802.11af throughputs.
    pub wifi: Vec<f64>,
    /// Plain LTE throughputs.
    pub lte: Vec<f64>,
    /// CellFi throughputs.
    pub cellfi: Vec<f64>,
    /// Oracle throughputs (only filled when requested).
    pub oracle: Vec<f64>,
}

/// The paper's paired-system comparison at one density: every system
/// runs over the *same* topology drops (same scenario seeds) so the
/// per-client comparisons are paired, pooled across `n_topologies` in
/// topology order.
#[allow(clippy::too_many_arguments)]
pub fn paired_systems(
    exp: &'static str,
    n_aps: usize,
    clients_per_ap: usize,
    n_topologies: usize,
    warmup: Duration,
    horizon: Instant,
    with_oracle: bool,
    master_seed: u64,
) -> SystemsRun {
    let sweep = Sweep {
        exp,
        master_seed,
        n_aps,
        clients_per_ap,
        topologies: n_topologies,
        density_label: true,
    };
    let per_topo = sweep.map(|_, scenario, seeds| {
        let wifi = wifi_steady_state(
            scenario,
            WifiConfig::af_default(),
            seeds.child("wifi"),
            warmup,
            horizon,
        );
        let lte = lte_steady_state(
            scenario,
            ImMode::PlainLte,
            seeds.child("lte"),
            warmup,
            horizon,
        );
        let cellfi = lte_steady_state(
            scenario,
            ImMode::CellFi,
            seeds.child("cellfi"),
            warmup,
            horizon,
        );
        let oracle = if with_oracle {
            lte_steady_state(
                scenario,
                ImMode::Oracle,
                seeds.child("oracle"),
                warmup,
                horizon,
            )
        } else {
            Vec::new()
        };
        (wifi, lte, cellfi, oracle)
    });
    let mut out = SystemsRun {
        wifi: Vec::new(),
        lte: Vec::new(),
        cellfi: Vec::new(),
        oracle: Vec::new(),
    };
    for (wifi, lte, cellfi, oracle) in per_topo {
        out.wifi.extend(wifi);
        out.lte.extend(lte);
        out.cellfi.extend(cellfi);
        out.oracle.extend(oracle);
    }
    out
}

/// Median of pooled client throughputs (0 when empty).
pub fn median_bps(tputs: &[f64]) -> f64 {
    Cdf::new(tputs.to_vec()).median_or(0.0)
}

/// Mean of pooled client throughputs (0 when empty).
pub fn mean_bps(tputs: &[f64]) -> f64 {
    Cdf::new(tputs.to_vec()).mean_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_matches_serial_loop() {
        let par = fan_out(7, "x", 4, |i| format!("topo{i}"), |i, s| (i, s.seed("k")));
        let ser: Vec<(usize, u64)> = (0..4)
            .map(|i| {
                let seeds = SeedSeq::new(7).child("x").child(&format!("topo{i}"));
                (i, seeds.seed("k"))
            })
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn sweep_labels_match_the_historical_lineages() {
        let plain = Sweep::new("laa", 1, 8, 6, 2);
        assert_eq!(
            plain.topo_seeds(1).seed("k"),
            SeedSeq::new(1).child("laa").child("topo1").seed("k")
        );
        let dense = Sweep {
            density_label: true,
            ..Sweep::new("fig9", 1, 10, 6, 2)
        };
        assert_eq!(
            dense.topo_seeds(0).seed("k"),
            SeedSeq::new(1).child("fig9").child("topo-10-6-0").seed("k")
        );
    }

    #[test]
    fn steady_state_rates_only_the_measurement_window() {
        let sweep = Sweep::new("harness-test", 3, 2, 1, 1);
        let scenario = sweep.scenario(sweep.topo_seeds(0));
        let tputs = lte_steady_state(
            &scenario,
            ImMode::PlainLte,
            sweep.topo_seeds(0).child("lte"),
            Duration::from_secs(1),
            Instant::from_secs(2),
        );
        assert_eq!(tputs.len(), scenario.n_ues());
        assert!(tputs.iter().all(|t| t.is_finite() && *t >= 0.0));
    }

    #[test]
    fn median_and_mean_handle_empty_pools() {
        assert_eq!(median_bps(&[]), 0.0);
        assert_eq!(mean_bps(&[]), 0.0);
        assert_eq!(median_bps(&[1.0, 2.0, 3.0]), 2.0);
        assert!((mean_bps(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
