//! `exp replay <TRACE.jsonl>`: reconstruct per-cell subchannel
//! occupancy from a trace stream.
//!
//! The replay consumes the tick-keyed event stream a traced run wrote
//! and rebuilds each cell's owned-subchannel set:
//!
//! * `sched` events (the `--trace-detail` stream) carry the full
//!   occupancy decision per epoch, so the reconstruction is **exact** —
//!   the last `sched` per cell is its final mask;
//! * without them, the replay folds `hop` and `pack` moves (remove
//!   `from`, insert `to`) and notes the last `share` target per cell —
//!   best effort, since the stream never states the initial masks.
//!
//! The round-trip contract (tested below): replaying a detail trace of
//! a run reproduces exactly the allowed masks the engine ended with.

use crate::report::table;
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Occupancy state reconstructed from a trace.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Owned subchannels per cell after the last event.
    pub occupancy: BTreeMap<u32, BTreeSet<u32>>,
    /// Last `share` target per cell, if any was traced.
    pub shares: BTreeMap<u32, u32>,
    /// Events consumed.
    pub events: usize,
    /// Tick of the last event, microseconds.
    pub last_tick_us: u64,
    /// Whether authoritative `sched` events were present (exact masks)
    /// or the state was folded from hop/pack moves (best effort).
    pub from_sched: bool,
}

fn field_u64(map: &BTreeMap<String, Value>, key: &str, line: usize) -> Result<u64, String> {
    match map.get(key) {
        Some(Value::Number(n)) if *n >= 0.0 => Ok(*n as u64),
        other => Err(format!(
            "line {line}: field {key:?} is not a count: {other:?}"
        )),
    }
}

/// Replay a JSONL trace stream. Unknown event kinds are skipped (a
/// trace from a newer engine still replays), malformed lines fail.
pub fn replay_jsonl(text: &str) -> Result<Replay, String> {
    let mut r = Replay::default();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("line {n}: bad JSON: {e}"))?;
        let Value::Object(map) = v else {
            return Err(format!("line {n}: not a JSON object"));
        };
        let Some(Value::String(ev)) = map.get("ev") else {
            return Err(format!("line {n}: missing \"ev\" kind"));
        };
        r.events += 1;
        r.last_tick_us = field_u64(&map, "t", n)?;
        match ev.as_str() {
            "sched" => {
                let cell = field_u64(&map, "cell", n)? as u32;
                let mask = field_u64(&map, "mask", n)? as u32;
                let set: BTreeSet<u32> = (0..32).filter(|s| mask & (1 << s) != 0).collect();
                r.occupancy.insert(cell, set);
                r.from_sched = true;
            }
            "hop" | "pack" => {
                let cell = field_u64(&map, "cell", n)? as u32;
                let from = field_u64(&map, "from", n)? as u32;
                let to = field_u64(&map, "to", n)? as u32;
                let set = r.occupancy.entry(cell).or_default();
                set.remove(&from);
                set.insert(to);
            }
            "share" => {
                let cell = field_u64(&map, "cell", n)? as u32;
                let share = field_u64(&map, "share", n)? as u32;
                r.shares.insert(cell, share);
            }
            _ => {}
        }
    }
    Ok(r)
}

/// Render the final allocation table of a replayed trace.
pub fn allocation_table(r: &Replay) -> String {
    let rows: Vec<Vec<String>> = r
        .occupancy
        .iter()
        .map(|(cell, set)| {
            let scs: Vec<String> = set.iter().map(u32::to_string).collect();
            vec![
                cell.to_string(),
                if scs.is_empty() {
                    "-".into()
                } else {
                    scs.join(" ")
                },
                set.len().to_string(),
                r.shares
                    .get(cell)
                    .map(u32::to_string)
                    .unwrap_or_else(|| "?".into()),
            ]
        })
        .collect();
    let mut out = table(&["cell", "subchannels", "owned", "share"], &rows);
    out.push_str(&format!(
        "\n{} events to t={} µs; occupancy {}.\n",
        r.events,
        r.last_tick_us,
        if r.from_sched {
            "exact (sched events present)"
        } else {
            "folded from hop/pack moves (no sched events — initial masks unknown)"
        },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::super::{trace_run, ExpConfig};
    use super::*;

    fn quick() -> ExpConfig {
        ExpConfig {
            quick: true,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn detail_trace_round_trips_fig7b_occupancy() {
        let e = trace_run::traced_engine(
            "fig7b",
            quick(),
            &trace_run::TraceOptions {
                detail: true,
                ..Default::default()
            },
        )
        .expect("fig7b has a traced engine run");
        let r = replay_jsonl(&e.obs().tracer.to_jsonl()).expect("trace replays");
        assert!(r.from_sched, "detail trace must carry sched events");
        for cell in 0..e.scenario().aps.len() {
            let truth: BTreeSet<u32> = e
                .cell_mask(cell)
                .iter()
                .enumerate()
                .filter(|&(_, &owned)| owned)
                .map(|(s, _)| s as u32)
                .collect();
            assert_eq!(
                r.occupancy.get(&(cell as u32)),
                Some(&truth),
                "cell {cell} occupancy diverges from the engine's final mask"
            );
        }
        let rendered = allocation_table(&r);
        assert!(rendered.contains("exact"));
    }

    #[test]
    fn fold_mode_applies_hops_and_packs() {
        let trace = concat!(
            "{\"t\":1,\"ev\":\"hop\",\"cell\":0,\"from\":2,\"to\":5,\"from_utility\":0.1,\"to_utility\":0.9}\n",
            "{\"t\":2,\"ev\":\"pack\",\"cell\":0,\"from\":5,\"to\":1}\n",
            "{\"t\":3,\"ev\":\"share\",\"cell\":0,\"own\":2,\"heard\":4,\"share\":3}\n",
        );
        let r = replay_jsonl(trace).expect("hand-written trace replays");
        assert!(!r.from_sched);
        assert_eq!(r.events, 3);
        assert_eq!(r.last_tick_us, 3);
        assert_eq!(
            r.occupancy.get(&0),
            Some(&BTreeSet::from([1])),
            "2 hopped to 5, 5 packed to 1"
        );
        assert_eq!(r.shares.get(&0), Some(&3));
    }

    #[test]
    fn sched_events_override_folded_state() {
        let trace = concat!(
            "{\"t\":1,\"ev\":\"hop\",\"cell\":1,\"from\":0,\"to\":7,\"from_utility\":0,\"to_utility\":1}\n",
            "{\"t\":2,\"ev\":\"sched\",\"cell\":1,\"mask\":21,\"owned\":3}\n",
        );
        let r = replay_jsonl(trace).expect("hand-written trace replays");
        assert!(r.from_sched);
        assert_eq!(r.occupancy.get(&1), Some(&BTreeSet::from([0, 2, 4])));
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let err = replay_jsonl("{\"t\":1,\"ev\":\"hop\",\"cell\":0}\n").unwrap_err();
        assert!(err.contains("line 1"), "error names the line: {err}");
        assert!(replay_jsonl("not json\n").is_err());
    }
}
