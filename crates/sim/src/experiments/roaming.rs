//! §7 "Mobility and roaming": "CellFi inherits the benefits of the LTE
//! architecture. It provides seamless roaming across access points,
//! which is difficult to engineer in current WiFi deployments."
//!
//! The drive test the claim implies: a client crosses a three-cell
//! corridor at vehicular speed while downloading. Under CellFi the A3
//! handover (with X2 data forwarding) follows the strongest cell and the
//! session never dies; a Wi-Fi station pinned to its original AP — the
//! common behaviour of 2017-era supplicants without 802.11k/r — falls
//! off a cliff at the cell edge.

use super::{ExpConfig, ExpReport};
use crate::engine::{ImMode, LteEngine, LteEngineConfig, SimHarness};
use crate::report::{fmt_bps, table};
use crate::topology::{Scenario, ScenarioConfig};
use crate::wifi_engine::WifiEngine;
use cellfi_propagation::antenna::Antenna;
use cellfi_propagation::link::LinkEnd;
use cellfi_types::geo::Point;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::Db;
use cellfi_wifi::sim::WifiConfig;

/// The three-cell corridor: APs every 900 m along a line.
fn corridor(seed: u64) -> Scenario {
    let mut cfg = ScenarioConfig::paper_default(3, 0);
    cfg.shadowing_sigma = 0.0;
    cfg.fading = true;
    let mut s = Scenario::generate(cfg, SeedSeq::new(seed));
    s.aps = (0..3)
        .map(|i| {
            LinkEnd::new(
                i,
                Point::new(150.0 + 900.0 * f64::from(i), 0.0),
                Antenna::Isotropic { gain: Db(6.0) },
            )
        })
        .collect();
    s.ues = vec![LinkEnd::new(1000, Point::new(0.0, 40.0), Antenna::client())];
    s.assoc = vec![0];
    s
}

/// Per-second throughput trace of the drive (bps), plus handover count.
pub fn lte_drive(config: ExpConfig) -> (Vec<f64>, u64) {
    let seeds = SeedSeq::new(config.seed).child("roaming");
    let mut e = LteEngine::new(
        corridor(config.seed),
        LteEngineConfig::paper_default(ImMode::CellFi),
        seeds,
    );
    e.enqueue(0, u64::MAX / 4);
    // Quick mode drives faster so the corridor (and the Wi-Fi cliff) fits
    // in a shorter run.
    let (speed_mps, secs): (f64, u64) = if config.quick {
        (25.0, 60)
    } else {
        (15.0, 140)
    };
    // Drive on the shared clock loop: every 100 ms tick repositions the
    // client and runs the A3 check before the engine advances, and the
    // delivered bits are binned into a per-second trace.
    let mut trace = vec![0.0f64; secs as usize];
    let harness = SimHarness::new(Duration::from_millis(100), Instant::from_secs(secs));
    harness.run(
        &mut e,
        &mut trace,
        |e, _trace, now| {
            // Position arithmetic in whole-second + tenth-of-second
            // terms, so positions are unchanged from the historical
            // per-second loop (t + step/10 rounds differently from
            // millis/1000 in f64).
            let ms = now.as_millis();
            let (t, step) = (ms / 1_000, (ms % 1_000) / 100);
            let x = speed_mps * (t as f64 + step as f64 / 10.0);
            e.move_ue(0, Point::new(x, 40.0));
            e.check_handover(0, 3.0);
        },
        |trace, _u, delta_bits, at| {
            trace[((at.as_millis() - 1) / 1_000) as usize] += delta_bits as f64;
        },
    );
    (trace, e.handovers)
}

/// The same drive on Wi-Fi with the station pinned to its first AP.
pub fn wifi_drive(config: ExpConfig) -> Vec<f64> {
    let (speed_mps, secs): (f64, u64) = if config.quick {
        (25.0, 60)
    } else {
        (15.0, 140)
    };
    let seeds = SeedSeq::new(config.seed).child("roaming-wifi");
    let mut trace = Vec::new();
    let mut last = 0u64;
    // The Wi-Fi simulator's topology is immutable, so the drive is a
    // sequence of 1 s runs with the station repositioned between them —
    // association stays with AP 0 throughout (no roaming).
    let mut delivered_total = 0u64;
    for t in 0u64..secs {
        let mut s = corridor(config.seed);
        s.ues[0].position = Point::new(speed_mps * t as f64, 40.0);
        let mut e = WifiEngine::new(&s, WifiConfig::af_default(), seeds.child(&format!("s{t}")));
        e.enqueue(0, 1 << 30);
        e.run_until(Instant::from_secs(1));
        delivered_total += e.delivered_bytes()[0] * 8;
        trace.push((delivered_total - last) as f64);
        last = delivered_total;
    }
    trace
}

/// Run the roaming experiment.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("roaming");
    let (lte_trace, handovers) = lte_drive(config);
    let wifi_trace = wifi_drive(config);
    let rows: Vec<Vec<String>> = lte_trace
        .iter()
        .zip(&wifi_trace)
        .enumerate()
        .step_by(10)
        .map(|(t, (l, w))| vec![format!("{}", t * 15), fmt_bps(*l), fmt_bps(*w)])
        .collect();
    rep.text = table(&["position (m)", "CellFi", "Wi-Fi (pinned)"], &rows);
    let lte_min = lte_trace.iter().cloned().fold(f64::INFINITY, f64::min);
    let outage_wifi =
        wifi_trace.iter().filter(|&&v| v < 1_000.0).count() as f64 / wifi_trace.len() as f64;
    let outage_lte =
        lte_trace.iter().filter(|&&v| v < 1_000.0).count() as f64 / lte_trace.len() as f64;
    rep.text.push_str(&format!(
        "\nHandovers: {handovers}; CellFi worst second: {}; outage seconds: CellFi \
         {:.0}% vs pinned Wi-Fi {:.0}% — the session survives the whole corridor \
         only with LTE-style roaming (§7).\n",
        fmt_bps(lte_min),
        outage_lte * 100.0,
        outage_wifi * 100.0,
    ));
    rep.record("handovers", handovers as f64);
    rep.record("outage_lte", outage_lte);
    rep.record("outage_wifi", outage_wifi);
    rep.record("lte_min_bps", lte_min);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "long drive simulation; run with --ignored or the exp binary"]
    fn roaming_keeps_the_session_alive() {
        let r = run(ExpConfig {
            seed: 17,
            quick: true,
        });
        assert!(r.values["handovers"] >= 1.0, "no handover on a 900 m drive");
        assert!(
            r.values["outage_lte"] < 0.15,
            "CellFi outage {:.2}",
            r.values["outage_lte"]
        );
        assert!(
            r.values["outage_wifi"] > r.values["outage_lte"],
            "pinned Wi-Fi should suffer more outage"
        );
    }
}
