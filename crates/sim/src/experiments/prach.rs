//! §6.3.3: PRACH preamble detection.
//!
//! Two claims to reproduce with the real detector over synthetic I/Q:
//!
//! * preambles are detected reliably at −10 dB SNR without knowing the
//!   sequence number or timing;
//! * the two-correlation detector is fast — the paper's ran 16× faster
//!   than line rate on an i7 (ours reports its own ratio; see also the
//!   `prach_detector` Criterion bench).

use super::{ExpConfig, ExpReport};
use crate::report::table;
use cellfi_lte::prach::{awgn_channel, noise_only, preamble, zc_root, PrachDetector, N_ZC};
use cellfi_types::rng::SeedSeq;
use cellfi_types::units::Db;
use rand::SeedableRng;

/// Detection probability at one SNR over `trials` Monte-Carlo runs.
pub fn detection_probability(snr: Db, trials: u32, seed: u64) -> f64 {
    let det = PrachDetector::new(129);
    let root = zc_root(129);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut hits = 0;
    for t in 0..trials {
        let tx = preamble(&root, (t as usize * 37) % N_ZC);
        let rx = awgn_channel(&tx, (t as usize * 91) % N_ZC, snr, &mut rng);
        if det.detect(&rx).detected {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(trials)
}

/// Run the PRACH experiment.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("prach");
    let seeds = SeedSeq::new(config.seed).child("prach");
    let trials = if config.quick { 12 } else { 60 };

    let snrs = [-20.0, -16.0, -13.0, -10.0, -7.0, -4.0, 0.0];
    let mut rows = Vec::new();
    let mut at_minus10 = 0.0;
    for (i, &snr) in snrs.iter().enumerate() {
        let p = detection_probability(Db(snr), trials, seeds.seed_indexed("snr", i as u64));
        if (snr - (-10.0)).abs() < 1e-9 {
            at_minus10 = p;
        }
        rows.push(vec![format!("{snr:.0}"), format!("{:.0}%", p * 100.0)]);
    }

    // False alarms on pure noise.
    let det = PrachDetector::new(129);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seeds.seed("noise"));
    let fa_trials = if config.quick { 20 } else { 100 };
    let alarms = (0..fa_trials)
        .filter(|_| det.detect(&noise_only(N_ZC, &mut rng)).detected)
        .count();

    // Speed (the paper's 16×-line-rate claim) is a wall-clock
    // measurement, so it does not belong in this report: experiment
    // output is byte-reproducible across runs and thread counts, and a
    // timing never is. `exp --bench` (BENCH_engine.json) and the
    // `prach_detector` Criterion bench carry the line-rate factor.
    rep.text = table(&["SNR (dB)", "detection"], &rows);
    rep.text.push_str(&format!(
        "\nDetection at -10 dB: {:.0}% (paper [21]: reliable at -10 dB)\n\
         False alarms on noise: {alarms}/{fa_trials}\n\
         Detector speed: see BENCH_engine.json (`exp --bench`) or the \
         prach_detector Criterion bench (paper: 16x line rate on an i7).\n",
        at_minus10 * 100.0
    ));
    rep.record("detection_at_minus10", at_minus10);
    rep.record("false_alarms", alarms as f64);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_curve_is_a_waterfall() {
        let low = detection_probability(Db(-25.0), 10, 1);
        let mid = detection_probability(Db(-10.0), 10, 2);
        let high = detection_probability(Db(0.0), 10, 3);
        assert!(low < 0.5, "low-SNR detection {low}");
        assert!(mid >= 0.9, "-10 dB detection {mid}");
        assert!(high >= 0.9);
    }

    #[test]
    fn report_carries_headline_values() {
        let r = run(ExpConfig {
            seed: 2,
            quick: true,
        });
        assert!(r.values["detection_at_minus10"] >= 0.9);
        assert_eq!(r.values["false_alarms"], 0.0);
        // Speed is deliberately NOT in the report: timings are not
        // byte-reproducible. BENCH_engine.json carries the line rate.
        assert!(!r.values.contains_key("line_rate_ratio"));
    }
}
