//! §6.3.4 "Overheads of signaling".
//!
//! "CellFi uses mode 3-0 higher layer configured sub-band CQI feedback
//! reports, which consists of 1 wideband CQI value (4 bits) and 13
//! sub-band CQI values (2 bits). The payload size for a single mode 3-0
//! report on a 5 MHz channel is 20 bits per report. The overhead of
//! signaling is 10 Kbps on the uplink for a reporting period of 2 ms."
//!
//! We report the paper's quoted figure alongside the raw field layout
//! (4 + 13×2 = 30 bits, i.e. 15 kbps) — the quoted 20 bits reflects the
//! standard's compressed sub-band encoding; both are negligible against
//! the uplink capacity, which is the point.

use super::{ExpConfig, ExpReport};
use crate::report::{fmt_bps, table};
use cellfi_lte::amc::CqiTable;
use cellfi_lte::cqi::{overhead_bps, CqiReporter, PAPER_REPORT_BITS};
use cellfi_lte::grid::{ChannelBandwidth, ResourceGrid};
use cellfi_lte::tdd::TddConfig;
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::Db;

/// Run the signalling-overhead accounting.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("overhead");
    let grid = ResourceGrid::new(ChannelBandwidth::Mhz5);
    let reporter = CqiReporter::default();
    let report = reporter.report(Instant::ZERO, &[Db(10.0); 13]);

    let paper_bps = overhead_bps(PAPER_REPORT_BITS, Duration::CQI_PERIOD);
    let raw_bps = overhead_bps(report.raw_bits(), Duration::CQI_PERIOD);

    // Uplink capacity for context: 2 UL subframes per frame at a mid CQI.
    let ul_capacity = CqiTable.efficiency(cellfi_lte::amc::Cqi(7))
        * grid.total_data_res_per_subframe()
        * TddConfig::paper_default().ul_fraction()
        * 1000.0;

    rep.text = table(
        &["quantity", "value"],
        &[
            vec![
                "sub-bands on 5 MHz".into(),
                report.subband_diff.len().to_string(),
            ],
            vec![
                "raw report bits (4 + 13×2)".into(),
                report.raw_bits().to_string(),
            ],
            vec![
                "paper-quoted report bits".into(),
                PAPER_REPORT_BITS.to_string(),
            ],
            vec![
                "reporting period".into(),
                format!("{}", Duration::CQI_PERIOD),
            ],
            vec!["paper overhead".into(), fmt_bps(paper_bps)],
            vec!["raw-layout overhead".into(), fmt_bps(raw_bps)],
            vec!["uplink capacity (CQI 7)".into(), fmt_bps(ul_capacity)],
            vec![
                "overhead / capacity".into(),
                format!("{:.2}%", raw_bps / ul_capacity * 100.0),
            ],
        ],
    );
    rep.record("paper_overhead_bps", paper_bps);
    rep.record("raw_overhead_bps", raw_bps);
    rep.record("overhead_fraction_of_ul", raw_bps / ul_capacity);
    // The accounting is closed-form field arithmetic — no sampling, so
    // the run config cannot change it; say so explicitly.
    rep.text.push_str(&format!(
        "\nNote: overhead is closed-form field accounting; --seed {} and {} \
         mode do not alter this report.\n",
        config.seed,
        if config.quick { "--quick" } else { "full" },
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_is_10kbps() {
        let r = run(ExpConfig::default());
        assert_eq!(r.values["paper_overhead_bps"], 10_000.0);
        assert_eq!(r.values["raw_overhead_bps"], 15_000.0);
    }

    #[test]
    fn overhead_is_negligible_against_uplink() {
        let r = run(ExpConfig::default());
        assert!(
            r.values["overhead_fraction_of_ul"] < 0.05,
            "overhead fraction {}",
            r.values["overhead_fraction_of_ul"]
        );
    }
}
