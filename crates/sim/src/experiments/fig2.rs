//! Figure 2: Wi-Fi MAC inefficiencies at long range (§3.2).
//!
//! The paper simulates the *same* network layout twice: as an 802.11ac
//! home network (short range — lower power, worse indoor propagation)
//! and as an 802.11af outdoor network (higher power, urban propagation),
//! both on 20 MHz channels with RTS/CTS, with "the same number of
//! clients within the corresponding range of each access point" and
//! "the average SNR at the receiver ... same in both scenarios". The
//! 802.11af client-throughput CDF comes out far worse: the hidden/
//! exposed-terminal and channel-acquisition problems grow with range.
//!
//! We reproduce exactly that construction: one normalized layout,
//! instantiated at two geometric scales with the matching propagation
//! model and powers, so per-link SNRs match by design and only the
//! MAC-vs-geometry interaction differs.

use super::harness;
use super::{ExpConfig, ExpReport};
use crate::metrics::Cdf;
use crate::report::{cdf_plot, fmt_bps};
use crate::topology::{Scenario, ScenarioConfig};
use crate::wifi_engine::WifiEngine;
use cellfi_propagation::fading::BlockFading;
use cellfi_propagation::noise::NoiseModel;
use cellfi_propagation::pathloss::PathLossModel;
use cellfi_propagation::shadowing::Shadowing;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::Instant;
use cellfi_types::units::{Db, Dbm, Hertz};
use cellfi_wifi::sim::WifiConfig;

/// Shrink every client's offset from its AP by `factor`, keeping the AP
/// layout fixed — the paper's construction: "the same network of access
/// points ... the same number of clients within the corresponding range
/// of each access point". The 802.11ac home network has the same AP
/// sites but tiny cells, so neighbouring networks drop out of each
/// other's interference range; 802.11af's kilometre cells do not.
fn shrink_cells(s: &Scenario, factor: f64) -> Scenario {
    let mut out = s.clone();
    for (u, ue) in out.ues.iter_mut().enumerate() {
        let ap = s.aps[s.assoc[u]].position;
        ue.position.x = ap.x + (ue.position.x - ap.x) * factor;
        ue.position.y = ap.y + (ue.position.y - ap.y) * factor;
    }
    out
}

/// Run the Fig 2 comparison.
pub fn run(config: ExpConfig) -> ExpReport {
    let mut rep = ExpReport::new("fig2");
    let (n_runs, horizon) = if config.quick {
        (2, Instant::from_millis(2_000))
    } else {
        (10, Instant::from_secs(10))
    };
    // Each run is an independent re-drop of the paired layout, so fan
    // the runs out and pool in run order (the historical serial loop's
    // order and seed lineage).
    let per_run = harness::fan_out(
        config.seed,
        "fig2",
        n_runs,
        |i| format!("run{i}"),
        |_, run_seeds| {
            // Outdoor 802.11af scenario: 2×2 km, urban propagation, 30 dBm.
            let mut cfg = ScenarioConfig::paper_default(6, 4);
            cfg.cell_radius = 600.0;
            cfg.shadowing_sigma = 0.0; // equal-SNR construction needs exact scaling
            cfg.fading = true;
            let outdoor = Scenario::generate(cfg, run_seeds);
            // Indoor 802.11ac scenario: same AP sites, client offsets shrunk
            // 7×, indoor propagation, 20 dBm. The shrink factor is chosen so
            // the *per-link mean SNR matches* the outdoor case (checked in
            // tests), isolating the MAC-vs-range interaction.
            let mut indoor = shrink_cells(&outdoor, 1.0 / 7.0);
            indoor.env.pathloss = PathLossModel::IndoorOffice {
                wall_loss: Db(10.0),
            };
            indoor.env.shadowing = Shadowing::disabled(run_seeds.child("ind-shadow"));
            indoor.env.fading = BlockFading::pedestrian(run_seeds.child("ind-fading"));
            indoor.env.noise = NoiseModel::typical();
            indoor.env.frequency = Hertz(5.2e9);
            indoor.config.ap_power = Dbm(20.0);

            // Both on 20 MHz with RTS/CTS, per the paper.
            let af_cfg = WifiConfig {
                band: cellfi_wifi::phy::WifiBand::Ac20,
                rts_cts: true,
                ..WifiConfig::af_default()
            };
            let mut ac_cfg = af_cfg;
            ac_cfg.band = cellfi_wifi::phy::WifiBand::Ac20;

            let mut af = WifiEngine::new(&outdoor, af_cfg, run_seeds.child("af"));
            af.backlog_all(1 << 30);
            af.run_until(horizon);

            // The indoor run uses the scenario's own (20 dBm) AP power, so it
            // bypasses WifiEngine's paper-pinned 30 dBm.
            let ac = indoor_ac_throughputs(&indoor, ac_cfg, run_seeds, horizon);
            (af.throughputs_bps(), ac)
        },
    );
    let mut af_tputs = Vec::new();
    let mut ac_tputs = Vec::new();
    for (af, ac) in per_run {
        af_tputs.extend(af);
        ac_tputs.extend(ac);
    }
    let af_cdf = Cdf::new(af_tputs.iter().map(|t| t / 1e6).collect());
    let ac_cdf = Cdf::new(ac_tputs.iter().map(|t| t / 1e6).collect());
    rep.text = cdf_plot(
        "Fig 2: client throughput CDF, 802.11af (outdoor) vs 802.11ac (indoor)",
        "client throughput (Mbps)",
        &[("802.11af", &af_cdf), ("802.11ac", &ac_cdf)],
        60,
    );
    rep.text.push_str(&format!(
        "\nMedian: 802.11af {} vs 802.11ac {} — the same MAC on the same layout \
         collapses at range (paper Fig 2 shows the same separation).\n",
        fmt_bps(af_cdf.median_or(0.0) * 1e6),
        fmt_bps(ac_cdf.median_or(0.0) * 1e6),
    ));
    rep.record("af_median_mbps", af_cdf.median_or(0.0));
    rep.record("ac_median_mbps", ac_cdf.median_or(0.0));
    rep.record(
        "ac_to_af_median_ratio",
        ac_cdf.median_or(0.0) / af_cdf.median_or(0.0).max(1e-9),
    );
    rep
}

fn indoor_ac_throughputs(
    indoor: &Scenario,
    cfg: WifiConfig,
    seeds: SeedSeq,
    horizon: Instant,
) -> Vec<f64> {
    use cellfi_wifi::sim::WifiSimulator;
    let mut sim = WifiSimulator::new(
        indoor.env,
        cfg,
        indoor.aps.clone(),
        indoor.config.ap_power,
        indoor.ues.clone(),
        indoor.assoc.clone(),
        seeds.seed("ac-sim"),
    );
    for u in 0..indoor.n_ues() {
        sim.enqueue(u, 1 << 30);
    }
    sim.run_until(horizon);
    let t = horizon.as_secs_f64();
    sim.stats()
        .delivered_bytes
        .iter()
        .map(|&b| b as f64 * 8.0 / t)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snr_matching_construction_holds() {
        // The 7× cell shrink with 20 dBm and indoor propagation must
        // give per-link SNRs close to the outdoor 30 dBm urban case.
        let seeds = SeedSeq::new(9);
        let mut cfg = ScenarioConfig::paper_default(4, 3);
        cfg.shadowing_sigma = 0.0;
        let outdoor = Scenario::generate(cfg, seeds);
        let mut indoor = shrink_cells(&outdoor, 1.0 / 7.0);
        indoor.env.pathloss = PathLossModel::IndoorOffice {
            wall_loss: Db(10.0),
        };
        indoor.env.frequency = Hertz(5.2e9);
        let bw = Hertz::from_mhz(20.0);
        let mut diffs = Vec::new();
        for (u, ue) in outdoor.ues.iter().enumerate() {
            let ap = outdoor.assoc[u];
            let snr_out = outdoor
                .env
                .mean_snr(&outdoor.aps[ap], Dbm(30.0), ue, bw)
                .value();
            let snr_in = indoor
                .env
                .mean_snr(&indoor.aps[ap], Dbm(20.0), &indoor.ues[u], bw)
                .value();
            diffs.push((snr_out - snr_in).abs());
        }
        let mean_diff = diffs.iter().sum::<f64>() / diffs.len() as f64;
        assert!(mean_diff < 8.0, "mean per-link SNR gap {mean_diff} dB");
    }

    #[test]
    fn af_underperforms_ac_at_equal_snr() {
        let r = run(ExpConfig {
            seed: 5,
            quick: true,
        });
        assert!(
            r.values["ac_to_af_median_ratio"] > 1.3,
            "802.11ac should beat 802.11af clearly, ratio {}",
            r.values["ac_to_af_median_ratio"]
        );
    }
}
