//! Deterministic scoped-thread work splitting.
//!
//! Every parallel construct in the simulator goes through this module:
//! a hand-rolled chunked splitter over [`std::thread::scope`], with no
//! external thread-pool dependency. Work items are split into contiguous
//! index chunks, one per worker, and results always land in input order
//! — so any reduction over the output is byte-identical to a serial run
//! regardless of thread count or scheduling.
//!
//! The worker count comes from, in precedence order:
//! 1. a thread-local override installed by [`with_threads`] (used by the
//!    determinism tests to compare 1-thread and N-thread runs
//!    in-process),
//! 2. the `CELLFI_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Nothing here affects *what* is computed — only who computes it. Code
//! that consumes RNG state must therefore never run under these helpers;
//! the engine keeps all random draws on the caller's thread (per-entity
//! streams) and parallelises only pure math.

use std::cell::Cell;

thread_local! {
    /// Per-thread worker-count override (see [`with_threads`]).
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker count parallel helpers will use on this thread.
pub fn configured_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Some(n) = std::env::var("CELLFI_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` with the worker count pinned to `n` on this thread (workers
/// spawned by [`map_indexed`] receive their share of the pinned budget
/// for their own nested splits). Restores the previous setting on exit,
/// including on panic.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Split `0..n` into at most `threads` contiguous chunks of near-equal
/// size. Returns `(start, end)` pairs covering the range in order.
fn chunk_bounds(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.clamp(1, n.max(1));
    let chunk = n.div_ceil(threads);
    (0..n)
        .step_by(chunk.max(1))
        .map(|start| (start, (start + chunk).min(n)))
        .collect()
}

/// Ordered parallel map over `0..n`: `out[i] = f(i)`, computed on up to
/// [`configured_threads`] workers. `f` must be pure with respect to
/// invocation order — results are identical to `(0..n).map(f).collect()`
/// for any thread count.
pub fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = configured_threads();
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(n, || None);
    let bounds = chunk_bounds(n, threads);
    // Workers split the caller's thread budget between them: once the
    // fan-out saturates the budget, nested splits inside each worker
    // stay serial instead of oversubscribing the machine.
    let nested = (threads / bounds.len()).max(1);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest: &mut [Option<R>] = &mut out;
        let mut start = 0;
        for (lo, hi) in bounds {
            let (slots, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            scope.spawn(move || {
                with_threads(nested, || {
                    for (j, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(start + j));
                    }
                })
            });
            start = hi;
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Parallel in-place update of disjoint rows: `f(i, &mut rows[i])` for
/// every row, chunked across workers. Rows smaller than
/// `min_rows_per_thread` per worker stay serial — spawning threads for
/// trivial row work costs more than it saves.
pub fn for_each_row<T, F>(rows: &mut [T], min_rows_per_thread: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = rows.len();
    let threads = configured_threads()
        .min(n / min_rows_per_thread.max(1))
        .max(1);
    if threads <= 1 {
        for (i, row) in rows.iter_mut().enumerate() {
            f(i, row);
        }
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = rows;
        let mut start = 0;
        for (lo, hi) in chunk_bounds(n, threads) {
            let (chunk, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            scope.spawn(move || {
                // Row work is a leaf: nested helpers inside `f` must not
                // re-spawn on top of an already-saturated fan-out.
                with_threads(1, || {
                    for (j, row) in chunk.iter_mut().enumerate() {
                        f(start + j, row);
                    }
                })
            });
            start = hi;
        }
    });
}

/// Parallel in-place update of a flat slab split at fixed `chunk_len`
/// boundaries: `f(c, chunk)` receives chunk index `c` and the mutable
/// sub-slice `data[c*chunk_len..(c+1)*chunk_len]`. This is the strided
/// analogue of [`for_each_row`] for slab-backed tensors: the data is one
/// contiguous allocation and workers take whole chunks, so a chunk index
/// maps to a semantic row (e.g. one UE's gain block) for any thread
/// count. `data.len()` must be a multiple of `chunk_len`. Chunks smaller
/// than `min_chunks_per_thread` per worker stay serial.
pub fn for_each_chunk<F>(data: &mut [f64], chunk_len: usize, min_chunks_per_thread: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "slab length must divide into whole chunks"
    );
    let n = data.len() / chunk_len;
    let threads = configured_threads()
        .min(n / min_chunks_per_thread.max(1))
        .max(1);
    if threads <= 1 {
        for (c, chunk) in data.chunks_exact_mut(chunk_len).enumerate() {
            f(c, chunk);
        }
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut start = 0;
        for (lo, hi) in chunk_bounds(n, threads) {
            let (span, tail) = rest.split_at_mut((hi - lo) * chunk_len);
            rest = tail;
            scope.spawn(move || {
                with_threads(1, || {
                    for (j, chunk) in span.chunks_exact_mut(chunk_len).enumerate() {
                        f(start + j, chunk);
                    }
                })
            });
            start = hi;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_in_order() {
        for n in [0usize, 1, 2, 7, 8, 9, 100] {
            for threads in [1usize, 2, 3, 8, 200] {
                let bounds = chunk_bounds(n, threads);
                let mut next = 0;
                for (lo, hi) in &bounds {
                    assert_eq!(*lo, next, "gap at n={n} threads={threads}");
                    assert!(hi > lo);
                    next = *hi;
                }
                assert_eq!(next, n, "coverage at n={n} threads={threads}");
                assert!(bounds.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn map_results_are_ordered_for_any_thread_count() {
        let serial: Vec<u64> = (0..97).map(|i| (i as u64) * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 16] {
            let parallel = with_threads(threads, || map_indexed(97, |i| (i as u64) * 3 + 1));
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn for_each_row_touches_every_row_once() {
        for threads in [1, 2, 5] {
            let mut rows = vec![0u32; 53];
            with_threads(threads, || {
                for_each_row(&mut rows, 1, |i, row| *row += i as u32 + 1)
            });
            let expect: Vec<u32> = (0..53).map(|i| i + 1).collect();
            assert_eq!(rows, expect, "threads={threads}");
        }
    }

    #[test]
    fn small_inputs_stay_serial() {
        // min_rows_per_thread larger than the input: must not spawn (we
        // can't observe spawning directly, but the path must still work).
        let mut rows = vec![1i32; 3];
        with_threads(8, || for_each_row(&mut rows, 64, |_, row| *row *= 2));
        assert_eq!(rows, vec![2, 2, 2]);
    }

    #[test]
    fn for_each_chunk_is_thread_count_independent() {
        let chunk_len = 7;
        let n_chunks = 23;
        let mut serial = vec![0.0f64; chunk_len * n_chunks];
        for_each_chunk(&mut serial, chunk_len, usize::MAX, |c, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (c * 100 + k) as f64;
            }
        });
        for threads in [1, 2, 3, 8] {
            let mut par = vec![0.0f64; chunk_len * n_chunks];
            with_threads(threads, || {
                for_each_chunk(&mut par, chunk_len, 1, |c, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (c * 100 + k) as f64;
                    }
                })
            });
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let outer = configured_threads();
        with_threads(3, || {
            assert_eq!(configured_threads(), 3);
            with_threads(2, || assert_eq!(configured_threads(), 2));
            assert_eq!(configured_threads(), 3);
        });
        assert_eq!(configured_threads(), outer);
    }
}
