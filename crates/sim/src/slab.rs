//! Flat strided slabs for the PHY hot path.
//!
//! The engine's gain tensors were nested `Vec<Vec<Vec<f64>>>`: every inner
//! access chased two pointers and the per-(UE, AP) subchannel lanes were
//! scattered across the heap, defeating both the prefetcher and the
//! autovectorizer. [`Slab2`] and [`Slab3`] store the same data in one
//! contiguous `Vec<f64>` with index math, so hot loops iterate lanes as
//! plain slices and `parallel` can split work at stride boundaries.
//!
//! Indexing scheme (row-major, last axis fastest):
//!
//! * `Slab2[i][j]`   → `data[i * cols + j]`
//! * `Slab3[i][j][k]` → `data[(i * d1 + j) * d2 + k]`
//!
//! The engine's conventions: link matrices are `Slab2` indexed
//! `[ue][ap]` (or `[ap][ap]`), gain tensors are `Slab3` indexed
//! `[ue][ap][subchannel]` so one (UE, AP) subchannel lane is contiguous.

/// A dense 2-D array of `f64` in one allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Slab2 {
    data: Vec<f64>,
    cols: usize,
}

impl Slab2 {
    /// A `rows × cols` slab filled with `fill`.
    pub fn new(rows: usize, cols: usize, fill: f64) -> Slab2 {
        Slab2 {
            data: vec![fill; rows * cols],
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    /// Number of columns (the contiguous axis).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `[i][j]`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Mutable element at `[i][j]`.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }

    /// Store `v` at `[i][j]`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole slab as one slice (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole slab as one mutable slice (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// A dense 3-D array of `f64` in one allocation; the last axis is the
/// contiguous "lane".
#[derive(Debug, Clone, PartialEq)]
pub struct Slab3 {
    data: Vec<f64>,
    d1: usize,
    d2: usize,
}

impl Slab3 {
    /// A `d0 × d1 × d2` slab filled with `fill`.
    pub fn new(d0: usize, d1: usize, d2: usize, fill: f64) -> Slab3 {
        Slab3 {
            data: vec![fill; d0 * d1 * d2],
            d1,
            d2,
        }
    }

    /// Extent of the middle axis.
    pub fn dim1(&self) -> usize {
        self.d1
    }

    /// Extent of the lane (last) axis.
    pub fn dim2(&self) -> usize {
        self.d2
    }

    /// Length of one outer block (`d1 × d2` elements): the unit the
    /// parallel splitter chunks by.
    pub fn block_len(&self) -> usize {
        self.d1 * self.d2
    }

    /// Element at `[i][j][k]`.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[(i * self.d1 + j) * self.d2 + k]
    }

    /// Lane `[i][j][..]` as a contiguous slice.
    #[inline]
    pub fn lane(&self, i: usize, j: usize) -> &[f64] {
        let base = (i * self.d1 + j) * self.d2;
        &self.data[base..base + self.d2]
    }

    /// Lane `[i][j][..]` as a mutable contiguous slice.
    #[inline]
    pub fn lane_mut(&mut self, i: usize, j: usize) -> &mut [f64] {
        let base = (i * self.d1 + j) * self.d2;
        &mut self.data[base..base + self.d2]
    }

    /// The whole slab as one slice (lane-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole slab as one mutable slice (lane-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// A dense 2-D array of `u32` indices in one allocation: the engine's
/// neighbor-indirection table. Row `ue` holds that UE's candidate-AP
/// ids, one per neighbor slot, padded to a uniform `cols` stride so the
/// table is layout-compatible with the `[ue][neighbor_slot][subchannel]`
/// gain slabs ([`Slab3`] with `d1 == cols`). Rows are kept sorted
/// ascending by the builder, so [`IndexSlab::position`] can binary-search
/// a reverse mapping. All `ue * cols + slot` stride math lives here (see
/// the `slab` lint rule).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSlab {
    data: Vec<u32>,
    cols: usize,
}

impl IndexSlab {
    /// A `rows × cols` index table filled with `fill`.
    pub fn new(rows: usize, cols: usize, fill: u32) -> IndexSlab {
        IndexSlab {
            data: vec![fill; rows * cols],
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    /// Number of columns (the uniform slot stride).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `[i][j]`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> u32 {
        self.data[i * self.cols + j]
    }

    /// Store `v` at `[i][j]`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: u32) {
        self.data[i * self.cols + j] = v;
    }

    /// The first `len` slots of row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize, len: usize) -> &[u32] {
        let base = i * self.cols;
        &self.data[base..base + len]
    }

    /// The first `len` slots of row `i`, mutable.
    #[inline]
    pub fn row_mut(&mut self, i: usize, len: usize) -> &mut [u32] {
        let base = i * self.cols;
        &mut self.data[base..base + len]
    }

    /// The slot holding `value` within the first `len` (ascending-
    /// sorted) slots of row `i`, or `None` when the row does not contain
    /// it — the reverse mapping from a global AP id to its neighbor
    /// slot.
    #[inline]
    pub fn position(&self, i: usize, len: usize, value: u32) -> Option<usize> {
        self.row(i, len).binary_search(&value).ok()
    }
}

/// Fixed-width rows of `u64` bitmask words in one allocation: row `r`
/// holds bits `0..bits_per_row`, bit `b` living at bit `b % 64` of word
/// `b / 64`. The engine's per-subchannel transmitter-membership masks
/// (`TxSetTracker`) index this way; keeping the stride math here keeps
/// it out of the engine (see the `slab` lint rule).
#[derive(Debug, Clone, PartialEq)]
pub struct BitRows {
    words: Vec<u64>,
    words_per_row: usize,
}

impl BitRows {
    /// `rows` rows of `bits_per_row` bits each, all clear.
    pub fn new(rows: usize, bits_per_row: usize) -> BitRows {
        let words_per_row = bits_per_row.div_ceil(64).max(1);
        BitRows {
            words: vec![0; rows * words_per_row],
            words_per_row,
        }
    }

    /// Clear every bit of row `row`.
    #[inline]
    pub fn clear_row(&mut self, row: usize) {
        let base = row * self.words_per_row;
        self.words[base..base + self.words_per_row].fill(0);
    }

    /// Set bit `bit` of row `row`.
    #[inline]
    pub fn set(&mut self, row: usize, bit: usize) {
        self.words[row * self.words_per_row + bit / 64] |= 1u64 << (bit % 64);
    }

    /// Whether bit `bit` of row `row` is set.
    #[inline]
    pub fn get(&self, row: usize, bit: usize) -> bool {
        (self.words[row * self.words_per_row + bit / 64] >> (bit % 64)) & 1 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab2_round_trips_and_rows_are_contiguous() {
        let mut s = Slab2::new(3, 4, 0.0);
        assert_eq!((s.rows(), s.cols()), (3, 4));
        for i in 0..3 {
            for j in 0..4 {
                *s.at_mut(i, j) = (i * 10 + j) as f64;
            }
        }
        assert_eq!(s.at(2, 3), 23.0);
        assert_eq!(s.row(1), &[10.0, 11.0, 12.0, 13.0]);
        s.row_mut(0)[2] = 99.0;
        assert_eq!(s.at(0, 2), 99.0);
        assert_eq!(s.as_slice().len(), 12);
    }

    #[test]
    fn slab3_lane_matches_element_indexing() {
        let mut s = Slab3::new(2, 3, 5, 0.0);
        assert_eq!(s.block_len(), 15);
        for i in 0..2 {
            for j in 0..3 {
                for (k, v) in s.lane_mut(i, j).iter_mut().enumerate() {
                    *v = (i * 100 + j * 10 + k) as f64;
                }
            }
        }
        assert_eq!(s.at(1, 2, 4), 124.0);
        assert_eq!(s.lane(0, 1), &[10.0, 11.0, 12.0, 13.0, 14.0]);
        // Row-major layout: flat offset matches index math (i=1, j=2,
        // k=4 with d1=3, d2=5).
        assert_eq!(s.as_slice()[(3 + 2) * 5 + 4], 124.0);
    }

    #[test]
    fn zero_sized_slabs_are_legal() {
        let s = Slab2::new(0, 7, 0.0);
        assert_eq!(s.rows(), 0);
        let t = Slab3::new(0, 2, 3, 0.0);
        assert_eq!(t.as_slice().len(), 0);
    }

    #[test]
    fn index_slab_rows_and_reverse_lookup() {
        let mut t = IndexSlab::new(2, 4, u32::MAX);
        assert_eq!((t.rows(), t.cols()), (2, 4));
        t.row_mut(0, 3).copy_from_slice(&[1, 4, 9]);
        t.set(1, 0, 7);
        assert_eq!(t.at(0, 1), 4);
        assert_eq!(t.row(0, 3), &[1, 4, 9]);
        assert_eq!(t.row(1, 1), &[7]);
        assert_eq!(t.position(0, 3, 4), Some(1));
        assert_eq!(t.position(0, 3, 9), Some(2));
        assert_eq!(t.position(0, 3, 5), None);
        // Padding past `len` is invisible to lookups.
        assert_eq!(t.position(0, 3, u32::MAX), None);
    }

    #[test]
    fn bitrows_set_get_clear_across_word_boundaries() {
        let mut b = BitRows::new(2, 130);
        b.set(0, 5);
        b.set(0, 64);
        b.set(0, 129);
        b.set(1, 0);
        assert!(b.get(0, 5) && b.get(0, 64) && b.get(0, 129));
        assert!(!b.get(0, 63) && !b.get(0, 128));
        assert!(b.get(1, 0) && !b.get(1, 5));
        b.clear_row(0);
        assert!(!b.get(0, 5) && !b.get(0, 64) && !b.get(0, 129));
        assert!(b.get(1, 0), "clearing one row leaves others intact");
    }
}
