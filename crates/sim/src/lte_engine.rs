//! The LTE system simulator.
//!
//! A 1 ms subframe loop over the cells and clients of a [`Scenario`],
//! with the interference-management layer switchable between the three
//! systems the paper compares (§6.3.4):
//!
//! * [`ImMode::PlainLte`] — every cell schedules the full channel with no
//!   coordination: the §3.2 baseline whose cell-edge clients drown in
//!   inter-cell interference;
//! * [`ImMode::CellFi`] — each cell runs the distributed
//!   [`InterferenceManager`] every second, fed by PRACH-overheard client
//!   counts and (imperfect) CQI-drop interference detection;
//! * [`ImMode::Oracle`] — a centralized FERMI-style allocator with
//!   perfect knowledge of the true conflict graph, recomputed each epoch.
//!
//! Per downlink subframe, each cell runs the standard PF scheduler over
//! its allowed subchannels using CQI-derived rates; transport blocks are
//! then resolved against the *actual* SINR (other cells' concurrent
//! transmissions on the same subchannel) through a per-UE HARQ entity
//! with chase combining. Control-channel interference from neighbouring
//! radios is applied as the measured Fig 7(b) retention factor.
//!
//! Positions are static within a run, so the engine precomputes the
//! mean-gain matrices at construction and refreshes the per-subchannel
//! fading realization once per coherence block — the simulation is exact
//! with respect to the propagation model but ~100× faster than
//! recomputing link budgets per sample.

use crate::topology::Scenario;
use cellfi_core::manager::{ClientEpochStats, EpochInput, InterferenceManager};
use cellfi_core::oracle::OracleAllocator;
use cellfi_core::sensing::ImperfectSensing;
use cellfi_core::ConflictGraph;
use cellfi_lte::amc::{Cqi, CqiTable};
use cellfi_lte::cell::{Cell, CellConfig};
use cellfi_lte::control::signalling_retention;
use cellfi_lte::earfcn::{Band, Earfcn};
use cellfi_lte::grid::{ChannelBandwidth, ResourceGrid};
use cellfi_lte::harq::{HarqEntity, HarqOutcome};
use cellfi_lte::prach;
use cellfi_lte::scheduler::SchedulerKind;
use cellfi_lte::tdd::TddConfig;
use cellfi_obs::profile::SpanId;
use cellfi_obs::trace::{Event, EventSink};
use cellfi_obs::Obs;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::{Db, Dbm};
use cellfi_types::{ApId, SubchannelId, UeId};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Which interference-management system runs on top of the LTE stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImMode {
    /// Uncoordinated LTE: all cells use all subchannels.
    PlainLte,
    /// The paper's distributed interference management.
    CellFi,
    /// Centralized oracle with true-conflict-graph knowledge.
    Oracle,
    /// LAA/MulteFire-style listen-before-talk: a cell transmits (on the
    /// whole channel) only after sensing the medium idle, holds it for
    /// one maximum channel-occupancy time, then re-contends with a
    /// random backoff. The paper argues (§8) this "will face similar MAC
    /// inefficiencies as 802.11af" at TVWS ranges — this mode lets the
    /// claim be tested.
    Laa,
    /// Conventional coordinated LTE (§4.3): neighbouring cells exchange
    /// demands and masks over X2 and colour the channel sequentially.
    /// Single-operator only — "in CellFi, coordination is hard to enforce
    /// because multiple cellular providers are sharing the spectrum" —
    /// and every epoch costs explicit messages, which the engine counts
    /// in [`LteEngine::x2_messages`].
    X2Icic,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct LteEngineConfig {
    /// Interference-management mode.
    pub mode: ImMode,
    /// Channel bandwidth (paper: 5 MHz).
    pub bandwidth: ChannelBandwidth,
    /// Sensing error model fed to CellFi (paper: 80 % detect, 2 % FP).
    pub sensing: ImperfectSensing,
    /// CellFi manager tuning.
    pub manager: cellfi_core::manager::ManagerConfig,
    /// Interference ground truth: a subchannel counts as interfered when
    /// concurrent foreign transmissions depress SINR at least this much
    /// below the clean SNR.
    pub interference_margin: Db,
}

impl LteEngineConfig {
    /// The paper's settings for a given mode.
    pub fn paper_default(mode: ImMode) -> LteEngineConfig {
        LteEngineConfig {
            mode,
            bandwidth: ChannelBandwidth::Mhz5,
            sensing: ImperfectSensing::default(),
            manager: cellfi_core::manager::ManagerConfig::default(),
            interference_margin: Db(3.0),
        }
    }
}

/// Per-UE epoch accounting (reset every second).
#[derive(Debug, Clone)]
struct UeEpoch {
    sched_subframes: Vec<u64>,
    interfered: Vec<bool>,
}

/// The system simulator.
#[derive(Debug)]
pub struct LteEngine {
    scenario: Scenario,
    config: LteEngineConfig,
    grid: ResourceGrid,
    tdd: TddConfig,
    table: CqiTable,
    cells: Vec<Cell>,
    managers: Vec<InterferenceManager>,
    now: Instant,
    /// Latest per-subchannel CQI per UE.
    ue_cqi: Vec<Vec<Cqi>>,
    harq: Vec<HarqEntity>,
    delivered: Vec<u64>,
    enqueued: Vec<u64>,
    retention: Vec<f64>,
    epoch: Vec<UeEpoch>,
    free_streak: Vec<Vec<u32>>,
    dl_subframes_this_epoch: u64,
    /// Per-UE RNG streams (HARQ decode draws, sensing observation).
    /// One independent stream per entity keeps draw sequences stable no
    /// matter which order — or on which thread — entities are visited.
    ue_rng: Vec<StdRng>,
    /// Per-cell RNG streams (LBT backoff draws).
    lbt_rng: Vec<StdRng>,
    /// Transmitting cells of the previous subframe, per subchannel.
    tx_last: Vec<Vec<usize>>,
    /// HARQ drops per UE.
    pub harq_drops: Vec<u64>,

    // ---- static link caches (positions never move within a run) ----
    /// Mean downlink rx power (dBm) per [ue][ap] at AP power.
    dl_mean_dbm: Vec<Vec<f64>>,
    /// Mean uplink SNR (dB) per [ue][ap] at UE power over the channel
    /// (drives PRACH hearing).
    ul_snr_db: Vec<Vec<f64>>,
    /// Per-subchannel noise floor, mW.
    noise_mw: Vec<f64>,
    /// Instantaneous linear rx power (mW) per [ue][ap][sc], refreshed per
    /// fading coherence block.
    lin_mw: Vec<Vec<Vec<f64>>>,
    fading_block: u64,
    /// Generation counter for `lin_mw`: bumped whenever any cached gain
    /// changes (fading block roll, client move) so dependent caches can
    /// tell stale from fresh without comparing the tensor itself.
    gain_gen: u64,
    /// Memoized per-subchannel interference accumulation over `lin_mw`.
    interf: InterferenceCache,
    /// True conflict graph (static; used by the oracle).
    conflict: ConflictGraph,
    /// Mean AP→AP rx power (dBm) at AP power — the LBT sensing input.
    ap_mean_dbm: Vec<Vec<f64>>,
    /// Mean uplink rx power (dBm) per [ue][ap] at *full* UE power; a UE
    /// concentrating into fewer subchannels splits this across only its
    /// granted ones (§3.1's single-carrier uplink advantage).
    ul_mean_dbm: Vec<Vec<f64>>,
    /// Uplink queues (bits) per UE.
    ul_queue: Vec<u64>,
    /// Uplink delivered bits per UE.
    ul_delivered: Vec<u64>,
    /// Uplink HARQ entity per UE.
    ul_harq: Vec<HarqEntity>,
    /// Uplink PF scheduler per cell (independent of the downlink one).
    ul_scheduler: Vec<cellfi_lte::scheduler::Scheduler>,
    /// Total X2 messages exchanged (X2Icic mode): the explicit-
    /// coordination cost CellFi's passive sensing avoids.
    pub x2_messages: u64,
    /// Handovers executed (mobility support, §7 "Mobility and roaming").
    pub handovers: u64,
    /// Consecutive milliseconds each UE has been unable to decode any
    /// subchannel while backlogged (drives RRC drops).
    bad_streak_ms: Vec<u32>,
    /// UEs in radio-link-failure outage until the given instant.
    outage_until: Vec<Instant>,
    /// RRC drops per UE — the paper's "frequent disconnections" under
    /// strong interference (§3.2, §6.3.1).
    pub rrc_drops: Vec<u64>,
    /// LAA listen-before-talk state per cell.
    lbt: Vec<LbtState>,
    /// Observability bundle: tick-keyed event tracer, metrics registry,
    /// and injected-clock profiler. Disabled by default (near-zero cost);
    /// enable via [`LteEngine::obs_mut`].
    obs: Obs,
}

/// Listen-before-talk contention state of one cell (LAA mode).
#[derive(Debug, Clone, Copy, Default)]
struct LbtState {
    /// Remaining subframes of the current channel-occupancy grant.
    txop_remaining: u32,
    /// Backoff counter decremented on idle subframes.
    backoff: u32,
}

/// LAA energy-detect threshold (3GPP LBT category 4 for a 20 MHz carrier
/// is −72 dBm; we keep it for the 5 MHz carrier).
pub const LBT_THRESHOLD_DBM: f64 = -72.0;

/// LAA maximum channel-occupancy time, in 1 ms subframes (8 ms).
pub const LBT_MCOT_SUBFRAMES: u32 = 8;

/// LBT contention window (fixed, priority-class-3-like).
pub const LBT_CW: u32 = 15;

/// Memoized per-subchannel interference accumulation.
///
/// The engine's hottest loop sums, for every (UE, subchannel) pair, the
/// received power from every concurrently transmitting cell. With a
/// saturated PF scheduler the transmitter set of a subchannel is stable
/// for long stretches (masks only change at epoch boundaries, and a
/// backlogged cell transmits every subframe), and the gains themselves
/// only change when the fading block rolls — so the same sums were being
/// recomputed every CQI period. This cache keys each subchannel's column
/// of per-UE power totals by `(gain generation, transmitter set)` and
/// recomputes a column only when its key changes.
///
/// Totals include *every* transmitting cell — the serving cell too — so
/// the cache stays valid across handovers; callers subtract the serving
/// cell's own contribution when it is in the set.
#[derive(Debug)]
struct InterferenceCache {
    /// Total received power (mW) per [subchannel][ue] summed over the
    /// cached transmitter set.
    total_mw: Vec<Vec<f64>>,
    /// Cache key per subchannel: gain generation + transmitter set it
    /// was accumulated for. `None` until first filled.
    key: Vec<Option<(u64, Vec<usize>)>>,
}

impl InterferenceCache {
    fn new(n_sub: usize, n_ue: usize) -> InterferenceCache {
        InterferenceCache {
            total_mw: vec![vec![0.0; n_ue]; n_sub],
            key: vec![None; n_sub],
        }
    }

    /// Ensure every subchannel's column matches `(gain_gen, tx[s])`,
    /// recomputing stale columns in parallel (columns are disjoint).
    /// After this, `total_mw[s][ue]` is exactly
    /// `Self::direct_total(tx[s], lin_mw, ue, s)` for every pair.
    fn refresh(&mut self, gain_gen: u64, tx: &[Vec<usize>], lin_mw: &[Vec<Vec<f64>>]) {
        let stale: Vec<usize> = (0..tx.len())
            .filter(|&s| !matches!(&self.key[s], Some((g, t)) if *g == gain_gen && t == &tx[s]))
            .collect();
        if stale.is_empty() {
            return;
        }
        // Pull the stale columns out so each worker owns its rows.
        let mut columns: Vec<(usize, Vec<f64>)> = stale
            .iter()
            .map(|&s| (s, std::mem::take(&mut self.total_mw[s])))
            .collect();
        crate::parallel::for_each_row(&mut columns, 16, |_, row| {
            let (s, col) = (row.0, &mut row.1);
            for (ue, slot) in col.iter_mut().enumerate() {
                *slot = Self::direct_total(&tx[s], lin_mw, ue, s);
            }
        });
        for (s, col) in columns {
            self.total_mw[s] = col;
            self.key[s] = Some((gain_gen, tx[s].clone()));
        }
    }

    /// The unmemoized accumulation the cache must always agree with:
    /// total power at `ue` on subchannel `s` over transmitters `tx`.
    fn direct_total(tx: &[usize], lin_mw: &[Vec<Vec<f64>>], ue: usize, s: usize) -> f64 {
        tx.iter().map(|&c| lin_mw[ue][c][s]).sum()
    }
}

impl LteEngine {
    /// Build the engine over a scenario; every client attaches to its
    /// drop AP immediately (association transients are not the object of
    /// the large-scale experiments).
    pub fn new(scenario: Scenario, config: LteEngineConfig, seeds: SeedSeq) -> LteEngine {
        let grid = ResourceGrid::new(config.bandwidth);
        let n_sub = grid.num_subchannels() as usize;
        let tdd = TddConfig::paper_default();
        let carrier = Earfcn::new(Band::Tvws, 100_500);
        let mut cells: Vec<Cell> = (0..scenario.aps.len())
            .map(|i| {
                let mut cfg = CellConfig::paper_default(ApId::new(i as u32));
                cfg.tx_power = scenario.config.ap_power;
                cfg.bandwidth = config.bandwidth;
                cfg.scheduler = SchedulerKind::ProportionalFair;
                let mut c = Cell::new(cfg);
                c.set_carrier(carrier, scenario.config.ue_power, Instant::ZERO);
                c
            })
            .collect();
        for (u, &ap) in scenario.assoc.iter().enumerate() {
            cells[ap].attach(UeId::new(u as u32));
        }
        let managers = (0..scenario.aps.len())
            .map(|i| {
                InterferenceManager::new(
                    n_sub as u32,
                    config.manager,
                    seeds.seed_indexed("im", i as u64),
                )
            })
            .collect();
        let n_ue = scenario.n_ues();
        let n_ap = scenario.aps.len();

        // Static mean-gain matrices.
        let env = &scenario.env;
        let dl_mean_dbm: Vec<Vec<f64>> = (0..n_ue)
            .map(|u| {
                (0..n_ap)
                    .map(|a| {
                        env.mean_rx_power(
                            &scenario.aps[a],
                            scenario.config.ap_power,
                            &scenario.ues[u],
                        )
                        .value()
                    })
                    .collect()
            })
            .collect();
        let ul_snr_db: Vec<Vec<f64>> = (0..n_ue)
            .map(|u| {
                (0..n_ap)
                    .map(|a| {
                        env.mean_snr(
                            &scenario.ues[u],
                            scenario.config.ue_power,
                            &scenario.aps[a],
                            config.bandwidth.bandwidth(),
                        )
                        .value()
                    })
                    .collect()
            })
            .collect();
        let ul_mean_dbm: Vec<Vec<f64>> = (0..n_ue)
            .map(|u| {
                (0..n_ap)
                    .map(|a| {
                        env.mean_rx_power(
                            &scenario.ues[u],
                            scenario.config.ue_power,
                            &scenario.aps[a],
                        )
                        .value()
                    })
                    .collect()
            })
            .collect();
        let ap_mean_dbm: Vec<Vec<f64>> = (0..n_ap)
            .map(|a| {
                (0..n_ap)
                    .map(|b| {
                        if a == b {
                            f64::NEG_INFINITY
                        } else {
                            env.mean_rx_power(
                                &scenario.aps[b],
                                scenario.config.ap_power,
                                &scenario.aps[a],
                            )
                            .value()
                        }
                    })
                    .collect()
            })
            .collect();
        let noise_mw: Vec<f64> = (0..n_sub)
            .map(|s| {
                env.noise
                    .floor_mw(grid.subchannel_bandwidth(SubchannelId::new(s as u32)))
                    .value()
            })
            .collect();

        // True conflict graph from mean gains (static).
        let mut conflict = ConflictGraph::new(n_ap);
        let margin = config.interference_margin.value();
        for i in 0..n_ap {
            for j in (i + 1)..n_ap {
                let conflicts = (0..n_ue).any(|u| {
                    let ap = scenario.assoc[u];
                    let other = if ap == i {
                        j
                    } else if ap == j {
                        i
                    } else {
                        return false;
                    };
                    let s_mw = Dbm(dl_mean_dbm[u][ap]).to_milliwatts().value();
                    let i_mw = Dbm(dl_mean_dbm[u][other]).to_milliwatts().value();
                    // Full-channel signal/interference powers against the
                    // full-channel noise floor (the per-subchannel power
                    // split cancels out of the ratio).
                    let n_mw: f64 = noise_mw.iter().sum();
                    let clean = s_mw / n_mw;
                    let with = s_mw / (i_mw + n_mw);
                    10.0 * (clean / with).log10() > margin
                });
                if conflicts {
                    conflict.add_edge(ApId::new(i as u32), ApId::new(j as u32));
                }
            }
        }

        let mut engine = LteEngine {
            grid,
            tdd,
            table: CqiTable,
            cells,
            managers,
            now: Instant::ZERO,
            ue_cqi: vec![vec![Cqi::OUT_OF_RANGE; n_sub]; n_ue],
            harq: vec![HarqEntity::new(); n_ue],
            delivered: vec![0; n_ue],
            enqueued: vec![0; n_ue],
            retention: vec![1.0; n_ue],
            epoch: vec![
                UeEpoch {
                    sched_subframes: vec![0; n_sub],
                    interfered: vec![false; n_sub],
                };
                n_ue
            ],
            free_streak: vec![vec![0; n_sub]; n_ue],
            dl_subframes_this_epoch: 0,
            ue_rng: (0..n_ue)
                .map(|u| StdRng::seed_from_u64(seeds.seed_indexed("engine-ue", u as u64)))
                .collect(),
            lbt_rng: (0..n_ap)
                .map(|a| StdRng::seed_from_u64(seeds.seed_indexed("engine-lbt", a as u64)))
                .collect(),
            tx_last: vec![Vec::new(); n_sub],
            harq_drops: vec![0; n_ue],
            dl_mean_dbm,
            ul_snr_db,
            noise_mw,
            lin_mw: vec![vec![vec![0.0; n_sub]; n_ap]; n_ue],
            fading_block: u64::MAX,
            gain_gen: 0,
            interf: InterferenceCache::new(n_sub, n_ue),
            conflict,
            ap_mean_dbm,
            ul_mean_dbm,
            ul_queue: vec![0; n_ue],
            ul_delivered: vec![0; n_ue],
            ul_harq: vec![HarqEntity::new(); n_ue],
            ul_scheduler: (0..n_ap)
                .map(|_| {
                    cellfi_lte::scheduler::Scheduler::new(
                        cellfi_lte::scheduler::SchedulerKind::ProportionalFair,
                    )
                })
                .collect(),
            lbt: vec![LbtState::default(); n_ap],
            x2_messages: 0,
            handovers: 0,
            bad_streak_ms: vec![0; n_ue],
            outage_until: vec![Instant::ZERO; n_ue],
            rrc_drops: vec![0; n_ue],
            obs: Obs::disabled(),
            scenario,
            config,
        };
        engine.refresh_fading();
        engine.recompute_retention();
        engine.measure_cqi();
        engine
    }

    /// Refresh the instantaneous linear gains when the fading block rolls.
    fn refresh_fading(&mut self) {
        let coherence = self.scenario.env.fading.coherence();
        let block = self.now.as_micros() / coherence.as_micros();
        if block == self.fading_block {
            return;
        }
        self.fading_block = block;
        self.gain_gen += 1;
        let span = self.obs.profiler.begin();
        let n_sub = self.grid.num_subchannels() as usize;
        // Downlink power is split across the carrier's RBs: a subchannel
        // receives only its share of the cell's total power.
        let split_db: Vec<f64> = (0..n_sub)
            .map(|s| {
                let sc = SubchannelId::new(s as u32);
                (self
                    .grid
                    .subchannel_tx_power(self.scenario.config.ap_power, sc)
                    - self.scenario.config.ap_power)
                    .value()
            })
            .collect();
        // Per-UE rows of the gain tensor are disjoint and the fading
        // process is a pure function of (nodes, subchannel, time), so the
        // refresh fans out across UEs.
        let scenario = &self.scenario;
        let dl_mean_dbm = &self.dl_mean_dbm;
        let now = self.now;
        crate::parallel::for_each_row(&mut self.lin_mw, 8, |u, row| {
            let ue_node = scenario.ues[u].node;
            for (a, per_ap) in row.iter_mut().enumerate() {
                let ap_node = scenario.aps[a].node;
                for (s, slot) in per_ap.iter_mut().enumerate() {
                    let f = scenario
                        .env
                        .fading
                        .gain(ap_node, ue_node, SubchannelId::new(s as u32), now)
                        .value();
                    *slot = Dbm(dl_mean_dbm[u][a] + split_db[s] + f)
                        .to_milliwatts()
                        .value();
                }
            }
        });
        self.obs.profiler.end(SpanId::FadingScan, span);
    }

    /// Current simulation time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// The engine's observability bundle (tracer, metrics, profiler).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable observability bundle — use to enable tracing
    /// (`obs_mut().tracer = Tracer::new(true)`) or to install a profiler
    /// clock from the bench/bin layer before a run.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// The scenario under simulation.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Enqueue downlink bits for a client.
    pub fn enqueue(&mut self, ue: usize, bits: u64) {
        let ap = self.scenario.assoc[ue];
        self.cells[ap].enqueue(UeId::new(ue as u32), bits);
        self.enqueued[ue] += bits;
    }

    /// Enqueue uplink bits at a client.
    pub fn enqueue_ul(&mut self, ue: usize, bits: u64) {
        self.ul_queue[ue] += bits;
    }

    /// Uplink delivered bits per client.
    pub fn ul_delivered_bits(&self) -> &[u64] {
        &self.ul_delivered
    }

    /// Uplink bits still queued at a client.
    pub fn ul_queued_bits(&self, ue: usize) -> u64 {
        self.ul_queue[ue]
    }

    /// Per-client average uplink throughput in bps over the elapsed time.
    pub fn ul_throughputs_bps(&self) -> Vec<f64> {
        let t = self.now.as_secs_f64().max(1e-9);
        self.ul_delivered.iter().map(|&b| b as f64 / t).collect()
    }

    /// Give every client `bits` of backlog.
    pub fn backlog_all(&mut self, bits: u64) {
        for u in 0..self.scenario.n_ues() {
            self.enqueue(u, bits);
        }
    }

    /// Total delivered bits per client.
    pub fn delivered_bits(&self) -> &[u64] {
        &self.delivered
    }

    /// Bits still queued for a client.
    pub fn queued_bits(&self, ue: usize) -> u64 {
        self.cells[self.scenario.assoc[ue]].queued_bits(UeId::new(ue as u32))
    }

    /// Per-client average throughput in bps over the elapsed time.
    pub fn throughputs_bps(&self) -> Vec<f64> {
        let t = self.now.as_secs_f64().max(1e-9);
        self.delivered.iter().map(|&b| b as f64 / t).collect()
    }

    /// Total hops taken by each CellFi manager (convergence metric).
    pub fn manager_hops(&self) -> Vec<u64> {
        self.managers.iter().map(|m| m.total_hops()).collect()
    }

    /// Current scheduler mask of a cell.
    pub fn cell_mask(&self, cell: usize) -> Vec<bool> {
        self.cells[cell].allowed_mask().to_vec()
    }

    /// Mean SNR (no interference) of a client's downlink over the full
    /// channel — used by experiments for binning by link quality.
    pub fn ue_snr(&self, ue: usize) -> Db {
        let ap = self.scenario.assoc[ue];
        let noise_total: f64 = self.noise_mw.iter().sum();
        Db(self.dl_mean_dbm[ue][ap] - 10.0 * noise_total.log10())
    }

    /// Control-plane SINR towards the strongest *other* radiating cell
    /// (drives the Fig 7 signalling-interference retention).
    fn control_sinr(&self, ue: usize) -> Db {
        let ap = self.scenario.assoc[ue];
        let strongest_other = (0..self.cells.len())
            .filter(|&c| c != ap && self.cells[c].radio_on())
            .map(|c| self.dl_mean_dbm[ue][c])
            .fold(f64::NEG_INFINITY, f64::max);
        if strongest_other.is_finite() {
            Db(self.dl_mean_dbm[ue][ap] - strongest_other)
        } else {
            Db(100.0) // no other radio: effectively clean
        }
    }

    fn recompute_retention(&mut self) {
        self.retention = (0..self.scenario.n_ues())
            .map(|u| signalling_retention(self.control_sinr(u)))
            .collect();
    }

    /// Instantaneous SINR for (ue, subchannel) given the transmitting
    /// cell set, from the cached linear gains. Production paths read the
    /// memoized [`InterferenceCache`] instead; this direct form is the
    /// reference the cache property tests compare against.
    #[cfg_attr(not(test), allow(dead_code))]
    fn sinr_db(&self, ue: usize, s: usize, tx_cells: &[usize]) -> f64 {
        let ap = self.scenario.assoc[ue];
        let signal = self.lin_mw[ue][ap][s];
        let interference: f64 = tx_cells
            .iter()
            .filter(|&&c| c != ap)
            .map(|&c| self.lin_mw[ue][c][s])
            .sum();
        10.0 * (signal / (interference + self.noise_mw[s])).log10()
    }

    /// Radio-link-failure timer: this long with no decodable subchannel
    /// while backlogged and the RRC connection drops (3GPP T310-style).
    pub const RLF_TIMER_MS: u32 = 200;

    /// Reconnection time after an RRC drop: cell search on the known
    /// carrier plus random access (the paper measured 56 s for a full
    /// multi-band scan; a drop on a known serving carrier recovers much
    /// faster).
    pub const RECONNECT: Duration = Duration::from_secs(3);

    /// Refresh every UE's sub-band CQI from the previous subframe's
    /// transmission pattern (mode 3-0 reports, 2 ms cadence), and run the
    /// radio-link-failure monitor: a backlogged UE that can decode no
    /// subchannel for [`Self::RLF_TIMER_MS`] drops its RRC connection and
    /// spends [`Self::RECONNECT`] re-attaching — the §6.3.1 "frequent
    /// disconnections" under strong data interference.
    fn measure_cqi(&mut self) {
        let n_sub = self.grid.num_subchannels() as usize;
        let margin = self.config.interference_margin.value();
        // Bring the per-subchannel interference columns up to date (a
        // no-op when neither the fading block nor any transmitter set
        // changed since the last accumulation).
        let span = self.obs.profiler.begin();
        self.interf
            .refresh(self.gain_gen, &self.tx_last, &self.lin_mw);
        self.obs.profiler.end(SpanId::SinrCache, span);
        let span = self.obs.profiler.begin();
        let totals = &self.interf.total_mw;
        let tx_last = &self.tx_last;
        let lin_mw = &self.lin_mw;
        let noise_mw = &self.noise_mw;
        let assoc = &self.scenario.assoc;
        let cells = &self.cells;
        let table = &self.table;
        let now = self.now;

        // Everything below is per-UE: CQI rows, epoch interference flags
        // and the RLF monitor touch only their own UE's state and draw no
        // randomness, so the scan fans out across UE rows.
        struct UeRow<'a> {
            cqi: &'a mut Vec<Cqi>,
            epoch: &'a mut UeEpoch,
            bad_streak_ms: &'a mut u32,
            outage_until: &'a mut Instant,
            rrc_drops: &'a mut u64,
            /// Per-row event buffer: rows emit concurrently, the caller
            /// absorbs the buffers back in UE index order so the merged
            /// trace is independent of worker scheduling.
            sink: EventSink,
        }
        let tracer = &mut self.obs.tracer;
        let mut rows: Vec<UeRow> = self
            .ue_cqi
            .iter_mut()
            .zip(self.epoch.iter_mut())
            .zip(self.bad_streak_ms.iter_mut())
            .zip(self.outage_until.iter_mut())
            .zip(self.rrc_drops.iter_mut())
            .map(
                |((((cqi, epoch), bad_streak_ms), outage_until), rrc_drops)| UeRow {
                    cqi,
                    epoch,
                    bad_streak_ms,
                    outage_until,
                    rrc_drops,
                    sink: tracer.fork(),
                },
            )
            .collect();
        // Each row is only ~n_sub float ops but this scan fires every
        // CQI period (2 ms of sim time): below 64 rows per worker the
        // spawn cost dwarfs the row work, so small scenarios stay serial.
        crate::parallel::for_each_row(&mut rows, 64, |ue, row| {
            let ap = assoc[ue];
            let mut any_usable = false;
            for s in 0..n_sub {
                let signal = lin_mw[ue][ap][s];
                // The cached column totals every transmitter including
                // the serving cell; remove its share to get interference.
                let own = if tx_last[s].contains(&ap) {
                    signal
                } else {
                    0.0
                };
                let interference = (totals[s][ue] - own).max(0.0);
                let sinr = 10.0 * (signal / (interference + noise_mw[s])).log10();
                row.cqi[s] = table.cqi_for_sinr(Db(sinr));
                any_usable |= row.cqi[s].usable();
                if !tx_last[s].is_empty() {
                    let clean = 10.0 * (signal / noise_mw[s]).log10();
                    if sinr < clean - margin && !row.epoch.interfered[s] {
                        row.epoch.interfered[s] = true;
                        row.sink.emit(
                            now,
                            Event::CqiInterference {
                                ue: ue as u32,
                                subchannel: s as u32,
                                sinr_db: sinr,
                                clean_db: clean,
                            },
                        );
                    }
                }
            }
            // RLF monitor.
            if now < *row.outage_until {
                return; // already reconnecting
            }
            let queued = cells[ap].queued_bits(UeId::new(ue as u32));
            if !any_usable && queued > 0 {
                *row.bad_streak_ms += Duration::CQI_PERIOD.as_millis() as u32;
                if *row.bad_streak_ms >= Self::RLF_TIMER_MS {
                    *row.outage_until = now + Self::RECONNECT;
                    *row.rrc_drops += 1;
                    *row.bad_streak_ms = 0;
                }
            } else {
                *row.bad_streak_ms = 0;
            }
        });
        for row in rows {
            tracer.absorb(row.sink);
        }
        self.obs.profiler.end(SpanId::CqiScan, span);
    }

    /// Bits one subchannel can carry for a UE this subframe at its CQI.
    /// Zero while the UE is reconnecting after a radio-link failure.
    fn rate_bits(&self, ue: usize, s: usize, dl_capacity: f64) -> f64 {
        if self.now < self.outage_until[ue] {
            return 0.0;
        }
        let cqi = self.ue_cqi[ue][s];
        if !cqi.usable() {
            return 0.0;
        }
        self.table.efficiency(cqi)
            * self.grid.data_res_per_subframe(SubchannelId::new(s as u32))
            * dl_capacity
            * self.retention[ue]
    }

    /// Run one subframe. Returns `(ue, bits)` deliveries.
    pub fn step_subframe(&mut self) -> Vec<(usize, u64)> {
        self.refresh_fading();
        let n_sub = self.grid.num_subchannels() as usize;
        let mut deliveries = Vec::new();
        let dl_capacity = self.tdd.dl_capacity(self.now);
        if dl_capacity > 0.0 {
            self.dl_subframes_this_epoch += 1;
            // 0. LAA listen-before-talk: decide who may transmit this
            // subframe based on last subframe's sensed energy.
            let may_transmit: Vec<bool> = if self.config.mode == ImMode::Laa {
                self.lbt_gate()
            } else {
                vec![true; self.cells.len()]
            };
            // 1. Schedule every cell.
            let mut allocations: Vec<Option<cellfi_lte::scheduler::Allocation>> =
                vec![None; self.cells.len()];
            for c in 0..self.cells.len() {
                if !may_transmit[c] {
                    continue;
                }
                if !self.cells[c].radio_on() || self.cells[c].total_queued_bits() == 0 {
                    continue;
                }
                let ues: Vec<UeId> = self.cells[c].attached_ues().to_vec();
                let rates: Vec<Vec<f64>> = ues
                    .iter()
                    .map(|ue| {
                        (0..n_sub)
                            .map(|s| self.rate_bits(ue.index(), s, dl_capacity))
                            .collect()
                    })
                    .collect();
                allocations[c] = Some(self.cells[c].schedule_downlink(&rates));
            }
            // 2. Per-subchannel transmitter sets.
            let mut tx: Vec<Vec<usize>> = vec![Vec::new(); n_sub];
            for (c, alloc) in allocations.iter().enumerate() {
                if let Some(a) = alloc {
                    for (s, assigned) in a.assignment.iter().enumerate() {
                        if assigned.is_some() {
                            tx[s].push(c);
                        }
                    }
                }
            }
            // 3. Resolve transport blocks per UE through HARQ. The
            // transmitter sets just built are exactly next subframe's
            // `tx_last`, so warming the interference cache here makes the
            // upcoming CQI scan a cache hit as well.
            let span = self.obs.profiler.begin();
            self.interf.refresh(self.gain_gen, &tx, &self.lin_mw);
            self.obs.profiler.end(SpanId::SinrCache, span);
            for (c, alloc) in allocations.iter().enumerate() {
                let Some(a) = alloc else { continue };
                let mut per_ue: std::collections::BTreeMap<usize, Vec<usize>> =
                    std::collections::BTreeMap::new();
                for (s, assigned) in a.assignment.iter().enumerate() {
                    if let Some(ue) = assigned {
                        per_ue.entry(ue.index()).or_default().push(s);
                    }
                }
                for (ue, scs) in per_ue {
                    let mean_linear = scs
                        .iter()
                        .map(|&s| {
                            // The serving cell `c` transmits on `s` by
                            // construction; its share of the cached total
                            // is the signal itself.
                            let signal = self.lin_mw[ue][c][s];
                            let interference = (self.interf.total_mw[s][ue] - signal).max(0.0);
                            signal / (interference + self.noise_mw[s])
                        })
                        .sum::<f64>()
                        / scs.len() as f64;
                    let eff_sinr = Db(10.0 * mean_linear.max(1e-12).log10());
                    let cqi = scs
                        .iter()
                        .map(|&s| self.ue_cqi[ue][s])
                        .max()
                        .unwrap_or(Cqi::OUT_OF_RANGE);
                    if !cqi.usable() {
                        continue;
                    }
                    let bits: f64 = scs
                        .iter()
                        .map(|&s| self.rate_bits(ue, s, dl_capacity))
                        .sum();
                    let process = (self.now.as_millis() % 8) as usize;
                    let outcome =
                        self.harq[ue].transmit(process, cqi, eff_sinr, &mut self.ue_rng[ue]);
                    for &s in &scs {
                        self.epoch[ue].sched_subframes[s] += 1;
                    }
                    match outcome {
                        HarqOutcome::Ack { .. } => {
                            let drained = self.cells[c].deliver(UeId::new(ue as u32), bits as u64);
                            self.delivered[ue] += drained;
                            if drained > 0 {
                                deliveries.push((ue, drained));
                            }
                        }
                        HarqOutcome::Nack => {}
                        HarqOutcome::Dropped => {
                            self.harq_drops[ue] += 1;
                        }
                    }
                }
            }
            self.tx_last = tx;
        } else {
            // Uplink subframe: GPS-synchronized TDD means downlink data
            // pauses everywhere while the uplink runs. Uplink deliveries
            // accumulate in `ul_delivered_bits` (the return value carries
            // downlink deliveries only, which is what the web-workload
            // consumers track).
            let _ = self.step_uplink();
            self.tx_last = vec![Vec::new(); n_sub];
        }

        self.now += Duration::SUBFRAME;

        if self.now.is_multiple_of(Duration::CQI_PERIOD) {
            self.refresh_fading();
            self.measure_cqi();
        }
        if self.now.is_multiple_of(Duration::IM_EPOCH) {
            self.run_epoch();
        }
        deliveries
    }

    /// Run until `deadline`.
    pub fn run_until(&mut self, deadline: Instant) {
        while self.now < deadline {
            let _ = self.step_subframe();
        }
    }

    /// Instantaneous uplink SINR (dB) at `cell` for its UE `ue` on
    /// subchannel `s`, given all concurrently transmitting UEs and their
    /// per-subchannel powers.
    ///
    /// `tx[s]` lists `(ue, per_sc_power_offset_db)` of UEs granted
    /// subchannel `s` this subframe, where the offset is the
    /// concentration term `−10·log10(granted_subchannels)`.
    fn ul_sinr_db(&self, cell: usize, ue: usize, s: usize, tx: &[Vec<(usize, f64)>]) -> f64 {
        let sc = SubchannelId::new(s as u32);
        let fade = |u: usize| {
            self.scenario
                .env
                .fading
                .gain(
                    self.scenario.ues[u].node,
                    self.scenario.aps[cell].node,
                    sc,
                    self.now,
                )
                .value()
        };
        let mut signal = 0.0f64;
        let mut interference = 0.0f64;
        for &(u, offset) in &tx[s] {
            let p = Dbm(self.ul_mean_dbm[u][cell] + offset + fade(u))
                .to_milliwatts()
                .value();
            if u == ue {
                signal = p;
            } else {
                interference += p;
            }
        }
        10.0 * (signal / (interference + self.noise_mw[s])).log10()
    }

    /// Run one uplink subframe: each cell grants its allowed subchannels
    /// to backlogged UEs (PF), UEs concentrate their 20 dBm across their
    /// grants, and transport blocks resolve against UL-UL interference
    /// through per-UE uplink HARQ. GPS-synchronized TDD (§4.1) means no
    /// DL↔UL cross interference. Returns `(ue, bits)` deliveries.
    fn step_uplink(&mut self) -> Vec<(usize, u64)> {
        let n_sub = self.grid.num_subchannels() as usize;
        let mut deliveries = Vec::new();
        // 1. Grants per cell over its allowed mask.
        let mut grants: Vec<Vec<usize>> = vec![Vec::new(); self.scenario.n_ues()];
        for c in 0..self.cells.len() {
            if !self.cells[c].radio_on() {
                continue;
            }
            let ues: Vec<UeId> = self.cells[c]
                .attached_ues()
                .iter()
                .copied()
                .filter(|u| self.ul_queue[u.index()] > 0)
                .collect();
            if ues.is_empty() {
                continue;
            }
            // Rate estimate: sounding-based genie of the clean channel,
            // assuming single-subchannel concentration (full power).
            let demands: Vec<cellfi_lte::scheduler::UeDemand> = ues
                .iter()
                .map(|&u| {
                    let rates = (0..n_sub)
                        .map(|s| {
                            let sc = SubchannelId::new(s as u32);
                            let fade = self
                                .scenario
                                .env
                                .fading
                                .gain(
                                    self.scenario.ues[u.index()].node,
                                    self.scenario.aps[c].node,
                                    sc,
                                    self.now,
                                )
                                .value();
                            let snr = self.ul_mean_dbm[u.index()][c] + fade
                                - 10.0 * self.noise_mw[s].log10();
                            let cqi = self.table.cqi_for_sinr(Db(snr));
                            if cqi.usable() {
                                self.table.efficiency(cqi) * self.grid.data_res_per_subframe(sc)
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    cellfi_lte::scheduler::UeDemand {
                        ue: u,
                        backlog_bits: self.ul_queue[u.index()],
                        rate_per_subchannel: rates,
                    }
                })
                .collect();
            let allowed = self.cells[c].allowed_mask().to_vec();
            let alloc = self.ul_scheduler[c].allocate(&allowed, &demands);
            for (s, assigned) in alloc.assignment.iter().enumerate() {
                if let Some(u) = assigned {
                    grants[u.index()].push(s);
                }
            }
        }
        // 2. Concentration offsets and the transmitter sets.
        let mut tx: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_sub];
        for (u, scs) in grants.iter().enumerate() {
            if scs.is_empty() {
                continue;
            }
            let offset = -10.0 * (scs.len() as f64).log10();
            for &s in scs {
                tx[s].push((u, offset));
            }
        }
        // 3. Resolve per UE through uplink HARQ.
        for (u, ue_grants) in grants.iter().enumerate() {
            if ue_grants.is_empty() {
                continue;
            }
            let cell = self.scenario.assoc[u];
            let mean_linear = ue_grants
                .iter()
                .map(|&s| Db(self.ul_sinr_db(cell, u, s, &tx)).to_linear())
                .sum::<f64>()
                / ue_grants.len() as f64;
            let eff_sinr = Db(10.0 * mean_linear.max(1e-12).log10());
            let cqi = self.table.cqi_for_sinr(eff_sinr);
            if !cqi.usable() {
                continue;
            }
            let bits: f64 = ue_grants
                .iter()
                .map(|&s| {
                    self.table.efficiency(cqi)
                        * self.grid.data_res_per_subframe(SubchannelId::new(s as u32))
                })
                .sum();
            let process = (self.now.as_millis() % 8) as usize;
            let outcome = self.ul_harq[u].transmit(process, cqi, eff_sinr, &mut self.ue_rng[u]);
            if let HarqOutcome::Ack { .. } = outcome {
                let drained = (bits as u64).min(self.ul_queue[u]);
                self.ul_queue[u] -= drained;
                self.ul_delivered[u] += drained;
                if drained > 0 {
                    deliveries.push((u, drained));
                }
            }
        }
        deliveries
    }

    /// Move a client to a new position, refreshing its link matrices.
    /// Fading realizations are keyed by node ids and time, so they evolve
    /// naturally; only the large-scale gains need recomputation.
    pub fn move_ue(&mut self, ue: usize, position: cellfi_types::geo::Point) {
        self.scenario.ues[ue].position = position;
        let env = &self.scenario.env;
        for a in 0..self.scenario.aps.len() {
            self.dl_mean_dbm[ue][a] = env
                .mean_rx_power(
                    &self.scenario.aps[a],
                    self.scenario.config.ap_power,
                    &self.scenario.ues[ue],
                )
                .value();
            self.ul_mean_dbm[ue][a] = env
                .mean_rx_power(
                    &self.scenario.ues[ue],
                    self.scenario.config.ue_power,
                    &self.scenario.aps[a],
                )
                .value();
            self.ul_snr_db[ue][a] = env
                .mean_snr(
                    &self.scenario.ues[ue],
                    self.scenario.config.ue_power,
                    &self.scenario.aps[a],
                    self.config.bandwidth.bandwidth(),
                )
                .value();
        }
        // Refresh the instantaneous gains for this UE immediately (and
        // invalidate interference columns accumulated over the old row).
        self.gain_gen += 1;
        let n_sub = self.grid.num_subchannels() as usize;
        let ue_node = self.scenario.ues[ue].node;
        for a in 0..self.scenario.aps.len() {
            let ap_node = self.scenario.aps[a].node;
            for sc in 0..n_sub {
                let split = (self.grid.subchannel_tx_power(
                    self.scenario.config.ap_power,
                    SubchannelId::new(sc as u32),
                ) - self.scenario.config.ap_power)
                    .value();
                let f = self
                    .scenario
                    .env
                    .fading
                    .gain(ap_node, ue_node, SubchannelId::new(sc as u32), self.now)
                    .value();
                self.lin_mw[ue][a][sc] = Dbm(self.dl_mean_dbm[ue][a] + split + f)
                    .to_milliwatts()
                    .value();
            }
        }
    }

    /// A3-style handover check for one client: switch to a neighbour cell
    /// whose downlink is at least `hysteresis_db` stronger than the
    /// serving cell's. Queued downlink data is forwarded over X2 (the
    /// lossless-handover behaviour CellFi inherits from LTE, §7).
    /// Returns the new serving cell if a handover happened.
    pub fn check_handover(&mut self, ue: usize, hysteresis_db: f64) -> Option<usize> {
        let serving = self.scenario.assoc[ue];
        let (best, best_dbm) = (0..self.cells.len())
            .filter(|&c| self.cells[c].radio_on())
            .map(|c| (c, self.dl_mean_dbm[ue][c]))
            .max_by(|a, b| a.1.total_cmp(&b.1))?;
        if best == serving || best_dbm < self.dl_mean_dbm[ue][serving] + hysteresis_db {
            return None;
        }
        let ueid = UeId::new(ue as u32);
        let pending = self.cells[serving].queued_bits(ueid);
        self.cells[serving].detach(ueid);
        self.cells[best].attach(ueid);
        if pending > 0 {
            self.cells[best].enqueue(ueid, pending); // X2 data forwarding
        }
        self.scenario.assoc[ue] = best;
        // Fresh HARQ state towards the new cell.
        self.harq[ue] = HarqEntity::new();
        self.ul_harq[ue] = HarqEntity::new();
        self.handovers += 1;
        Some(best)
    }

    /// LAA listen-before-talk gate: returns which cells may transmit
    /// this subframe, updating TXOP and backoff state. Sensing uses the
    /// transmitter set of the previous subframe (energy detect at the
    /// AP), so the long-range mismatch between sensing and interference
    /// footprints plays out exactly as it does for CSMA.
    fn lbt_gate(&mut self) -> Vec<bool> {
        let n = self.cells.len();
        // Who was transmitting last subframe (any subchannel)?
        let mut active_last = vec![false; n];
        for cells in &self.tx_last {
            for &c in cells {
                active_last[c] = true;
            }
        }
        let mut grant = vec![false; n];
        for (c, granted) in grant.iter_mut().enumerate() {
            if self.cells[c].total_queued_bits() == 0 {
                // Idle cells release any TXOP and keep a fresh backoff.
                self.lbt[c].txop_remaining = 0;
                continue;
            }
            if self.lbt[c].txop_remaining > 0 {
                self.lbt[c].txop_remaining -= 1;
                *granted = true;
                continue;
            }
            // Energy detect against everyone who radiated last subframe.
            let busy_mw: f64 = (0..n)
                .filter(|&o| o != c && active_last[o])
                .map(|o| Dbm(self.ap_mean_dbm[c][o]).to_milliwatts().value())
                .sum();
            let busy = 10.0 * busy_mw.max(1e-30).log10() >= LBT_THRESHOLD_DBM;
            if busy {
                continue; // freeze backoff while the medium is busy
            }
            if self.lbt[c].backoff > 0 {
                self.lbt[c].backoff -= 1;
                continue;
            }
            // Idle and backoff expired: seize the channel for one MCOT
            // and draw the next backoff.
            self.lbt[c].txop_remaining = LBT_MCOT_SUBFRAMES - 1;
            self.lbt[c].backoff = self.lbt_rng[c].gen_range(0..=LBT_CW);
            *granted = true;
        }
        grant
    }

    /// Heard-active-client count at a cell: its own active clients plus
    /// every foreign active client whose PRACH (20 dBm uplink) reaches it
    /// at ≥ −10 dB SNR — the §6.3.4 sensing rule.
    ///
    /// The −10 dB threshold is not arbitrary: with the 10 dB AP/UE power
    /// difference it makes the hearing radius coincide with the radius at
    /// which this AP's downlink degrades the client by ≥ 3 dB — "any
    /// client whose PRACH is detected is likely to be affected by
    /// transmissions from the AP" (§5.1). Shrinking the radius (e.g.
    /// modelling an elevated uplink noise floor) breaks that alignment:
    /// an AP then over-claims spectrum against victims it cannot hear,
    /// and sparse chains stop converging (see the coexistence
    /// integration tests, which caught exactly that during development).
    fn heard_active(&self, cell: usize) -> (u32, u32) {
        let mut own = 0u32;
        let mut heard = 0u32;
        for ue in 0..self.scenario.n_ues() {
            if self.queued_bits(ue) == 0 {
                continue;
            }
            if self.scenario.assoc[ue] == cell {
                own += 1;
                heard += 1;
            } else if prach::heard(Db(self.ul_snr_db[ue][cell])) {
                heard += 1;
            }
        }
        (own, heard)
    }

    /// Epoch boundary: run the configured interference-management system
    /// and reset epoch accounting.
    fn run_epoch(&mut self) {
        let n_sub = self.grid.num_subchannels() as usize;
        for ue in 0..self.scenario.n_ues() {
            for s in 0..n_sub {
                if self.epoch[ue].interfered[s] {
                    self.free_streak[ue][s] = 0;
                } else {
                    self.free_streak[ue][s] += 1;
                }
            }
        }
        match self.config.mode {
            ImMode::PlainLte | ImMode::Laa => {}
            ImMode::CellFi => {
                let dl = self.dl_subframes_this_epoch.max(1) as f64;
                let now = self.now;
                for c in 0..self.cells.len() {
                    let (own, heard) = self.heard_active(c);
                    if self.obs.tracer.is_enabled() {
                        // Re-walk the sensing rule to attribute each
                        // foreign detection (the counting pass above
                        // stays allocation- and branch-lean for
                        // untraced runs).
                        for ue in 0..self.scenario.n_ues() {
                            if self.queued_bits(ue) == 0 || self.scenario.assoc[ue] == c {
                                continue;
                            }
                            let snr_db = self.ul_snr_db[ue][c];
                            if prach::heard(Db(snr_db)) {
                                self.obs.tracer.emit(
                                    now,
                                    Event::PrachHeard {
                                        cell: c as u32,
                                        ue: ue as u32,
                                        snr_db,
                                    },
                                );
                            }
                        }
                    }
                    let attached: Vec<UeId> = self.cells[c].attached_ues().to_vec();
                    let mask = self.cells[c].allowed_mask().to_vec();
                    let clients: Vec<ClientEpochStats> = attached
                        .iter()
                        .map(|ueid| {
                            let ue = ueid.index();
                            let mut frac: Vec<f64> = (0..n_sub)
                                .map(|s| self.epoch[ue].sched_subframes[s] as f64 / dl)
                                .collect();
                            let interfered: Vec<bool> = (0..n_sub)
                                .map(|s| {
                                    self.config
                                        .sensing
                                        .observe(self.epoch[ue].interfered[s], &mut self.ue_rng[ue])
                                })
                                .collect();
                            // Starvation rescue (extension; see DESIGN.md):
                            // the paper drains buckets by frac_scheduled,
                            // which deadlocks when interference pushes a
                            // client to CQI 0 on *every* owned subchannel —
                            // it is never scheduled, so its reports carry
                            // no drain weight and the AP never hops. Weight
                            // such backlogged-but-unserved clients by the
                            // fair time share they should have received.
                            let unserved =
                                frac.iter().all(|&f| f == 0.0) && self.queued_bits(ue) > 0;
                            if unserved {
                                let fair = 1.0 / own.max(1) as f64;
                                for s in 0..n_sub {
                                    if mask[s] && interfered[s] {
                                        frac[s] = fair;
                                    }
                                }
                            }
                            let est: Vec<f64> = (0..n_sub)
                                .map(|s| self.rate_bits(ue, s, 1.0) * 1000.0)
                                .collect();
                            ClientEpochStats {
                                ue: *ueid,
                                frac_scheduled: frac,
                                interfered,
                                est_throughput: est,
                                free_streak: self.free_streak[ue].clone(),
                            }
                        })
                        .collect();
                    let decision = self.managers[c].epoch_traced(
                        &EpochInput {
                            own_active: own,
                            heard_active: heard,
                            clients,
                        },
                        now,
                        c as u32,
                        &mut self.obs.tracer,
                    );
                    self.obs
                        .metrics
                        .inc("hops", c as u32, decision.hops.len() as u64);
                    self.obs
                        .metrics
                        .set_gauge("share", c as u32, f64::from(decision.share));
                    if !decision.hops.is_empty() || !decision.packing.is_empty() {
                        // Rounds-to-convergence: the last epoch in which
                        // the manager still moved.
                        self.obs.metrics.set_gauge(
                            "last_move_epoch",
                            c as u32,
                            self.managers[c].epochs_run() as f64,
                        );
                    }
                    let mut mask = decision.mask;
                    // Bootstrap grant: an idle cell's share is zero, but a
                    // real cell always retains minimal scheduling ability
                    // (signalling radio bearers exist regardless), so a
                    // page arriving mid-epoch is not stuck behind up to
                    // 1 s of dead air. All idle cells bootstrap on the
                    // lowest-index subchannel — consistent with the
                    // re-use packing convention, and any harm is caught
                    // by neighbours' CQI detectors next epoch.
                    if mask.iter().all(|&b| !b) {
                        mask[0] = true;
                    }
                    let owned = mask.iter().filter(|&&b| b).count();
                    self.obs
                        .metrics
                        .set_gauge("occupancy", c as u32, owned as f64 / n_sub as f64);
                    self.cells[c].set_allowed_mask(mask);
                }
            }
            ImMode::X2Icic => {
                // Cells colour sequentially by id. Each cell learns its
                // X2 neighbours' demands (1 message per edge) and their
                // already-chosen masks (1 more per edge).
                let n = self.cells.len();
                let demands: Vec<u32> = (0..n)
                    .map(|c| self.cells[c].active_clients() as u32)
                    .collect();
                let mut masks: Vec<Vec<bool>> = vec![vec![false; n_sub]; n];
                for c in 0..n {
                    let me = cellfi_types::ApId::new(c as u32);
                    let neighbors: Vec<usize> =
                        self.conflict.neighbors(me).map(|a| a.index()).collect();
                    self.x2_messages += 2 * neighbors.len() as u64;
                    if demands[c] == 0 {
                        masks[c] = vec![true; n_sub]; // idle: full mask, no tx
                        continue;
                    }
                    let binding = std::iter::once(me)
                        .chain(self.conflict.neighbors(me))
                        .map(|a| self.conflict.closed_neighborhood_weight(a, &demands))
                        .max()
                        .unwrap_or(demands[c]);
                    let share = ((f64::from(demands[c]) * n_sub as f64 / f64::from(binding.max(1)))
                        .floor() as usize)
                        .clamp(1, n_sub);
                    let blocked: Vec<bool> = (0..n_sub)
                        .map(|s| {
                            neighbors
                                .iter()
                                .any(|&o| o < c && demands[o] > 0 && masks[o][s])
                        })
                        .collect();
                    let mut taken = 0;
                    for s in 0..n_sub {
                        if taken == share {
                            break;
                        }
                        if !blocked[s] {
                            masks[c][s] = true;
                            taken += 1;
                        }
                    }
                    if taken == 0 {
                        // Overloaded neighbourhood: keep one subchannel
                        // (the highest) rather than go silent.
                        masks[c][n_sub - 1] = true;
                    }
                }
                for (c, m) in masks.into_iter().enumerate() {
                    self.cells[c].set_allowed_mask(m);
                }
            }
            ImMode::Oracle => {
                let demands: Vec<u32> = (0..self.cells.len())
                    .map(|c| self.cells[c].active_clients() as u32)
                    .collect();
                let alloc = OracleAllocator.allocate(&self.conflict, &demands, n_sub as u32);
                for (c, subs) in alloc.iter().enumerate() {
                    let mut mask = vec![false; n_sub];
                    for s in subs {
                        mask[s.index()] = true;
                    }
                    if demands[c] == 0 {
                        mask = vec![true; n_sub];
                    }
                    self.cells[c].set_allowed_mask(mask);
                }
            }
        }
        for e in self.epoch.iter_mut() {
            e.sched_subframes = vec![0; n_sub];
            e.interfered = vec![false; n_sub];
        }
        self.dl_subframes_this_epoch = 0;
        self.recompute_retention();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Scenario, ScenarioConfig};

    fn small_scenario(n_aps: usize, clients: usize, seed: u64) -> Scenario {
        let mut cfg = ScenarioConfig::paper_default(n_aps, clients);
        cfg.shadowing_sigma = 0.0;
        cfg.fading = false;
        Scenario::generate(cfg, SeedSeq::new(seed))
    }

    /// A controlled two-cell scenario: cells 800 m apart, one client each
    /// placed between them (interference-limited at the edge).
    fn edge_scenario() -> Scenario {
        use cellfi_propagation::antenna::Antenna;
        use cellfi_propagation::link::LinkEnd;
        use cellfi_types::geo::Point;
        let mut s = small_scenario(2, 0, 1);
        s.aps = vec![
            LinkEnd::new(
                0,
                Point::new(0.0, 0.0),
                Antenna::Isotropic { gain: Db(6.0) },
            ),
            LinkEnd::new(
                1,
                Point::new(800.0, 0.0),
                Antenna::Isotropic { gain: Db(6.0) },
            ),
        ];
        // Each client sits *closer to the other cell* than to its own
        // (a routine outcome of shadowed association in dense unplanned
        // deployments): interference exceeds signal, the plain-LTE
        // starvation regime of §3.2.
        s.ues = vec![
            LinkEnd::new(1000, Point::new(500.0, 0.0), Antenna::client()),
            LinkEnd::new(1001, Point::new(300.0, 0.0), Antenna::client()),
        ];
        s.assoc = vec![0, 1];
        s
    }

    fn engine(s: Scenario, mode: ImMode, seed: u64) -> LteEngine {
        LteEngine::new(s, LteEngineConfig::paper_default(mode), SeedSeq::new(seed))
    }

    #[test]
    fn lone_cell_hits_near_peak_throughput() {
        let mut s = small_scenario(1, 1, 2);
        s.ues[0].position =
            cellfi_types::geo::Point::new(s.aps[0].position.x + 100.0, s.aps[0].position.y);
        let mut e = engine(s, ImMode::PlainLte, 3);
        e.enqueue(0, 200_000_000);
        e.run_until(Instant::from_secs(2));
        let tput = e.throughputs_bps()[0] / 1e6;
        // 5 MHz, TDD 0.77 DL, CQI 15 → ≈ 12.8 Mbps ceiling.
        assert!((8.0..14.0).contains(&tput), "throughput {tput} Mbps");
    }

    #[test]
    fn deliveries_never_exceed_enqueued() {
        let mut e = engine(small_scenario(3, 2, 4), ImMode::CellFi, 5);
        e.backlog_all(1_000_000);
        e.run_until(Instant::from_secs(1));
        for u in 0..e.scenario().n_ues() {
            assert!(e.delivered_bits()[u] <= 1_000_000);
            assert_eq!(
                e.delivered_bits()[u] + e.queued_bits(u),
                1_000_000,
                "conservation for ue {u}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut e = engine(small_scenario(3, 2, 4), ImMode::CellFi, 5);
            e.backlog_all(10_000_000);
            e.run_until(Instant::from_secs(2));
            e.delivered_bits().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn plain_lte_starves_edge_client_cellfi_rescues() {
        // The paper's core claim in miniature (Fig 9b): an edge client
        // under full-channel inter-cell interference starves on plain
        // LTE but gets service once CellFi partitions the subchannels.
        let run = |mode: ImMode| {
            let mut e = engine(edge_scenario(), mode, 7);
            e.backlog_all(200_000_000);
            e.run_until(Instant::from_secs(8));
            e.throughputs_bps()
        };
        let plain = run(ImMode::PlainLte);
        let cellfi = run(ImMode::CellFi);
        let plain_min = plain.iter().cloned().fold(f64::INFINITY, f64::min);
        let cellfi_min = cellfi.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            plain_min < 200_000.0,
            "plain LTE edge client should starve, got {plain_min} bps"
        );
        assert!(
            cellfi_min > 500_000.0,
            "CellFi edge client should get service, got {cellfi_min} bps"
        );
    }

    #[test]
    fn oracle_masks_are_conflict_free() {
        let mut e = engine(edge_scenario(), ImMode::Oracle, 9);
        e.backlog_all(100_000_000);
        e.run_until(Instant::from_secs(2));
        let m0 = e.cell_mask(0);
        let m1 = e.cell_mask(1);
        let overlap = m0.iter().zip(&m1).filter(|(a, b)| **a && **b).count();
        assert_eq!(overlap, 0, "oracle let conflicting cells share subchannels");
    }

    #[test]
    fn cellfi_managers_converge_to_disjoint_masks() {
        let mut e = engine(edge_scenario(), ImMode::CellFi, 11);
        e.backlog_all(500_000_000);
        e.run_until(Instant::from_secs(15));
        let m0 = e.cell_mask(0);
        let m1 = e.cell_mask(1);
        let overlap = m0.iter().zip(&m1).filter(|(a, b)| **a && **b).count();
        assert!(
            overlap <= 1,
            "CellFi cells still overlap on {overlap} subchannels after 15 s"
        );
        assert!(m0.iter().filter(|&&b| b).count() >= 4);
        assert!(m1.iter().filter(|&&b| b).count() >= 4);
    }

    #[test]
    fn plain_lte_mask_never_changes() {
        let mut e = engine(edge_scenario(), ImMode::PlainLte, 13);
        e.backlog_all(10_000_000);
        e.run_until(Instant::from_secs(3));
        assert!(e.cell_mask(0).iter().all(|&b| b));
        assert!(e.cell_mask(1).iter().all(|&b| b));
    }

    #[test]
    fn idle_network_delivers_nothing() {
        let mut e = engine(small_scenario(2, 2, 6), ImMode::CellFi, 15);
        e.run_until(Instant::from_secs(1));
        assert!(e.delivered_bits().iter().all(|&b| b == 0));
    }

    #[test]
    fn throughput_degrades_with_link_distance() {
        let mut s = small_scenario(1, 0, 8);
        use cellfi_propagation::link::LinkEnd;
        use cellfi_types::geo::Point;
        let apx = s.aps[0].position;
        s.ues = vec![
            LinkEnd::new(
                1000,
                Point::new(apx.x + 100.0, apx.y),
                cellfi_propagation::antenna::Antenna::client(),
            ),
            LinkEnd::new(
                1001,
                Point::new(apx.x, apx.y + 620.0),
                cellfi_propagation::antenna::Antenna::client(),
            ),
        ];
        s.assoc = vec![0, 0];
        let mut e = engine(s, ImMode::PlainLte, 17);
        e.enqueue(0, 40_000_000);
        e.run_until(Instant::from_secs(2));
        let near = e.delivered_bits()[0];
        e.enqueue(1, 40_000_000);
        e.run_until(Instant::from_secs(4));
        let far = e.delivered_bits()[1];
        assert!(
            near as f64 > 1.5 * far as f64,
            "near {near} should beat far {far}"
        );
    }

    #[test]
    fn fading_cache_matches_direct_computation() {
        // With fading enabled, the cached linear gains must agree with
        // the RadioEnvironment's direct per-call computation.
        let mut cfg = ScenarioConfig::paper_default(2, 1);
        cfg.shadowing_sigma = 0.0;
        cfg.fading = true;
        let s = Scenario::generate(cfg, SeedSeq::new(44));
        let e = engine(s, ImMode::PlainLte, 19);
        let sc = SubchannelId::new(3);
        let env = &e.scenario.env;
        for u in 0..e.scenario.n_ues() {
            for a in 0..e.scenario.aps.len() {
                let sc_power = e.grid.subchannel_tx_power(e.scenario.config.ap_power, sc);
                let direct = env
                    .rx_power(
                        &e.scenario.aps[a],
                        sc_power,
                        &e.scenario.ues[u],
                        sc,
                        Instant::ZERO,
                    )
                    .to_milliwatts()
                    .value();
                let cached = e.lin_mw[u][a][sc.index()];
                assert!(
                    (direct - cached).abs() / direct < 1e-9,
                    "cache mismatch ue {u} ap {a}"
                );
            }
        }
    }

    mod interference_cache_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// The incremental interference accumulator must agree with
            /// direct recomputation for *any* transmitter sets presented
            /// after an arbitrary stretch of simulation (mid-run fading
            /// rolls, epoch mask changes, HARQ churn) — both the raw
            /// power totals and the SINR assembled from them.
            #[test]
            fn interference_cache_matches_direct_recomputation(
                seed in 0u64..1_000,
                millis in 20u64..120,
                txmask in proptest::collection::vec(any::<bool>(), 13 * 3),
            ) {
                let mut cfg = ScenarioConfig::paper_default(3, 2);
                cfg.shadowing_sigma = 0.0;
                cfg.fading = true;
                let s = Scenario::generate(cfg, SeedSeq::new(seed));
                let mut e = LteEngine::new(
                    s,
                    LteEngineConfig::paper_default(ImMode::CellFi),
                    SeedSeq::new(seed ^ 0x5eed),
                );
                e.backlog_all(5_000_000);
                for _ in 0..millis {
                    let _ = e.step_subframe();
                }
                let n_sub = e.grid.num_subchannels() as usize;
                let n_ap = e.scenario.aps.len();
                let tx: Vec<Vec<usize>> = (0..n_sub)
                    .map(|s| (0..n_ap).filter(|&c| txmask[s * n_ap + c]).collect())
                    .collect();
                e.interf.refresh(e.gain_gen, &tx, &e.lin_mw);
                for (s, tx_s) in tx.iter().enumerate() {
                    for ue in 0..e.scenario.n_ues() {
                        let direct = InterferenceCache::direct_total(tx_s, &e.lin_mw, ue, s);
                        let cached = e.interf.total_mw[s][ue];
                        prop_assert!(
                            (direct - cached).abs() <= direct.abs() * 1e-12,
                            "total mismatch s={s} ue={ue}: cached {cached} direct {direct}"
                        );
                        let ap = e.scenario.assoc[ue];
                        let signal = e.lin_mw[ue][ap][s];
                        let own = if tx_s.contains(&ap) { signal } else { 0.0 };
                        let from_cache = 10.0
                            * (signal / ((cached - own).max(0.0) + e.noise_mw[s])).log10();
                        let reference = e.sinr_db(ue, s, tx_s);
                        prop_assert!(
                            (from_cache - reference).abs() < 1e-6,
                            "sinr mismatch s={s} ue={ue}: cache {from_cache} dB, \
                             direct {reference} dB"
                        );
                    }
                }
                // A second refresh with unchanged keys must be a pure
                // cache hit and leave every column intact.
                let before = e.interf.total_mw.clone();
                e.interf.refresh(e.gain_gen, &tx, &e.lin_mw);
                prop_assert_eq!(&before, &e.interf.total_mw);
            }
        }
    }

    #[test]
    fn laa_cells_in_sensing_range_time_share() {
        // Two co-located backlogged cells under LBT must alternate TXOPs:
        // both served, neither starved, aggregate below a lone cell.
        let mut s = small_scenario(2, 0, 31);
        use cellfi_propagation::link::LinkEnd;
        use cellfi_types::geo::Point;
        s.aps = vec![
            LinkEnd::new(
                0,
                Point::new(0.0, 0.0),
                Antenna::Isotropic { gain: Db(6.0) },
            ),
            LinkEnd::new(
                1,
                Point::new(200.0, 0.0),
                Antenna::Isotropic { gain: Db(6.0) },
            ),
        ];
        s.ues = vec![
            LinkEnd::new(1000, Point::new(50.0, 80.0), Antenna::client()),
            LinkEnd::new(1001, Point::new(150.0, -80.0), Antenna::client()),
        ];
        s.assoc = vec![0, 1];
        let mut e = engine(s, ImMode::Laa, 33);
        e.backlog_all(u64::MAX / 4);
        e.run_until(Instant::from_secs(4));
        let t = e.throughputs_bps();
        assert!(t[0] > 1e6 && t[1] > 1e6, "both must be served: {t:?}");
        // Time sharing: each gets well below the ~12.8 Mbps lone-cell peak.
        assert!(t[0] < 9e6 && t[1] < 9e6, "no time sharing visible: {t:?}");
    }

    #[test]
    fn laa_hidden_cells_pay_the_duty_cycle_tax() {
        // The edge cells are 800 m apart: mutual AP power ≈ −87 dBm, far
        // below the −72 dBm LBT threshold, so sensing never engages.
        // What LBT *does* impose is its mandatory contention gaps: ~8 ms
        // MCOT followed by ~7.5 ms of backoff ≈ 52 % duty cycle. The
        // desynchronized gaps incidentally rescue the victims plain LTE
        // starves — but every cell pays the airtime tax whether or not
        // anyone is nearby, which is the §8 long-range inefficiency.
        let mut laa = engine(edge_scenario(), ImMode::Laa, 35);
        laa.backlog_all(u64::MAX / 4);
        laa.run_until(Instant::from_secs(6));
        let t = laa.throughputs_bps();
        let mut plain = engine(edge_scenario(), ImMode::PlainLte, 35);
        plain.backlog_all(u64::MAX / 4);
        plain.run_until(Instant::from_secs(6));
        let plain_worst = plain
            .throughputs_bps()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        // Gaps rescue the victims relative to plain LTE...
        assert!(
            plain_worst < 100_000.0,
            "premise: plain LTE starves, got {plain_worst}"
        );
        assert!(
            t.iter().all(|&v| v > 500_000.0),
            "LAA gaps should serve both: {t:?}"
        );
        // ...but each cell is capped near the ~52 % duty cycle of the
        // 12.8 Mbps lone-cell ceiling (and loses more to residual
        // collisions during TXOP overlap).
        assert!(
            t.iter().all(|&v| v < 0.62 * 12_800_000.0),
            "duty-cycle tax missing: {t:?}"
        );
    }

    use cellfi_propagation::antenna::Antenna;

    #[test]
    fn uplink_delivers_and_conserves() {
        let mut s = small_scenario(1, 1, 41);
        s.ues[0].position =
            cellfi_types::geo::Point::new(s.aps[0].position.x + 150.0, s.aps[0].position.y);
        let mut e = engine(s, ImMode::PlainLte, 43);
        e.enqueue_ul(0, 2_000_000);
        e.run_until(Instant::from_secs(3));
        assert_eq!(
            e.ul_delivered_bits()[0] + e.ul_queued_bits(0),
            2_000_000,
            "uplink conservation"
        );
        assert!(e.ul_delivered_bits()[0] > 1_500_000, "uplink barely moved");
    }

    #[test]
    fn uplink_capacity_matches_tdd_share() {
        // TDD config 4 gives the uplink 2 of 10 subframes: a backlogged
        // near client should see roughly 0.2/0.77 of the downlink rate.
        let mut s = small_scenario(1, 1, 45);
        s.ues[0].position =
            cellfi_types::geo::Point::new(s.aps[0].position.x + 100.0, s.aps[0].position.y);
        let mut e = engine(s, ImMode::PlainLte, 47);
        e.enqueue(0, u64::MAX / 4);
        e.enqueue_ul(0, u64::MAX / 4);
        e.run_until(Instant::from_secs(4));
        let dl = e.throughputs_bps()[0];
        let ul = e.ul_throughputs_bps()[0];
        let ratio = ul / dl;
        assert!(
            (0.15..0.45).contains(&ratio),
            "UL/DL ratio {ratio} (dl {dl}, ul {ul})"
        );
    }

    #[test]
    fn uplink_power_concentration_reaches_the_edge() {
        // A cell-edge client (1 km, 20 dBm) cannot close the uplink if it
        // spreads power across the carrier, but concentrating into one
        // granted subchannel buys 10·log10(25/1) ≈ 14 dB — §3.1's uplink
        // OFDMA advantage. The scheduler grants only what the small ACK
        // stream needs, so the edge uplink still flows.
        let mut s = small_scenario(1, 1, 49);
        s.ues[0].position =
            cellfi_types::geo::Point::new(s.aps[0].position.x + 950.0, s.aps[0].position.y);
        let mut e = engine(s, ImMode::PlainLte, 51);
        e.enqueue_ul(0, 100_000); // a thin ACK-like stream
        e.run_until(Instant::from_secs(3));
        assert!(
            e.ul_delivered_bits()[0] >= 100_000,
            "edge uplink failed: {} of 100000",
            e.ul_delivered_bits()[0]
        );
    }

    #[test]
    fn uplink_respects_interference_management_masks() {
        // Two CellFi cells: after convergence, concurrent uplinks use
        // disjoint subchannels, so both UL flows progress.
        let mut e = engine(edge_scenario(), ImMode::CellFi, 53);
        e.backlog_all(u64::MAX / 4); // downlink load drives the IM epochs
        for u in 0..2 {
            e.enqueue_ul(u, 5_000_000);
        }
        e.run_until(Instant::from_secs(20));
        for u in 0..2 {
            assert!(
                e.ul_delivered_bits()[u] > 1_000_000,
                "ue {u} uplink starved: {}",
                e.ul_delivered_bits()[u]
            );
        }
    }

    #[test]
    fn conflict_graph_reflects_geometry() {
        let e = engine(edge_scenario(), ImMode::Oracle, 21);
        assert!(e.conflict.has_edge(ApId::new(0), ApId::new(1)));
    }
}
