//! Deterministic uniform-grid spatial index over node positions.
//!
//! The metro-scale scenarios (10k cells / 1M clients) cannot afford the
//! all-pairs neighbor discovery the small paper topologies tolerated:
//! building per-UE candidate-AP lists by scanning every AP is O(UE×AP).
//! [`UniformGrid`] buckets positions into fixed-size square cells and
//! answers radius queries by **ring expansion**: buckets are visited in
//! rings of increasing Chebyshev distance from the query's home bucket,
//! and within one ring in fixed cell-index order (row-major: ascending
//! `iy`, then ascending `ix`). Results are exact — every candidate is
//! distance-filtered against the query radius — and returned sorted by
//! ascending node index, so a grid query is **byte-for-byte equal to a
//! brute-force distance filter** over all nodes (the property test
//! below pins this). Nothing downstream can observe bucket geometry:
//! determinism of the neighbor tables, and therefore of the engine,
//! never depends on floating-point bucket boundaries.
//!
//! Bucket sizing: callers pass the expected query radius as the bucket
//! edge, so a radius query touches at most a 4×4 bucket window and the
//! per-query cost is O(nodes within ~2r), independent of the total node
//! count.

use cellfi_types::geo::Point;

/// A uniform grid of square buckets over a set of 2-D points.
///
/// Buckets are CSR-packed: `offsets` has one entry per bucket plus a
/// terminator, `nodes` holds node indices grouped by bucket. Within a
/// bucket, node indices ascend (the build is a stable counting sort),
/// so concatenating buckets in a fixed order and sorting once yields a
/// deterministic query result regardless of geometry.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    /// Bucket edge length, metres. Always positive.
    cell: f64,
    /// Bucket-grid extent in x (columns).
    nx: usize,
    /// Bucket-grid extent in y (rows).
    ny: usize,
    /// Bounding-box origin: minimum x over the indexed points.
    min_x: f64,
    /// Bounding-box origin: minimum y over the indexed points.
    min_y: f64,
    /// CSR bucket boundaries, `nx * ny + 1` entries.
    offsets: Vec<u32>,
    /// Node indices grouped by bucket, ascending within each bucket.
    nodes: Vec<u32>,
    /// The indexed positions, by node index (for exact filtering).
    points: Vec<Point>,
}

impl UniformGrid {
    /// Index `points` with square buckets of edge `cell` metres.
    ///
    /// `cell` is clamped to a small positive minimum so degenerate
    /// configurations (zero or negative radius) still build a valid
    /// one-bucket grid rather than dividing by zero.
    pub fn build(points: &[Point], cell: f64) -> UniformGrid {
        let cell = if cell.is_finite() && cell > 1e-6 {
            cell
        } else {
            1e-6
        };
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if points.is_empty() {
            min_x = 0.0;
            min_y = 0.0;
            max_x = 0.0;
            max_y = 0.0;
        }
        let nx = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
        let ny = (((max_y - min_y) / cell).floor() as usize + 1).max(1);
        let n_buckets = nx * ny;
        // Stable counting sort into CSR: first pass counts, second pass
        // places node indices in ascending order within each bucket.
        let mut counts = vec![0u32; n_buckets + 1];
        let bucket_of = |p: &Point| -> usize {
            let ix = (((p.x - min_x) / cell).floor() as usize).min(nx - 1);
            let iy = (((p.y - min_y) / cell).floor() as usize).min(ny - 1);
            iy * nx + ix
        };
        for p in points {
            counts[bucket_of(p) + 1] += 1;
        }
        for b in 1..counts.len() {
            counts[b] += counts[b - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut nodes = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let b = bucket_of(p);
            nodes[cursor[b] as usize] = i as u32;
            cursor[b] += 1;
        }
        UniformGrid {
            cell,
            nx,
            ny,
            min_x,
            min_y,
            offsets,
            nodes,
            points: points.to_vec(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The bucket coordinates covering `p`, clamped into the grid.
    fn bucket_coords(&self, p: Point) -> (usize, usize) {
        let ix = (((p.x - self.min_x) / self.cell).floor() as usize).min(self.nx - 1);
        let iy = (((p.y - self.min_y) / self.cell).floor() as usize).min(self.ny - 1);
        (ix, iy)
    }

    /// One bucket's node slice.
    fn bucket(&self, ix: usize, iy: usize) -> &[u32] {
        let b = iy * self.nx + ix;
        let lo = self.offsets[b] as usize;
        let hi = self.offsets[b + 1] as usize;
        &self.nodes[lo..hi]
    }

    /// All node indices within `radius` of `center` (inclusive), sorted
    /// ascending — exactly the brute-force `distance <= radius` filter.
    pub fn within(&self, center: Point, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.within_into(center, radius, &mut out);
        out
    }

    /// As [`UniformGrid::within`], reusing `out` (cleared first).
    ///
    /// Buckets are visited by ring expansion from the home bucket:
    /// Chebyshev ring 0 (the home bucket itself), then ring 1, ring 2,
    /// …, each ring traversed in fixed cell-index order (ascending
    /// `iy`, then ascending `ix`), until the rings leave the axis-
    /// aligned window that can contain the query disc. The final
    /// ascending sort makes the visit order unobservable; the ring walk
    /// only bounds how many buckets are touched.
    pub fn within_into(&self, center: Point, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        // `radius < 0.0 || is_nan` (not `!(radius >= 0.0)`): a NaN
        // radius matches nothing, same as a negative one.
        if self.points.is_empty() || radius < 0.0 || radius.is_nan() {
            return;
        }
        let (cx, cy) = self.bucket_coords(center);
        // Window of buckets that can intersect the disc.
        let span = (radius / self.cell).floor() as usize + 1;
        let ix_lo = cx.saturating_sub(span);
        let ix_hi = (cx + span).min(self.nx - 1);
        let iy_lo = cy.saturating_sub(span);
        let iy_hi = (cy + span).min(self.ny - 1);
        let max_ring = (cx - ix_lo).max(ix_hi - cx).max(cy - iy_lo).max(iy_hi - cy);
        let r2 = radius * radius;
        for ring in 0..=max_ring {
            for iy in iy_lo..=iy_hi {
                for ix in ix_lo..=ix_hi {
                    let d = ix.abs_diff(cx).max(iy.abs_diff(cy));
                    if d != ring {
                        continue;
                    }
                    for &n in self.bucket(ix, iy) {
                        let p = self.points[n as usize];
                        let dx = p.x - center.x;
                        let dy = p.y - center.y;
                        if dx * dx + dy * dy <= r2 {
                            out.push(n);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_force(points: &[Point], center: Point, radius: f64) -> Vec<u32> {
        (0..points.len() as u32)
            .filter(|&i| points[i as usize].distance(center).value() <= radius)
            .collect()
    }

    #[test]
    fn empty_grid_answers_empty() {
        let g = UniformGrid::build(&[], 100.0);
        assert!(g.is_empty());
        assert_eq!(g.within(Point::new(3.0, 4.0), 50.0), Vec::<u32>::new());
    }

    #[test]
    fn single_bucket_contains_everything_in_range() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 200.0),
        ];
        let g = UniformGrid::build(&pts, 500.0);
        assert_eq!(g.within(Point::ORIGIN, 50.0), vec![0, 1]);
        assert_eq!(g.within(Point::ORIGIN, 250.0), vec![0, 1, 2]);
    }

    #[test]
    fn boundary_points_match_brute_force() {
        // Points exactly on bucket edges and exactly at the radius.
        let pts = [
            Point::new(100.0, 100.0),
            Point::new(200.0, 100.0),
            Point::new(100.0, 200.0),
            Point::new(300.0, 100.0),
        ];
        let g = UniformGrid::build(&pts, 100.0);
        let c = Point::new(100.0, 100.0);
        assert_eq!(g.within(c, 100.0), brute_force(&pts, c, 100.0));
        assert_eq!(g.within(c, 99.999), brute_force(&pts, c, 99.999));
    }

    #[test]
    fn zero_radius_hits_only_coincident_points() {
        let pts = [Point::new(5.0, 5.0), Point::new(5.0, 5.0), Point::ORIGIN];
        let g = UniformGrid::build(&pts, 10.0);
        assert_eq!(g.within(Point::new(5.0, 5.0), 0.0), vec![0, 1]);
    }

    proptest! {
        /// The tentpole contract: a grid radius query equals the
        /// brute-force distance filter for arbitrary topologies, bucket
        /// sizes and radii (satellite: spatial-index equivalence).
        #[test]
        fn grid_query_equals_brute_force(
            xs in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), 0..120),
            qx in 0.0f64..5000.0,
            qy in 0.0f64..5000.0,
            radius in 0.0f64..3000.0,
            cell in 1.0f64..2000.0,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let g = UniformGrid::build(&pts, cell);
            let got = g.within(Point::new(qx, qy), radius);
            let want = brute_force(&pts, Point::new(qx, qy), radius);
            prop_assert_eq!(got, want);
        }
    }
}
