//! Traffic workloads.
//!
//! Two workloads drive the evaluation (§6.3.4):
//!
//! * **Backlogged** — every client has unbounded downlink demand;
//!   used for the throughput/coverage figures (Fig 9a, 9b).
//! * **Web-like** — "we model web-like traffic based on realistic
//!   parameters regarding flow size, number of objects per page and
//!   object size from [Lee & Gupta 2007], using thinking time
//!   distributions [Butkiewicz et al. 2011] to get flow inter arrival
//!   times"; used for the page-load-time CDF (Fig 9c).
//!
//! The web model per client is a renewal process: *think* (log-normal
//! think time) → *request a page* (log-normal object count ×
//! log-normal object sizes) → page bytes get enqueued at the AP →
//! page completes when all bytes are delivered → think again. Page load
//! time is the enqueue→drain span, measured by the engines.

use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};
use rand::rngs::StdRng;
use rand::Rng;

/// Web-workload parameters (medians/shape from the cited studies).
#[derive(Debug, Clone, Copy)]
pub struct WebWorkloadConfig {
    /// Median objects per page (Butkiewicz et al.: tens of objects).
    pub median_objects_per_page: f64,
    /// σ of ln(objects per page).
    pub sigma_objects: f64,
    /// Median object size in bytes.
    pub median_object_bytes: f64,
    /// σ of ln(object size).
    pub sigma_object: f64,
    /// Median think time between pages.
    pub median_think: Duration,
    /// σ of ln(think time).
    pub sigma_think: f64,
    /// Hard cap on one page's total bytes (keeps the tail sane).
    pub max_page_bytes: u64,
}

impl Default for WebWorkloadConfig {
    fn default() -> Self {
        // Shapes per the cited 2007/2011 studies: median pages around
        // 150 kB (≈25 objects × 6 kB), a long but capped tail, ~30 s
        // median think time.
        WebWorkloadConfig {
            median_objects_per_page: 25.0,
            sigma_objects: 0.7,
            median_object_bytes: 6_000.0,
            sigma_object: 1.0,
            // Browsing think times are tens of seconds (Butkiewicz et
            // al. measure heavy-tailed inter-page gaps); 30 s median
            // keeps the aggregate offered load in the sub-saturated
            // regime the paper's page-load medians imply.
            median_think: Duration::from_secs(30),
            sigma_think: 1.0,
            max_page_bytes: 1_500_000,
        }
    }
}

/// Per-client state of the web renewal process.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Waiting until the next page request fires.
    Thinking {
        /// When the request fires.
        until: Instant,
    },
    /// A page of this many bytes is in flight (engine drains it).
    Loading {
        /// When the page was requested.
        since: Instant,
        /// Outstanding bytes.
        remaining: u64,
    },
}

/// A completed page-load record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageLoad {
    /// Client index.
    pub client: usize,
    /// Request time.
    pub requested: Instant,
    /// Completion time.
    pub completed: Instant,
    /// Page size in bytes.
    pub bytes: u64,
}

impl PageLoad {
    /// The page load time.
    pub fn duration(&self) -> Duration {
        self.completed.duration_since(self.requested)
    }
}

/// The web workload generator for a population of clients.
#[derive(Debug, Clone)]
pub struct WebWorkload {
    config: WebWorkloadConfig,
    phases: Vec<Phase>,
    rng: StdRng,
    /// Completed page loads.
    pub completed: Vec<PageLoad>,
}

fn lognormal(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    median * (sigma * z).exp()
}

impl WebWorkload {
    /// A workload over `n_clients`, with the initial think times staggered
    /// so clients do not fire in lockstep.
    pub fn new(config: WebWorkloadConfig, n_clients: usize, seeds: SeedSeq) -> WebWorkload {
        let mut rng = seeds.rng("web-workload");
        let phases = (0..n_clients)
            .map(|_| {
                // First request arrives within one (shortened) think time.
                let t = lognormal(&mut rng, config.median_think.as_secs_f64() / 4.0, 1.0);
                Phase::Thinking {
                    until: Instant::from_micros((t * 1e6) as u64),
                }
            })
            .collect();
        WebWorkload {
            config,
            phases,
            rng,
            completed: Vec::new(),
        }
    }

    /// Draw one page size in bytes.
    fn draw_page(&mut self) -> u64 {
        let objects = lognormal(
            &mut self.rng,
            self.config.median_objects_per_page,
            self.config.sigma_objects,
        )
        .round()
        .max(1.0) as u64;
        let mut total = 0u64;
        for _ in 0..objects {
            total += lognormal(
                &mut self.rng,
                self.config.median_object_bytes,
                self.config.sigma_object,
            )
            .round()
            .max(100.0) as u64;
        }
        total.min(self.config.max_page_bytes)
    }

    /// Advance to `now`: returns newly issued page requests as
    /// `(client, bytes)` pairs for the engine to enqueue.
    pub fn poll(&mut self, now: Instant) -> Vec<(usize, u64)> {
        let mut fired = Vec::new();
        for c in 0..self.phases.len() {
            if let Phase::Thinking { until } = self.phases[c] {
                if now >= until {
                    let bytes = self.draw_page();
                    self.phases[c] = Phase::Loading {
                        since: now,
                        remaining: bytes,
                    };
                    fired.push((c, bytes));
                }
            }
        }
        fired
    }

    /// Report bytes delivered to a client; completes the page (and starts
    /// the next think period) when the page drains. Over-delivery beyond
    /// the page is ignored (background noise).
    pub fn delivered(&mut self, client: usize, bytes: u64, now: Instant) {
        if let Phase::Loading { since, remaining } = self.phases[client] {
            let left = remaining.saturating_sub(bytes);
            if left == 0 {
                self.completed.push(PageLoad {
                    client,
                    requested: since,
                    completed: now,
                    bytes: 0, // filled below
                });
                // Record the real size.
                if let Some(last) = self.completed.last_mut() {
                    last.bytes = remaining;
                }
                let think = lognormal(
                    &mut self.rng,
                    self.config.median_think.as_secs_f64(),
                    self.config.sigma_think,
                );
                self.phases[client] = Phase::Thinking {
                    until: now + Duration::from_micros((think * 1e6) as u64),
                };
            } else {
                self.phases[client] = Phase::Loading {
                    since,
                    remaining: left,
                };
            }
        }
    }

    /// Whether a client has a page outstanding.
    pub fn is_loading(&self, client: usize) -> bool {
        matches!(self.phases[client], Phase::Loading { .. })
    }

    /// Elapsed load times of pages still in flight at `now` — censored
    /// observations that must enter a page-load CDF as lower bounds, or
    /// clients starved by contention (whose pages never finish) silently
    /// drop out of the statistics.
    pub fn outstanding_durations(&self, now: Instant) -> Vec<Duration> {
        self.phases
            .iter()
            .filter_map(|p| match p {
                Phase::Loading { since, .. } => Some(now.duration_since(*since)),
                Phase::Thinking { .. } => None,
            })
            .collect()
    }

    /// Pages still loading at the end of a run (tail losses — the
    /// starved clients of the dynamic workload).
    pub fn outstanding(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| matches!(p, Phase::Loading { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(n: usize) -> WebWorkload {
        WebWorkload::new(WebWorkloadConfig::default(), n, SeedSeq::new(5))
    }

    #[test]
    fn requests_eventually_fire_for_everyone() {
        let mut w = workload(20);
        let mut fired = std::collections::BTreeSet::new();
        // First requests arrive within a shortened think time (median
        // 30/4 s, log-normal): 180 s covers the tail comfortably.
        for s in 0..180 {
            for (c, bytes) in w.poll(Instant::from_secs(s)) {
                assert!(bytes >= 100);
                fired.insert(c);
            }
        }
        assert_eq!(fired.len(), 20, "all clients requested within 180 s");
    }

    #[test]
    fn no_request_while_loading() {
        let mut w = workload(1);
        // Fire the first request.
        let mut first = None;
        for s in 0..120 {
            let f = w.poll(Instant::from_secs(s));
            if !f.is_empty() {
                first = Some((s, f[0].1));
                break;
            }
        }
        let (t0, _bytes) = first.expect("request fired");
        assert!(w.is_loading(0));
        // Without delivery, no further requests ever fire.
        for s in t0 + 1..t0 + 100 {
            assert!(w.poll(Instant::from_secs(s)).is_empty());
        }
    }

    #[test]
    fn delivery_completes_page_and_records_load_time() {
        let mut w = workload(1);
        let mut bytes = 0;
        let mut t0 = Instant::ZERO;
        for s in 0..120 {
            let f = w.poll(Instant::from_secs(s));
            if !f.is_empty() {
                bytes = f[0].1;
                t0 = Instant::from_secs(s);
                break;
            }
        }
        let t1 = t0 + Duration::from_secs(3);
        w.delivered(0, bytes / 2, t0 + Duration::from_secs(1));
        assert!(w.is_loading(0));
        w.delivered(0, bytes, t1); // over-delivery tolerated
        assert!(!w.is_loading(0));
        assert_eq!(w.completed.len(), 1);
        let p = &w.completed[0];
        assert_eq!(p.duration(), Duration::from_secs(3));
        assert_eq!(p.requested, t0);
    }

    #[test]
    fn page_sizes_have_plausible_distribution() {
        let mut w = workload(1);
        let sizes: Vec<f64> = (0..500).map(|_| w.draw_page() as f64).collect();
        let mut sorted = sizes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[250];
        // ~25 objects × ~6 KB ≈ 150 KB median, wide spread.
        assert!(
            (60_000.0..500_000.0).contains(&median),
            "median page {median}"
        );
        assert!(sorted.last().unwrap() <= &1_500_000.0, "cap respected");
        assert!(sorted[0] >= 100.0);
    }

    #[test]
    fn think_times_stagger_clients() {
        let mut w = workload(50);
        let first_fires: Vec<usize> = (0..30)
            .map(|s| w.poll(Instant::from_secs(s)).len())
            .collect();
        // Not everyone fires in the same second.
        assert!(*first_fires.iter().max().unwrap() < 50);
    }

    #[test]
    fn outstanding_durations_are_censored_lower_bounds() {
        let mut w = workload(3);
        for s in 0..120 {
            w.poll(Instant::from_secs(s));
        }
        let d = w.outstanding_durations(Instant::from_secs(200));
        assert_eq!(d.len(), 3, "all pages still in flight");
        assert!(d.iter().all(|x| x.as_secs_f64() > 80.0));
    }

    #[test]
    fn outstanding_counts_loading_clients() {
        let mut w = workload(5);
        for s in 0..120 {
            w.poll(Instant::from_secs(s));
        }
        assert_eq!(w.outstanding(), 5, "nothing delivered, all stuck loading");
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = workload(3);
        let mut b = workload(3);
        for s in 0..100 {
            assert_eq!(a.poll(Instant::from_secs(s)), b.poll(Instant::from_secs(s)));
        }
    }
}
