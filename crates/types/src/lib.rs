//! # cellfi-types
//!
//! Foundation types shared by every crate in the CellFi workspace:
//!
//! * [`units`] — strongly typed radio units (dBm, dB, milliwatts, hertz,
//!   metres) with the conversions the link-budget math needs.
//! * [`time`] — simulation time at microsecond resolution, with the 1 ms
//!   LTE subframe and 1 s interference-management epoch as first-class
//!   constants.
//! * [`geo`] — 2-D geometry for topology generation and path-loss
//!   distances.
//! * [`ids`] — newtype identifiers for access points, clients, channels and
//!   subchannels so they cannot be confused with one another.
//! * [`rng`] — deterministic seeded RNG derivation so every experiment is
//!   exactly repeatable from one `u64` master seed.
//!
//! The design ethos follows smoltcp: plain data types, no clever generics,
//! everything documented and unit-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geo;
pub mod ids;
pub mod rng;
pub mod time;
pub mod units;

pub use geo::Point;
pub use ids::{ApId, ChannelId, SubchannelId, UeId};
pub use rng::SeedSeq;
pub use time::{Duration, Instant};
pub use units::{Db, Dbm, Hertz, Meters, MilliWatts};
