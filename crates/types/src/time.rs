//! Simulation time.
//!
//! The whole workspace shares one clock: microsecond-resolution unsigned
//! time. Three cadences matter in CellFi and each gets a named constant:
//!
//! * the **LTE subframe** (1 ms) — the scheduling tick of the LTE engine;
//! * the **CQI reporting period** (2 ms) — aperiodic mode 3-0 sub-band
//!   reports (paper §5.1);
//! * the **interference-management epoch** (1 s) — the cadence at which a
//!   CellFi access point re-runs share calculation and subchannel hopping
//!   (paper §4.3).
//!
//! The Wi-Fi CSMA engine needs microseconds (a DCF slot is 9 µs); the LTE
//! engine needs milliseconds. Using one integer microsecond clock for both
//! avoids float drift and keeps event ordering total.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulation time, microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant {
    micros: u64,
}

/// A span of simulation time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    micros: u64,
}

impl Instant {
    /// Simulation start.
    pub const ZERO: Instant = Instant { micros: 0 };

    /// Construct from raw microseconds.
    pub const fn from_micros(micros: u64) -> Instant {
        Instant { micros }
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Instant {
        Instant {
            micros: millis * 1_000,
        }
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Instant {
        Instant {
            micros: secs * 1_000_000,
        }
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.micros / 1_000
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Time elapsed since an earlier instant. Panics if `earlier` is later:
    /// simulated time never runs backwards, so that is a simulator bug.
    pub fn duration_since(self, earlier: Instant) -> Duration {
        assert!(
            self.micros >= earlier.micros,
            "time ran backwards: {} < {}",
            self,
            earlier
        );
        Duration {
            micros: self.micros - earlier.micros,
        }
    }

    /// True when this instant lies on a boundary of `period` (including 0).
    pub fn is_multiple_of(self, period: Duration) -> bool {
        period.micros != 0 && self.micros.is_multiple_of(period.micros)
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration { micros: 0 };
    /// One LTE subframe: the 1 ms scheduling tick.
    pub const SUBFRAME: Duration = Duration { micros: 1_000 };
    /// Aperiodic mode 3-0 sub-band CQI reporting period (paper §5.1).
    pub const CQI_PERIOD: Duration = Duration { micros: 2_000 };
    /// CellFi interference-management epoch (paper §4.3).
    pub const IM_EPOCH: Duration = Duration { micros: 1_000_000 };

    /// Construct from raw microseconds.
    pub const fn from_micros(micros: u64) -> Duration {
        Duration { micros }
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Duration {
        Duration {
            micros: millis * 1_000,
        }
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Duration {
        Duration {
            micros: secs * 1_000_000,
        }
    }

    /// Microseconds in this span.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Whole milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.micros / 1_000
    }

    /// Span as seconds, for rate computations.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration {
            micros: self.micros.saturating_sub(rhs.micros),
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant {
            micros: self.micros + rhs.micros,
        }
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.micros += rhs.micros;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant {
            micros: self
                .micros
                .checked_sub(rhs.micros)
                .expect("instant underflow"),
        }
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration {
            micros: self.micros + rhs.micros,
        }
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.micros += rhs.micros;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration {
            micros: self
                .micros
                .checked_sub(rhs.micros)
                .expect("duration underflow"),
        }
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration {
            micros: self.micros * rhs,
        }
    }
}

impl Div<Duration> for Duration {
    type Output = u64;
    fn div(self, rhs: Duration) -> u64 {
        self.micros / rhs.micros
    }
}

impl Rem<Duration> for Instant {
    type Output = Duration;
    fn rem(self, rhs: Duration) -> Duration {
        Duration {
            micros: self.micros % rhs.micros,
        }
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.micros >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.micros >= 1_000 {
            write!(f, "{:.3}ms", self.micros as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.micros)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_cadence() {
        assert_eq!(Duration::SUBFRAME.as_millis(), 1);
        assert_eq!(Duration::CQI_PERIOD.as_millis(), 2);
        assert_eq!(Duration::IM_EPOCH.as_millis(), 1_000);
    }

    #[test]
    fn instant_arithmetic() {
        let t = Instant::from_millis(5) + Duration::from_micros(250);
        assert_eq!(t.as_micros(), 5_250);
        assert_eq!((t - Duration::from_micros(250)).as_millis(), 5);
    }

    #[test]
    fn duration_since_measures_gap() {
        let a = Instant::from_millis(10);
        let b = Instant::from_millis(35);
        assert_eq!(b.duration_since(a), Duration::from_millis(25));
        assert_eq!(b - a, Duration::from_millis(25));
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn duration_since_panics_backwards() {
        let _ = Instant::from_millis(1).duration_since(Instant::from_millis(2));
    }

    #[test]
    fn subframe_boundaries() {
        assert!(Instant::from_millis(7).is_multiple_of(Duration::SUBFRAME));
        assert!(!Instant::from_micros(7_500).is_multiple_of(Duration::SUBFRAME));
        assert!(Instant::ZERO.is_multiple_of(Duration::IM_EPOCH));
    }

    #[test]
    fn epoch_contains_thousand_subframes() {
        assert_eq!(Duration::IM_EPOCH / Duration::SUBFRAME, 1_000);
    }

    #[test]
    fn rem_gives_phase_within_period() {
        let t = Instant::from_millis(1_003);
        assert_eq!(t % Duration::IM_EPOCH, Duration::from_millis(3));
    }

    #[test]
    fn saturating_sub_clamps() {
        let d = Duration::from_millis(1).saturating_sub(Duration::from_millis(5));
        assert_eq!(d, Duration::ZERO);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Duration::from_micros(9)), "9µs");
        assert_eq!(format!("{}", Duration::from_millis(4)), "4.000ms");
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s");
    }
}
