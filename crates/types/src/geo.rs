//! 2-D geometry for topologies and propagation distances.
//!
//! The paper's large-scale evaluation places base stations uniformly at
//! random in a 2 km × 2 km area (§6.3.4); clients are dropped around their
//! access point. All of that needs is points, distances and bearings, which
//! live here so the propagation and simulation crates agree on conventions
//! (x east, y north, bearings in radians counter-clockwise from east).

use crate::units::Meters;
use std::fmt;
use std::ops::{Add, Sub};

/// A point in the simulation plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East coordinate in metres.
    pub x: f64,
    /// North coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Construct from coordinates in metres.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> Meters {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        Meters((dx * dx + dy * dy).sqrt())
    }

    /// Bearing from this point towards another, radians CCW from east,
    /// in `(-π, π]`. Zero vector yields 0.
    pub fn bearing_to(self, other: Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }

    /// The point at `distance` along `bearing` (radians CCW from east).
    pub fn offset(self, bearing: f64, distance: Meters) -> Point {
        Point {
            x: self.x + distance.value() * bearing.cos(),
            y: self.y + distance.value() * bearing.sin(),
        }
    }

    /// Midpoint between two points.
    pub fn midpoint(self, other: Point) -> Point {
        Point {
            x: (self.x + other.x) / 2.0,
            y: (self.y + other.y) / 2.0,
        }
    }

    /// True when the point lies inside the axis-aligned rectangle
    /// `[0, width] × [0, height]`.
    pub fn within(self, width: f64, height: f64) -> bool {
        self.x >= 0.0 && self.x <= width && self.y >= 0.0 && self.y <= height
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.0}, {:.0})", self.x, self.y)
    }
}

/// Normalize an angle difference into `(-π, π]`. Used by the sector-antenna
/// pattern to compare a client bearing with a boresight direction.
pub fn wrap_angle(angle: f64) -> f64 {
    let mut a = angle % (2.0 * std::f64::consts::PI);
    if a <= -std::f64::consts::PI {
        a += 2.0 * std::f64::consts::PI;
    } else if a > std::f64::consts::PI {
        a -= 2.0 * std::f64::consts::PI;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn distance_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(300.0, 400.0);
        assert!(close(a.distance(b).value(), 500.0));
        assert!(close(b.distance(a).value(), 500.0));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(12.0, -7.0);
        assert!(close(p.distance(p).value(), 0.0));
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = Point::ORIGIN;
        assert!(close(o.bearing_to(Point::new(1.0, 0.0)), 0.0));
        assert!(close(o.bearing_to(Point::new(0.0, 1.0)), FRAC_PI_2));
        assert!(close(o.bearing_to(Point::new(-1.0, 0.0)), PI));
        assert!(close(o.bearing_to(Point::new(0.0, -1.0)), -FRAC_PI_2));
    }

    #[test]
    fn offset_inverts_bearing_and_distance() {
        let start = Point::new(100.0, 200.0);
        let end = start.offset(0.7, Meters(850.0));
        assert!(close(start.distance(end).value(), 850.0));
        assert!(close(start.bearing_to(end), 0.7));
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(10.0, 20.0));
        assert!(close(m.x, 5.0) && close(m.y, 10.0));
    }

    #[test]
    fn within_bounds() {
        assert!(Point::new(500.0, 1999.0).within(2000.0, 2000.0));
        assert!(!Point::new(-1.0, 3.0).within(2000.0, 2000.0));
        assert!(!Point::new(3.0, 2000.5).within(2000.0, 2000.0));
    }

    #[test]
    fn wrap_angle_into_range() {
        assert!(close(wrap_angle(3.0 * PI), PI));
        assert!(close(wrap_angle(-3.0 * PI), PI));
        assert!(close(wrap_angle(0.5), 0.5));
        assert!(close(wrap_angle(2.0 * PI + 0.25), 0.25));
    }

    #[test]
    fn point_arithmetic() {
        let p = Point::new(1.0, 2.0) + Point::new(3.0, 4.0);
        assert!(close(p.x, 4.0) && close(p.y, 6.0));
        let q = p - Point::new(1.0, 1.0);
        assert!(close(q.x, 3.0) && close(q.y, 5.0));
    }
}
