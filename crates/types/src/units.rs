//! Strongly typed radio units.
//!
//! Link-budget arithmetic mixes logarithmic (dB, dBm) and linear (mW, Hz)
//! quantities; confusing the two is the classic propagation-model bug. The
//! newtypes here make the legal operations explicit:
//!
//! * `Dbm + Db = Dbm` (apply a gain/loss to a power level)
//! * `Dbm - Dbm = Db` (ratio of two power levels)
//! * `Dbm ↔ MilliWatts` (log/linear conversion)
//!
//! All types are `Copy` floats underneath; they exist for clarity, not for
//! performance games.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A power level in decibel-milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Dbm(pub f64);

/// A power ratio (gain or loss) in decibels.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Db(pub f64);

/// A linear power in milliwatts. Never negative in a valid link budget.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct MilliWatts(pub f64);

/// A frequency in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Hertz(pub f64);

/// A distance in metres.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Meters(pub f64);

impl Dbm {
    /// The conventional "no signal" floor used when a sum of powers is zero.
    pub const FLOOR: Dbm = Dbm(-300.0);

    /// Convert to linear milliwatts: `10^(dBm/10)`.
    #[inline]
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts(10f64.powf(self.0 / 10.0))
    }

    /// Raw dBm value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The larger of two power levels.
    pub fn max(self, other: Dbm) -> Dbm {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two power levels.
    pub fn min(self, other: Dbm) -> Dbm {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl MilliWatts {
    /// Zero power.
    pub const ZERO: MilliWatts = MilliWatts(0.0);

    /// Convert to dBm: `10·log10(mW)`. Zero or negative power maps to
    /// [`Dbm::FLOOR`] rather than −∞ so downstream comparisons stay finite.
    #[inline]
    pub fn to_dbm(self) -> Dbm {
        if self.0 <= 0.0 {
            Dbm::FLOOR
        } else {
            Dbm(10.0 * self.0.log10())
        }
    }

    /// Raw milliwatt value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Db {
    /// Zero gain.
    pub const ZERO: Db = Db(0.0);

    /// Convert a ratio in dB to a linear factor: `10^(dB/10)`.
    #[inline]
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Build from a linear power ratio.
    pub fn from_linear(ratio: f64) -> Db {
        assert!(ratio > 0.0, "linear ratio must be positive, got {ratio}");
        Db(10.0 * ratio.log10())
    }

    /// Raw dB value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Hertz {
    /// Construct from megahertz.
    pub fn from_mhz(mhz: f64) -> Hertz {
        Hertz(mhz * 1e6)
    }

    /// Construct from kilohertz.
    pub fn from_khz(khz: f64) -> Hertz {
        Hertz(khz * 1e3)
    }

    /// Value in megahertz.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Raw hertz value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Meters {
    /// Raw metre value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Construct from kilometres.
    pub fn from_km(km: f64) -> Meters {
        Meters(km * 1000.0)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Sub<Dbm> for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Db {
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}

impl Add for MilliWatts {
    type Output = MilliWatts;
    fn add(self, rhs: MilliWatts) -> MilliWatts {
        MilliWatts(self.0 + rhs.0)
    }
}

impl AddAssign for MilliWatts {
    fn add_assign(&mut self, rhs: MilliWatts) {
        self.0 += rhs.0;
    }
}

impl Sum for MilliWatts {
    fn sum<I: Iterator<Item = MilliWatts>>(iter: I) -> MilliWatts {
        iter.fold(MilliWatts::ZERO, |a, b| a + b)
    }
}

impl Mul<f64> for MilliWatts {
    type Output = MilliWatts;
    fn mul(self, rhs: f64) -> MilliWatts {
        MilliWatts(self.0 * rhs)
    }
}

impl Div<MilliWatts> for MilliWatts {
    type Output = f64;
    fn div(self, rhs: MilliWatts) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.1} MHz", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.1} kHz", self.0 / 1e3)
        } else {
            write!(f, "{:.0} Hz", self.0)
        }
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.2} km", self.0 / 1000.0)
        } else {
            write!(f, "{:.0} m", self.0)
        }
    }
}

/// Convert a slab of dB-domain values to linear milliwatts in one pass:
/// `out[i] = 10^(db[i]/10)`, bit-identical to [`Dbm::to_milliwatts`] per
/// element. Centralising the batched kernel here keeps `powf` confined to
/// this module and gives the optimizer one straight-line loop over
/// contiguous lanes.
pub fn db_slab_to_mw(db: &[f64], out: &mut [f64]) {
    assert_eq!(db.len(), out.len(), "slab length mismatch in db_slab_to_mw");
    for (o, &d) in out.iter_mut().zip(db) {
        *o = 10f64.powf(d / 10.0);
    }
}

/// A precomputed, quantized dB→linear lookup table.
///
/// Covers `[lo, hi]` in uniform steps; [`DbLinearLut::lookup`] snaps its
/// argument to the nearest grid point and returns the precomputed
/// `10^(grid/10)`. At grid points the result is bit-identical to
/// [`Dbm::to_milliwatts`] (see the exactness test); between grid points the
/// error is bounded by half a step in the dB domain.
///
/// Quantization contract: paths that feed golden reports or traces must
/// stay bit-identical to the exact conversion and therefore use
/// [`db_slab_to_mw`] / [`Dbm::to_milliwatts`]; the LUT is for estimate-only
/// consumers (dashboards, admission heuristics) where a half-step dB error
/// is acceptable. Routing a golden path through the LUT is a deliberate
/// re-pin, never a silent swap.
#[derive(Debug, Clone)]
pub struct DbLinearLut {
    lo: f64,
    step: f64,
    inv_step: f64,
    table: Vec<f64>,
}

impl DbLinearLut {
    /// Build a table covering `[lo, hi]` with the given step in dB.
    pub fn new(lo: f64, hi: f64, step: f64) -> DbLinearLut {
        assert!(
            step > 0.0 && hi > lo,
            "LUT grid must be ascending with positive step"
        );
        let n = ((hi - lo) / step).ceil() as usize + 1;
        let table = (0..n)
            .map(|i| Dbm(lo + i as f64 * step).to_milliwatts().value())
            .collect();
        DbLinearLut {
            lo,
            step,
            inv_step: 1.0 / step,
            table,
        }
    }

    /// The dB value of grid point `i`.
    pub fn grid_point(&self, i: usize) -> f64 {
        self.lo + i as f64 * self.step
    }

    /// Number of grid points.
    pub fn grid_len(&self) -> usize {
        self.table.len()
    }

    /// Nearest-grid-point linear value for a dB-domain input; inputs outside
    /// `[lo, hi]` clamp to the end points.
    #[inline]
    pub fn lookup(&self, db_value: f64) -> f64 {
        let idx = ((db_value - self.lo) * self.inv_step).round();
        let idx = (idx.max(0.0) as usize).min(self.table.len() - 1);
        self.table[idx]
    }
}

/// Sum a slice of power levels in the linear domain and return the total in
/// dBm. This is the only correct way to aggregate interference power.
///
/// ```
/// use cellfi_types::units::{sum_power, Dbm};
/// // Two equal interferers add 3 dB, not 2×.
/// let total = sum_power(&[Dbm(-90.0), Dbm(-90.0)]);
/// assert!((total.value() - (-86.99)).abs() < 0.02);
/// ```
pub fn sum_power(levels: &[Dbm]) -> Dbm {
    levels
        .iter()
        .map(|d| d.to_milliwatts())
        .sum::<MilliWatts>()
        .to_dbm()
}

/// Signal-to-interference-plus-noise ratio from linear components.
pub fn sinr(signal: MilliWatts, interference: MilliWatts, noise: MilliWatts) -> Db {
    let denom = interference.value() + noise.value();
    assert!(denom > 0.0, "noise floor must be positive");
    Db(10.0 * (signal.value() / denom).log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn dbm_to_milliwatts_round_trip() {
        for v in [-120.0, -30.0, 0.0, 23.0, 36.0] {
            let mw = Dbm(v).to_milliwatts();
            assert!(close(mw.to_dbm().0, v, 1e-9), "round trip failed for {v}");
        }
    }

    #[test]
    fn zero_dbm_is_one_milliwatt() {
        assert!(close(Dbm(0.0).to_milliwatts().0, 1.0, 1e-12));
    }

    #[test]
    fn thirty_dbm_is_one_watt() {
        assert!(close(Dbm(30.0).to_milliwatts().0, 1000.0, 1e-9));
    }

    #[test]
    fn zero_power_maps_to_floor() {
        assert_eq!(MilliWatts::ZERO.to_dbm(), Dbm::FLOOR);
        assert_eq!(MilliWatts(-1.0).to_dbm(), Dbm::FLOOR);
    }

    #[test]
    fn gain_arithmetic() {
        let tx = Dbm(29.0);
        let antenna = Db(6.0);
        let eirp = tx + antenna;
        assert!(close(eirp.0, 35.0, 1e-12));
        let path_loss = Db(136.0);
        let rx = eirp - path_loss;
        assert!(close(rx.0, -101.0, 1e-12));
    }

    #[test]
    fn dbm_difference_is_db() {
        let d = Dbm(-70.0) - Dbm(-90.0);
        assert!(close(d.0, 20.0, 1e-12));
    }

    #[test]
    fn db_linear_round_trip() {
        for v in [-20.0, -3.0, 0.0, 3.0, 10.0, 30.0] {
            let lin = Db(v).to_linear();
            assert!(close(Db::from_linear(lin).0, v, 1e-9));
        }
    }

    #[test]
    fn three_db_doubles_power() {
        assert!(close(Db(3.0103).to_linear(), 2.0, 1e-3));
    }

    #[test]
    fn sum_power_of_equal_signals_adds_three_db() {
        let total = sum_power(&[Dbm(-90.0), Dbm(-90.0)]);
        assert!(close(total.0, -86.99, 0.02));
    }

    #[test]
    fn sum_power_dominated_by_strongest() {
        let total = sum_power(&[Dbm(-60.0), Dbm(-100.0)]);
        assert!(close(total.0, -60.0, 0.01));
    }

    #[test]
    fn sum_power_empty_is_floor() {
        assert_eq!(sum_power(&[]), Dbm::FLOOR);
    }

    #[test]
    fn sinr_noise_limited() {
        let s = Dbm(-90.0).to_milliwatts();
        let n = Dbm(-100.0).to_milliwatts();
        let v = sinr(s, MilliWatts::ZERO, n);
        assert!(close(v.0, 10.0, 1e-9));
    }

    #[test]
    fn sinr_interference_limited() {
        let s = Dbm(-80.0).to_milliwatts();
        let i = Dbm(-85.0).to_milliwatts();
        let n = Dbm(-120.0).to_milliwatts();
        let v = sinr(s, i, n);
        assert!(close(v.0, 5.0, 0.02));
    }

    #[test]
    fn hertz_constructors() {
        assert!(close(Hertz::from_mhz(5.0).value(), 5e6, 1e-6));
        assert!(close(Hertz::from_khz(180.0).value(), 180e3, 1e-6));
        assert!(close(Hertz::from_mhz(5.0).mhz(), 5.0, 1e-12));
    }

    #[test]
    fn meters_from_km() {
        assert!(close(Meters::from_km(1.3).value(), 1300.0, 1e-9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dbm(-93.25)), "-93.2 dBm");
        assert_eq!(format!("{}", Db(6.0)), "6.0 dB");
        assert_eq!(format!("{}", Hertz::from_mhz(5.0)), "5.0 MHz");
        assert_eq!(format!("{}", Meters(1300.0)), "1.30 km");
        assert_eq!(format!("{}", Meters(250.0)), "250 m");
    }

    #[test]
    fn db_slab_to_mw_matches_scalar_conversion_bitwise() {
        let db: Vec<f64> = (-1200..=360).map(|i| f64::from(i) / 10.0).collect();
        let mut out = vec![0.0; db.len()];
        db_slab_to_mw(&db, &mut out);
        for (&d, &o) in db.iter().zip(&out) {
            assert_eq!(
                o.to_bits(),
                Dbm(d).to_milliwatts().value().to_bits(),
                "slab kernel diverged from Dbm::to_milliwatts at {d} dBm"
            );
        }
    }

    #[test]
    fn lut_is_exact_on_the_quantized_grid() {
        // The LUT's contract: at every grid point the stored value is
        // bit-identical to the exact powf conversion.
        let lut = DbLinearLut::new(-150.0, 40.0, 0.25);
        for i in 0..lut.grid_len() {
            let g = lut.grid_point(i);
            assert_eq!(
                lut.lookup(g).to_bits(),
                Dbm(g).to_milliwatts().value().to_bits(),
                "LUT inexact at grid point {g} dB"
            );
        }
    }

    #[test]
    fn lut_quantization_error_is_bounded_by_half_step() {
        let step = 0.5;
        let lut = DbLinearLut::new(-100.0, 30.0, step);
        let mut x = -100.0;
        while x <= 30.0 {
            let approx = lut.lookup(x);
            let exact_db = 10.0 * approx.log10();
            assert!(
                (exact_db - x).abs() <= step / 2.0 + 1e-9,
                "quantization error at {x} dB"
            );
            x += 0.137;
        }
    }

    #[test]
    fn lut_clamps_out_of_range_inputs() {
        let lut = DbLinearLut::new(-10.0, 10.0, 1.0);
        assert_eq!(lut.lookup(-999.0), lut.lookup(-10.0));
        assert_eq!(lut.lookup(999.0), lut.lookup(10.0));
    }

    #[test]
    fn min_max() {
        assert_eq!(Dbm(-60.0).max(Dbm(-70.0)), Dbm(-60.0));
        assert_eq!(Dbm(-60.0).min(Dbm(-70.0)), Dbm(-70.0));
    }
}
