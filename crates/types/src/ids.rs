//! Newtype identifiers.
//!
//! An access point index and a subchannel index are both small integers;
//! mixing them up compiles fine and simulates garbage. Each entity gets its
//! own opaque id type. All ids are dense indices assigned by the topology
//! or grid builder, so they double as `Vec` indices via [`ApId::index`] etc.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a dense index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// The dense index, usable directly as a `Vec` subscript.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// An access point (LTE eNodeB / Wi-Fi AP).
    ApId,
    "ap"
);
id_type!(
    /// A client (LTE UE / Wi-Fi station).
    UeId,
    "ue"
);
id_type!(
    /// A TV channel as indexed by the spectrum database (e.g. UHF channel
    /// number). Distinct from LTE EARFCN, which is derived from it.
    ChannelId,
    "ch"
);
id_type!(
    /// An intra-channel subchannel: the minimal set of LTE resource blocks
    /// that can be scheduled and CQI-reported (13 on 5 MHz, 25 on 20 MHz).
    SubchannelId,
    "sc"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_round_trip_index() {
        assert_eq!(ApId::new(7).index(), 7);
        assert_eq!(UeId::new(0).index(), 0);
        assert_eq!(SubchannelId::new(12).index(), 12);
        assert_eq!(ChannelId::from(38).index(), 38);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ApId::new(3).to_string(), "ap3");
        assert_eq!(UeId::new(14).to_string(), "ue14");
        assert_eq!(ChannelId::new(21).to_string(), "ch21");
        assert_eq!(SubchannelId::new(5).to_string(), "sc5");
    }

    #[test]
    fn ids_are_ordered_and_collectable() {
        assert!(SubchannelId::new(2) < SubchannelId::new(10));
        // BTreeSet, not HashSet: engine-path code must never depend on
        // randomized iteration order (cellfi-lint rule `determinism`),
        // and the tests model the same discipline.
        let set: BTreeSet<ApId> = [ApId::new(1), ApId::new(1), ApId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ids_serialize_as_plain_numbers() {
        // PAWS messages carry channel ids; keep the wire form minimal.
        let json = serde_json::to_string(&ChannelId::new(38)).unwrap();
        assert_eq!(json, "38");
        let back: ChannelId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ChannelId::new(38));
    }
}
