//! Deterministic randomness.
//!
//! Every stochastic element of the simulator — topology placement,
//! shadowing, fading draws, hopping choices, workload arrivals — must be
//! reproducible from a single master seed so that (a) experiments can be
//! re-run bit-for-bit and (b) paired comparisons (CellFi vs plain LTE vs
//! Wi-Fi on *the same* topology) are fair.
//!
//! [`SeedSeq`] derives independent child seeds from a master seed plus a
//! string label using the SplitMix64 finalizer. Labelled derivation means
//! adding a new consumer of randomness never perturbs the streams of
//! existing consumers — the property that keeps regression baselines
//! stable.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, labelled RNG seeds from a master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSeq {
    master: u64,
}

/// SplitMix64 finalizer: a strong 64-bit mix used to decorrelate seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, used to fold strings into the seed stream.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl SeedSeq {
    /// Start a seed sequence from a master seed.
    pub const fn new(master: u64) -> SeedSeq {
        SeedSeq { master }
    }

    /// Derive the child seed for `label`.
    pub fn seed(self, label: &str) -> u64 {
        splitmix64(self.master ^ fnv1a(label))
    }

    /// Derive the child seed for `label` and a numeric index (e.g. one
    /// stream per access point).
    pub fn seed_indexed(self, label: &str, index: u64) -> u64 {
        Self::seed_with(self.seed(label), index)
    }

    /// Derive an indexed seed from an already-derived label seed (the
    /// value returned by [`SeedSeq::seed`]). Hot loops that draw many
    /// indexed streams under one label can hash the label once and call
    /// this per index; the result is bit-identical to `seed_indexed`.
    pub fn seed_with(label_seed: u64, index: u64) -> u64 {
        splitmix64(label_seed ^ splitmix64(index.wrapping_add(1)))
    }

    /// A ready-to-use deterministic RNG for `label`.
    pub fn rng(self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed(label))
    }

    /// A ready-to-use deterministic RNG for `label` and an index.
    pub fn rng_indexed(self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_indexed(label, index))
    }

    /// A derived sub-sequence: all labels drawn from the child are isolated
    /// from the parent's labels.
    pub fn child(self, label: &str) -> SeedSeq {
        SeedSeq {
            master: self.seed(label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_seed() {
        let s = SeedSeq::new(42);
        assert_eq!(s.seed("topology"), s.seed("topology"));
        assert_eq!(s.seed_indexed("fading", 3), s.seed_indexed("fading", 3));
    }

    #[test]
    fn seed_with_matches_seed_indexed() {
        let s = SeedSeq::new(42);
        let label_seed = s.seed("fading");
        for i in [0u64, 1, 17, u64::MAX] {
            assert_eq!(
                SeedSeq::seed_with(label_seed, i),
                s.seed_indexed("fading", i)
            );
        }
    }

    #[test]
    fn different_labels_different_seeds() {
        let s = SeedSeq::new(42);
        assert_ne!(s.seed("topology"), s.seed("fading"));
        assert_ne!(s.seed_indexed("fading", 0), s.seed_indexed("fading", 1));
    }

    #[test]
    fn different_masters_different_seeds() {
        assert_ne!(SeedSeq::new(1).seed("x"), SeedSeq::new(2).seed("x"));
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = SeedSeq::new(7).rng("workload");
        let mut b = SeedSeq::new(7).rng("workload");
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn child_isolates_namespaces() {
        let s = SeedSeq::new(9);
        let c1 = s.child("run1");
        let c2 = s.child("run2");
        assert_ne!(c1.seed("fading"), c2.seed("fading"));
        // A child's label space does not collide with the parent's.
        assert_ne!(s.seed("fading"), c1.seed("fading"));
    }

    #[test]
    fn seeds_are_well_spread() {
        // Weak avalanche check: consecutive indices should differ in many bits.
        let s = SeedSeq::new(1234);
        let mut total = 0u32;
        for i in 0..64 {
            let a = s.seed_indexed("spread", i);
            let b = s.seed_indexed("spread", i + 1);
            total += (a ^ b).count_ones();
        }
        let avg = f64::from(total) / 64.0;
        assert!(avg > 24.0 && avg < 40.0, "average bit flips {avg}");
    }
}
