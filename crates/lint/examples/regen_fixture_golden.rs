//! Regenerates the fixture-corpus golden: lints every on-disk fixture
//! under its pseudo engine path and prints the JSON report. Redirect
//! into `crates/lint/tests/goldens/fixtures.json` after a deliberate
//! rule or fixture change:
//!
//! ```text
//! cargo run -p cellfi-lint --example regen_fixture_golden \
//!     > crates/lint/tests/goldens/fixtures.json
//! ```

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("fixtures directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    let mut findings = Vec::new();
    for p in entries {
        let name = p
            .file_name()
            .and_then(|n| n.to_str())
            .expect("fixture names are UTF-8");
        let src = std::fs::read_to_string(&p).expect("fixture is readable");
        findings.extend(cellfi_lint::lint_source(
            &format!("crates/core/src/{name}"),
            &src,
        ));
    }
    println!("{}", cellfi_lint::report::to_json(&findings));
}
