//! The CellFi rule catalogue.
//!
//! Five families, named in findings and in allow directives:
//!
//! * **`determinism`** — byte-identical replay is a workspace contract
//!   (`tests/determinism.rs`). Engine-path library code must not iterate
//!   `HashMap`/`HashSet` (randomized iteration order), and library code
//!   anywhere must not read wall clocks (`Instant::now`,
//!   `SystemTime::now`) or draw OS entropy (`thread_rng`,
//!   `from_entropy`). Benches and `bin/` targets are exempt: timing a
//!   run and seeding a CLI from the OS are their job. The PAWS lease
//!   machinery (`crates/spectrum`) is held to a stricter standard: its
//!   retry/backoff paths must schedule on the simulation clock and draw
//!   jitter from seeded RNGs only, so merely naming `std::time`,
//!   blocking with `thread::sleep`, or sampling `rand::random` is
//!   flagged there — a fault-injected lease schedule must replay
//!   byte-identically from the run seed.
//! * **`panic`** — library crates must not `.unwrap()`, `panic!`,
//!   `todo!`, or `unimplemented!`. `.expect("...")` is the sanctioned
//!   escape for provably-infallible cases; its message must state the
//!   invariant: at least [`MIN_EXPECT_MSG`] bytes *and* phrased with the
//!   curated invariant vocabulary ([`INVARIANT_STEMS`]) so it asserts
//!   why failure is impossible rather than naming the failure.
//! * **`units`** — dB/linear conversions belong to
//!   `crates/types/src/units.rs` (`Dbm`/`Db`/`MilliWatts`). Raw
//!   `10f64.powf(x / 10.0)`-style conversions, and multiplying or
//!   dividing a `*_db`/`*_dbm`-named binding (dB is logarithmic; scaling
//!   it is almost always a link-budget bug), are flagged everywhere
//!   else. Decibel-ness also propagates through simple `let` chains:
//!   `let margin = snr_db - floor_db;` taints `margin`, so scaling it
//!   later is flagged too.
//! * **`structure`** — the layered engine must stay decomposed: no file
//!   under `crates/sim/src/engine/` may exceed
//!   [`MAX_ENGINE_FILE_LINES`] lines. The engine was once a ~1,900-line
//!   monolith; this cap keeps PHY, MAC and the IM strategies from
//!   silently re-accreting into one. The finding is file-level and has
//!   no allow escape — the fix is to split the file, not to waive it.
//! * **`obs`** — observability must be free when it is off: the
//!   argument list of an `.emit(...)` event call must not allocate
//!   (`format!`, `to_string`, `to_owned`, `vec!`, `Vec::new`,
//!   `Box::new`, `.clone()`, …). Payloads are plain numerics; the
//!   disabled path costs exactly one branch.
//!
//! Any finding can be waived line-by-line with
//! `// cellfi-lint: allow(<rule>) — <reason>`; a directive with an
//! unknown rule, a missing reason, or nothing to suppress is itself a
//! finding (`lint-allow`), so the escape hatch cannot rot silently.

use crate::lexer::{find_word, ScannedFile};
use crate::report::Finding;

/// Shortest `.expect()` message that can plausibly state an invariant.
pub const MIN_EXPECT_MSG: usize = 8;

/// Curated invariant vocabulary for `.expect()` messages. A message must
/// contain at least one stem, which forces it to *assert a property*
/// ("grants are always in the plan", "non-empty by construction")
/// instead of naming the failure ("bad channel"). Stems are matched
/// case-insensitively as substrings; the trailing space on the copulas
/// keeps them from matching inside words.
pub const INVARIANT_STEMS: &[&str] = &[
    "always",
    "never",
    "only",
    "every",
    "at least",
    "at most",
    "non-empty",
    "by construction",
    "implies",
    "guarantee",
    "comes straight",
    "is total",
    "registered",
    "reachable",
    "known",
    "finite",
    "underflow",
    "overflow",
    "poisoned",
    "serializes",
    "in-plan",
    "in the plan",
    "have ",
    "has ",
    "are ",
    "is ",
    "yields",
    "filled",
    "staged",
    "fired",
    "records",
    "accepts",
    "round trip",
];

/// Rule names accepted in `allow(...)` directives. `structure` findings
/// are file-level and cannot be waived, but the name is known so a stray
/// `allow(structure)` reads as unused rather than as a typo. The last
/// four are the parse-aware v2 families (see [`crate::rules_v2`]).
pub const RULE_NAMES: &[&str] = &[
    "determinism",
    "panic",
    "units",
    "obs",
    "structure",
    "parallel",
    "slab",
    "hot",
    "cachegen",
];

/// Directories whose files must stay decomposed (the engine was once a
/// ~1,900-line monolith; see the `structure` rule).
const STRUCTURE_DIRS: &[&str] = &["crates/sim/src/engine/"];

/// Line cap for files under a [`STRUCTURE_DIRS`] directory.
pub const MAX_ENGINE_FILE_LINES: usize = 700;

/// Crates whose library code must not use order-randomized collections.
const ORDER_SENSITIVE_CRATES: &[&str] = &["core", "lte", "obs", "sim", "spectrum"];

/// The crate whose retry/backoff machinery must run on simulation time
/// and seeded randomness only (see the stricter determinism sub-rule).
const SIM_CLOCK_ONLY_CRATE: &str = "spectrum";

/// Where a file sits in the workspace, driving rule applicability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The `crates/<name>` component, or `None` for the root crate.
    pub crate_name: Option<String>,
    /// `src/bin/` targets and `main.rs` files.
    pub is_bin: bool,
}

impl FileContext {
    /// Classify a workspace-relative path.
    pub fn from_path(path: &str) -> FileContext {
        let norm = path.replace('\\', "/");
        let crate_name = norm
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_owned);
        let is_bin = norm.contains("/bin/") || norm.ends_with("/main.rs") || norm == "main.rs";
        FileContext {
            path: norm,
            crate_name,
            is_bin,
        }
    }

    fn order_sensitive(&self) -> bool {
        !self.is_bin
            && self
                .crate_name
                .as_deref()
                .is_some_and(|c| ORDER_SENSITIVE_CRATES.contains(&c))
    }

    fn is_units_module(&self) -> bool {
        self.path.ends_with("types/src/units.rs")
    }

    fn in_structure_dir(&self) -> bool {
        STRUCTURE_DIRS.iter().any(|d| self.path.starts_with(d))
    }
}

/// Run every applicable rule over one already-scanned file.
pub fn lint_scanned(ctx: &FileContext, scanned: &ScannedFile) -> Vec<Finding> {
    let parsed = crate::parse::parse(scanned);
    let mut sink = Sink::new(ctx, scanned);

    if ctx.order_sensitive() {
        check_collections(&mut sink);
    }
    if !ctx.is_bin {
        check_clocks_and_entropy(&mut sink);
        check_panics(&mut sink);
    }
    if !ctx.is_bin && ctx.crate_name.as_deref() == Some(SIM_CLOCK_ONLY_CRATE) {
        check_sim_clock_only(&mut sink);
    }
    if !ctx.is_units_module() {
        check_unit_conversions(&mut sink);
        check_db_scaling(&mut sink);
    }
    if !ctx.is_bin {
        check_obs_emit(&mut sink);
    }
    if ctx.in_structure_dir() {
        check_structure(&mut sink);
    }
    crate::rules_v2::run(&mut sink, ctx, scanned, &parsed);
    check_allow_hygiene(&mut sink);
    let mut findings = sink.findings;
    findings.sort_by(|a, b| {
        (a.line, a.rule, a.message.as_str()).cmp(&(b.line, b.rule, b.message.as_str()))
    });
    findings
}

/// Collects findings, applying test-code exclusion and allow directives.
/// Shared by the v1 catalogue here and the v2 families in
/// [`crate::rules_v2`], so both honor the same test exclusion and
/// allow-directive bookkeeping (unused allows stay detectable).
pub(crate) struct Sink<'a> {
    ctx: &'a FileContext,
    scanned: &'a ScannedFile,
    findings: Vec<Finding>,
    /// Indices into `scanned.allows` that suppressed something.
    used_allows: Vec<bool>,
}

impl<'a> Sink<'a> {
    fn new(ctx: &'a FileContext, scanned: &'a ScannedFile) -> Sink<'a> {
        Sink {
            ctx,
            scanned,
            findings: Vec::new(),
            used_allows: vec![false; scanned.allows.len()],
        }
    }

    /// Report `rule` at byte `offset` unless the line is test code or a
    /// valid allow directive covers it.
    pub(crate) fn report(&mut self, rule: &'static str, offset: usize, message: String) {
        let line = self.scanned.line_of(offset);
        if self.scanned.in_test_code(line) {
            return;
        }
        for (i, allow) in self.scanned.allows.iter().enumerate() {
            if allow.applies_to_line == line
                && allow.rules.iter().any(|r| r == rule)
                && !allow.reason.is_empty()
            {
                self.used_allows[i] = true;
                return;
            }
        }
        self.findings.push(Finding {
            rule,
            path: self.ctx.path.clone(),
            line,
            message,
        });
    }

    fn masked(&self) -> &'a str {
        &self.scanned.masked
    }
}

/// determinism: `HashMap`/`HashSet` in order-sensitive library code.
fn check_collections(sink: &mut Sink) {
    for name in ["HashMap", "HashSet"] {
        let mut from = 0;
        while let Some(pos) = find_word(sink.masked(), name, from) {
            sink.report(
                "determinism",
                pos,
                format!(
                    "{name} has a randomized iteration order; use BTreeMap/BTreeSet \
                     or a hasher seeded from the run seed in engine-path code"
                ),
            );
            from = pos + name.len();
        }
    }
}

/// determinism: wall clocks and OS entropy in library code.
fn check_clocks_and_entropy(sink: &mut Sink) {
    for path in [&["Instant", "now"][..], &["SystemTime", "now"][..]] {
        let mut from = 0;
        while let Some((pos, end)) = find_qualified(sink.masked(), path, from) {
            sink.report(
                "determinism",
                pos,
                format!(
                    "{}::{} reads the wall clock; simulation state must only \
                     depend on cellfi_types::time and the run seed",
                    path[0], path[1]
                ),
            );
            from = end;
        }
    }
    for name in ["thread_rng", "from_entropy"] {
        let mut from = 0;
        while let Some(pos) = find_word(sink.masked(), name, from) {
            sink.report(
                "determinism",
                pos,
                format!(
                    "{name} draws OS entropy; derive randomness from the run \
                     seed via cellfi_types::rng::SeedSeq"
                ),
            );
            from = pos + name.len();
        }
    }
}

/// determinism (spectrum only): the lease lifecycle's retry/backoff
/// paths must schedule on the simulation clock and draw jitter from
/// seeded RNGs. Stricter than [`check_clocks_and_entropy`]: in
/// `crates/spectrum` even *naming* `std::time` (wall-clock types),
/// blocking with `thread::sleep`, or sampling `rand::random` is a
/// finding, not just calling `::now()`. Compliance under arbitrary
/// fault schedules is proved by replaying them byte-identically from
/// the run seed; one wall-clock read anywhere in the retry path would
/// void that proof.
fn check_sim_clock_only(sink: &mut Sink) {
    let probes: &[(&[&str], &str)] = &[
        (
            &["std", "time"],
            "wall-clock time types; lease retry/backoff schedules on \
             cellfi_types::time (sim Instant/Duration) only",
        ),
        (
            &["thread", "sleep"],
            "blocks on real time; schedule the retry at a future sim \
             Instant and let the harness tick reach it",
        ),
        (
            &["rand", "random"],
            "ambient OS entropy; backoff jitter must come from an RNG \
             seeded via cellfi_types::rng::SeedSeq",
        ),
    ];
    for (path, why) in probes {
        let mut from = 0;
        while let Some((pos, end)) = find_qualified(sink.masked(), path, from) {
            sink.report(
                "determinism",
                pos,
                format!(
                    "{}::{} in the PAWS lease machinery: {why}",
                    path[0], path[1]
                ),
            );
            from = end;
        }
    }
}

/// panic: `.unwrap()`, weak `.expect()`, and panicking macros.
fn check_panics(sink: &mut Sink) {
    let masked = sink.masked();
    let bytes = masked.as_bytes();

    let mut from = 0;
    while let Some(pos) = find_word(masked, "unwrap", from) {
        from = pos + "unwrap".len();
        let is_method = pos > 0 && bytes[pos - 1] == b'.';
        let is_call = bytes.get(from) == Some(&b'(');
        if is_method && is_call {
            sink.report(
                "panic",
                pos,
                ".unwrap() in library code: return a Result or use \
                 .expect(\"<invariant>\")"
                    .to_owned(),
            );
        }
    }

    let mut from = 0;
    while let Some(pos) = find_word(masked, "expect", from) {
        from = pos + "expect".len();
        let is_method = pos > 0 && bytes[pos - 1] == b'.';
        if !is_method || bytes.get(from) != Some(&b'(') {
            continue;
        }
        if let Some((open, close)) = string_literal_span(masked, from + 1) {
            let len = close - open - 1;
            if len < MIN_EXPECT_MSG {
                sink.report(
                    "panic",
                    pos,
                    format!(
                        ".expect() message is too short to state an invariant \
                         ({len} bytes < {MIN_EXPECT_MSG})"
                    ),
                );
            } else if !states_invariant(&sink.scanned.raw[open + 1..close]) {
                sink.report(
                    "panic",
                    pos,
                    ".expect() message names an outcome, not an invariant: \
                     phrase it with the invariant vocabulary (e.g. \
                     \"always\", \"non-empty\", \"comes straight from\" — \
                     see INVARIANT_STEMS)"
                        .to_owned(),
                );
            }
        }
    }

    for mac in ["panic", "todo", "unimplemented"] {
        let mut from = 0;
        while let Some(pos) = find_word(masked, mac, from) {
            from = pos + mac.len();
            if bytes.get(from) == Some(&b'!') {
                sink.report(
                    "panic",
                    pos,
                    format!(
                        "{mac}! in library code: return a Result or encode the invariant in types"
                    ),
                );
            }
        }
    }
}

/// units: `10f64.powf(...)`-style raw dB→linear conversion.
fn check_unit_conversions(sink: &mut Sink) {
    let masked = sink.masked();
    let mut from = 0;
    while let Some(rel) = masked[from..].find(".powf") {
        let pos = from + rel;
        from = pos + ".powf".len();
        if preceding_literal_is_ten(masked.as_bytes(), pos) {
            sink.report(
                "units",
                pos,
                "raw 10^(x/10) conversion: use Dbm::to_milliwatts / \
                 Db::to_linear from cellfi_types::units"
                    .to_owned(),
            );
        }
    }
}

/// Whether the token ending at `end` is a literal `10` (any float form).
fn preceding_literal_is_ten(bytes: &[u8], end: usize) -> bool {
    let mut start = end;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            start -= 1;
        } else {
            break;
        }
    }
    let token = std::str::from_utf8(&bytes[start..end]).unwrap_or("");
    if token.is_empty() || !token.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    // Strip a numeric suffix and underscores: 10, 10.0, 10f64, 10_f64...
    let cleaned: String = token
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .chars()
        .filter(|&c| c != '_')
        .collect();
    cleaned == "10" || cleaned == "10." || cleaned == "10.0"
}

/// Whether an identifier is decibel-named by suffix convention.
fn db_named(ident: &str) -> bool {
    ident.ends_with("_db") || ident.ends_with("_dbm")
}

/// Bindings that inherit decibel-ness through simple `let` chains:
/// `let margin = snr_db - floor_db;` makes `margin` a dB quantity. Only
/// initializers that are plain arithmetic over identifiers and literals
/// propagate — any call, indexing, comparison or struct syntax in the
/// right-hand side (`Db(x)`, `x_db.to_linear()`, …) may change the
/// unit, so those bindings stay untainted. Iterates to a fixpoint so
/// chains of such lets propagate.
fn db_tainted_bindings(masked: &str) -> std::collections::BTreeSet<String> {
    let bytes = masked.as_bytes();
    let mut tainted = std::collections::BTreeSet::new();
    loop {
        let mut changed = false;
        let mut from = 0;
        while let Some(pos) = find_word(masked, "let", from) {
            from = pos + "let".len();
            let mut i = skip_space(bytes, from);
            if let Some(after_mut) = strip_word(masked, i, "mut") {
                i = skip_space(bytes, after_mut);
            }
            // A single plain binding only; patterns (`(a, b)`, `Some(x)`)
            // fall out because the next byte is not an identifier start.
            if i >= bytes.len() || !is_ident_start(bytes[i]) {
                continue;
            }
            let mut end = i;
            while end < bytes.len() && is_ident_byte(bytes[end]) {
                end += 1;
            }
            let name = &masked[i..end];
            let mut j = skip_space(bytes, end);
            // Optional `: f64`-style ascription (simple path types only).
            if bytes.get(j) == Some(&b':') {
                j += 1;
                while j < bytes.len() && (is_ident_byte(bytes[j]) || bytes[j].is_ascii_whitespace())
                {
                    j += 1;
                }
            }
            if bytes.get(j) != Some(&b'=') || bytes.get(j + 1) == Some(&b'=') {
                continue;
            }
            let Some(semi_rel) = masked[j + 1..].find(';') else {
                continue;
            };
            let rhs = &masked[j + 1..j + 1 + semi_rel];
            if rhs.contains(['(', ')', '[', ']', '{', '}', '<', '>', '!', '?', '&', '|']) {
                continue;
            }
            // A `.` followed by an identifier is field/method access
            // (which may change the unit); a digit is a float literal.
            let rhs_bytes = rhs.as_bytes();
            let accesses_member = rhs_bytes.iter().enumerate().any(|(k, &b)| {
                b == b'.' && rhs_bytes.get(k + 1).is_some_and(|&n| is_ident_start(n))
            });
            if accesses_member {
                continue;
            }
            let inherits = idents_of(rhs).any(|id| db_named(id) || tainted.contains(id));
            if inherits && !db_named(name) && tainted.insert(name.to_owned()) {
                changed = true;
            }
        }
        if !changed {
            return tainted;
        }
    }
}

/// Iterate the identifiers of a source fragment.
fn idents_of(fragment: &str) -> impl Iterator<Item = &str> {
    fragment
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|tok| tok.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_'))
}

fn skip_space(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// If `masked[at..]` starts with `word` on an identifier boundary,
/// return the offset just past it.
fn strip_word(masked: &str, at: usize, word: &str) -> Option<usize> {
    let bytes = masked.as_bytes();
    if masked.get(at..)?.starts_with(word) {
        let end = at + word.len();
        if bytes.get(end).is_none_or(|&b| !is_ident_byte(b)) {
            return Some(end);
        }
    }
    None
}

/// units: multiplying or dividing a decibel binding — one named
/// `*_db`/`*_dbm`, or one that inherited decibel-ness through a simple
/// `let` chain ([`db_tainted_bindings`]).
fn check_db_scaling(sink: &mut Sink) {
    let masked = sink.masked();
    let bytes = masked.as_bytes();
    let tainted = db_tainted_bindings(masked);
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident_start(bytes[i]) || (i > 0 && is_ident_byte(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let mut end = i;
        while end < bytes.len() && is_ident_byte(bytes[end]) {
            end += 1;
        }
        let ident = &masked[i..end];
        let is_db = db_named(ident) || tainted.contains(ident);
        if is_db {
            let next = next_nonspace(bytes, end);
            let prev = prev_nonspace(bytes, i);
            let scaled =
                matches!(next, Some(b'*') | Some(b'/')) || matches!(prev, Some(b'*') | Some(b'/'));
            // `x * 2` vs `x *= 2`: *= on a dB binding is also scaling.
            if scaled {
                let origin = if db_named(ident) {
                    "is a decibel quantity"
                } else {
                    "was assigned from a decibel quantity"
                };
                sink.report(
                    "units",
                    i,
                    format!(
                        "`{ident}` {origin}; multiplying or dividing it is a \
                         log/linear mixup — convert with cellfi_types::units \
                         first"
                    ),
                );
            }
        }
        i = end;
    }
}

/// structure: files under [`STRUCTURE_DIRS`] stay decomposed. Reported
/// straight into the sink (no test-code exclusion, no allow escape):
/// the count covers the whole file, tests included, and the only fix is
/// to split it.
fn check_structure(sink: &mut Sink) {
    let lines = sink.scanned.raw.lines().count();
    if lines > MAX_ENGINE_FILE_LINES {
        sink.findings.push(Finding {
            rule: "structure",
            path: sink.ctx.path.clone(),
            line: MAX_ENGINE_FILE_LINES + 1,
            message: format!(
                "{lines} lines exceeds the {MAX_ENGINE_FILE_LINES}-line engine \
                 file cap — split this into the PHY/MAC/IM layering \
                 (see crates/sim/src/engine/)"
            ),
        });
    }
}

/// Allocation markers forbidden inside `.emit(...)` argument lists.
const EMIT_ALLOC_MARKERS: &[&str] = &[
    "format!",
    "vec!",
    "to_string",
    "to_owned",
    "to_vec",
    "clone",
    "String::from",
    "Vec::new",
    "Box::new",
];

/// obs: `.emit(...)` must build its payload without allocating, so an
/// emission on the disabled path costs exactly one branch — and
/// `.register(...)` monitor check closures run every armed tick, so
/// they must be allocation-free too.
fn check_obs_emit(sink: &mut Sink) {
    check_obs_alloc_free(
        sink,
        "emit",
        "event payloads must be allocation-free plain numerics so disabled \
         tracing costs one branch",
    );
    check_obs_alloc_free(
        sink,
        "register",
        "monitor check closures run on every armed tick and must stay \
         allocation-free (return plain Option<f64> from the facts)",
    );
}

/// Scan every `.{method}(...)` argument list for [`EMIT_ALLOC_MARKERS`]
/// and report hits under the `obs` rule with `why` as the rationale.
fn check_obs_alloc_free(sink: &mut Sink, method: &str, why: &str) {
    let masked = sink.masked();
    let bytes = masked.as_bytes();
    let mut from = 0;
    while let Some(pos) = find_word(masked, method, from) {
        from = pos + method.len();
        let is_method = pos > 0 && bytes[pos - 1] == b'.';
        if !is_method || bytes.get(from) != Some(&b'(') {
            continue;
        }
        let Some(close) = matching_paren(bytes, from) else {
            continue;
        };
        let args = &masked[from + 1..close];
        for marker in EMIT_ALLOC_MARKERS {
            let hit = if let Some((ty, m)) = marker.split_once("::") {
                find_qualified(args, &[ty, m], 0).map(|(p, _)| p)
            } else if let Some(mac) = marker.strip_suffix('!') {
                let mut at = 0;
                let mut found = None;
                while let Some(p) = find_word(args, mac, at) {
                    at = p + mac.len();
                    if args.as_bytes().get(at) == Some(&b'!') {
                        found = Some(p);
                        break;
                    }
                }
                found
            } else {
                find_word(args, marker, 0)
            };
            if let Some(rel) = hit {
                sink.report(
                    "obs",
                    from + 1 + rel,
                    format!("`{marker}` inside .{method}(...): {why}"),
                );
            }
        }
        from = close;
    }
}

/// Offset of the `)` matching the `(` at `open`.
fn matching_paren(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn next_nonspace(bytes: &[u8], mut i: usize) -> Option<u8> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some(bytes[i]);
        }
        i += 1;
    }
    None
}

fn prev_nonspace(bytes: &[u8], i: usize) -> Option<u8> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !bytes[j].is_ascii_whitespace() {
            return Some(bytes[j]);
        }
    }
    None
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// lint-allow: every directive must be well-formed, reasoned, and used.
fn check_allow_hygiene(sink: &mut Sink) {
    // Walk by index: reporting borrows the sink mutably.
    for i in 0..sink.scanned.allows.len() {
        let allow = &sink.scanned.allows[i];
        let line = allow.directive_line;
        let rules = allow.rules.clone();
        let reason_empty = allow.reason.is_empty();
        let used = sink.used_allows[i];
        if rules.is_empty() {
            push_hygiene(
                sink,
                line,
                "malformed directive: expected `cellfi-lint: allow(<rule>) — <reason>`".to_owned(),
            );
            continue;
        }
        for rule in &rules {
            if !RULE_NAMES.contains(&rule.as_str()) {
                push_hygiene(
                    sink,
                    line,
                    format!("unknown rule `{rule}` (known: {})", RULE_NAMES.join(", ")),
                );
            }
        }
        if reason_empty {
            push_hygiene(
                sink,
                line,
                "allow directive needs a reason: `allow(<rule>) — <why this is sound>`".to_owned(),
            );
        } else if !used && rules.iter().all(|r| RULE_NAMES.contains(&r.as_str())) {
            push_hygiene(
                sink,
                line,
                format!(
                    "unused allow({}) — nothing on the target line triggers it; delete the directive",
                    rules.join(", ")
                ),
            );
        }
    }
}

fn push_hygiene(sink: &mut Sink, line: usize, message: String) {
    sink.findings.push(Finding {
        rule: "lint-allow",
        path: sink.ctx.path.clone(),
        line,
        message,
    });
}

/// Find `a :: b` (whitespace-tolerant); returns (start of `a`, end of `b`).
fn find_qualified(masked: &str, path: &[&str], from: usize) -> Option<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut search = from;
    loop {
        let pos = find_word(masked, path[0], search)?;
        search = pos + path[0].len();
        let mut j = search;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b':') || bytes.get(j + 1) != Some(&b':') {
            continue;
        }
        j += 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if masked[j..].starts_with(path[1]) {
            let end = j + path[1].len();
            let boundary = bytes.get(end).is_none_or(|&b| !is_ident_byte(b));
            if boundary {
                return Some((pos, end));
            }
        }
    }
}

/// If `masked[at..]` (after optional whitespace) opens a string literal,
/// return the byte offsets of its opening and closing quotes. Offsets
/// map 1:1 onto the raw source, so callers can read the literal's
/// contents there. `None` for non-literal arguments.
fn string_literal_span(masked: &str, at: usize) -> Option<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut i = at;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    let open = i;
    let close = masked[open + 1..].find('"')? + open + 1;
    Some((open, close))
}

/// Whether an `.expect()` message contains a curated invariant stem.
fn states_invariant(msg: &str) -> bool {
    let lower = msg.to_ascii_lowercase();
    INVARIANT_STEMS.iter().any(|stem| lower.contains(stem))
}
