//! `cellfi-lint` — CellFi's workspace static-analysis pass.
//!
//! The simulation's headline claims (byte-identical parallel replay,
//! ITU-style link budgets) rest on invariants the compiler cannot see:
//! no nondeterministic iteration or wall-clock reads in engine code, no
//! panics in library crates, no raw dB/linear mixing outside the
//! `cellfi_types::units` newtypes. This crate enforces them with a
//! dependency-free scanner — see [`rules`] for the catalogue and the
//! `// cellfi-lint: allow(<rule>) — <reason>` escape hatch.
//!
//! Run it with `cargo run -p cellfi-lint` (add `--json` for machine
//! output); `scripts/tier1.sh` runs it on every verification pass.

pub mod dataflow;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod rules_v2;
pub mod walk;

use report::Finding;
use rules::FileContext;
use std::path::Path;

/// Lint one file's source text under its workspace-relative path.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let ctx = FileContext::from_path(rel_path);
    let scanned = lexer::scan(source);
    rules::lint_scanned(&ctx, &scanned)
}

/// Lint the whole workspace under `root`. Returns findings plus the
/// number of files scanned.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let files = walk::collect_files(root)?;
    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(file)?;
        findings.extend(lint_source(&rel, &source));
    }
    Ok((findings, files.len()))
}
