//! CLI for `cellfi-lint`.
//!
//! ```text
//! cellfi-lint [--json] [--root <dir>] [FILE...]
//! ```
//!
//! With no file arguments, lints the whole workspace (found by walking
//! up from the current directory to the first `[workspace]` manifest).
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use cellfi_lint::{lint_source, lint_workspace, report, walk};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                eprintln!("usage: cellfi-lint [--json] [--root <dir>] [FILE...]");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            file => files.push(file.to_owned()),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => return usage("no workspace root found (pass --root)"),
    };

    let (findings, scanned) = if files.is_empty() {
        match lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cellfi-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut findings = Vec::new();
        let mut scanned = 0;
        for file in &files {
            let rel = relative_to(&root, Path::new(file));
            if !walk::is_lintable(&rel) {
                eprintln!("cellfi-lint: skipping {rel} (outside the linted set)");
                continue;
            }
            match std::fs::read_to_string(file) {
                Ok(source) => {
                    findings.extend(lint_source(&rel, &source));
                    scanned += 1;
                }
                Err(e) => {
                    eprintln!("cellfi-lint: {file}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        (findings, scanned)
    };

    if json {
        println!("{}", report::to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!(
            "cellfi-lint: {} finding{} in {} file{} scanned",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            scanned,
            if scanned == 1 { "" } else { "s" },
        );
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cellfi-lint: {msg}");
    eprintln!("usage: cellfi-lint [--json] [--root <dir>] [FILE...]");
    ExitCode::from(2)
}

/// Walk up from the current directory to the first `[workspace]` manifest.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn relative_to(root: &Path, path: &Path) -> String {
    let abs = if path.is_absolute() {
        path.to_path_buf()
    } else {
        std::env::current_dir()
            .map(|c| c.join(path))
            .unwrap_or_else(|_| path.to_path_buf())
    };
    abs.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
