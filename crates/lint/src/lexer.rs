//! A minimal Rust source scanner.
//!
//! `cellfi-lint` does not need a real parser: every rule it enforces can
//! be decided from identifier-level patterns once comments and string
//! literals are out of the way. This module produces that view:
//!
//! * [`mask_source`] returns a same-length copy of the file in which
//!   comment bytes and string-literal *contents* are replaced by spaces
//!   (string quotes are kept so literal extents stay visible). Byte
//!   offsets in the masked text therefore map 1:1 onto the original,
//!   which is how findings get line numbers.
//! * [`collect_directives`] extracts `// cellfi-lint: allow(<rules>) — <reason>`
//!   directives and `// cellfi-lint: hot` hot-path markers from the
//!   comments the mask removed.
//! * [`test_line_ranges`] finds the line spans of `#[cfg(test)]` /
//!   `#[test]` items so rules can skip test code.
//!
//! The scanner understands line and (nested) block comments, plain and
//! raw string literals, char literals, and the lifetime-vs-char-literal
//! ambiguity. That is enough to be exact on this workspace and safely
//! conservative on anything weirder.

/// A `cellfi-lint: allow(...)` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive text sits on.
    pub directive_line: usize,
    /// 1-based line the directive applies to: its own line when the
    /// comment trails code, otherwise the next line holding code.
    pub applies_to_line: usize,
    /// Rule names inside `allow(...)`, as written.
    pub rules: Vec<String>,
    /// Justification text after the closing parenthesis, trimmed.
    pub reason: String,
}

/// The masked view of one source file plus everything the mask removed.
#[derive(Debug)]
pub struct ScannedFile {
    /// The unmodified source, for rules that must read literal contents
    /// (byte offsets in `masked` map 1:1 onto it).
    pub raw: String,
    /// Same length as the input; comments and string contents are spaces.
    pub masked: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// All allow directives, in file order.
    pub allows: Vec<AllowDirective>,
    /// Inclusive 1-based line ranges occupied by test-only items.
    pub test_ranges: Vec<(usize, usize)>,
    /// Lines targeted by `// cellfi-lint: hot` markers (the next line
    /// holding code, like allow directives). Each marks the fn item
    /// starting there as a hot-path allocation root (`hot` rule).
    pub hot_markers: Vec<usize>,
}

impl ScannedFile {
    /// 1-based line number of a byte offset into the (masked) source.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether a 1-based line falls inside a test-only item.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// The allow directives that cover `line`.
    pub fn allows_for_line(&self, line: usize) -> impl Iterator<Item = &AllowDirective> {
        self.allows
            .iter()
            .filter(move |a| a.applies_to_line == line)
    }
}

/// Scan one file: mask it, collect directives, and locate test items.
pub fn scan(source: &str) -> ScannedFile {
    let (masked, comments) = mask_source(source);
    let line_starts = line_starts(source);
    let (allows, hot_markers) = collect_directives(&comments, &masked, &line_starts);
    let test_ranges = test_line_ranges(&masked, &line_starts);
    ScannedFile {
        raw: source.to_owned(),
        masked,
        line_starts,
        allows,
        test_ranges,
        hot_markers,
    }
}

/// One comment the mask removed: its byte span and original text.
#[derive(Debug)]
pub struct Comment {
    /// Byte offset of the comment opener (`//` or `/*`).
    pub start: usize,
    /// Original comment text, opener included.
    pub text: String,
}

fn line_starts(source: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Replace comments and string contents with spaces; keep everything
/// byte-aligned with the input. Returns the masked text and the list of
/// removed comments (the allow-directive source).
pub fn mask_source(source: &str) -> (String, Vec<Comment>) {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = bytes.to_vec();
    let mut comments = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
                comments.push(Comment {
                    start,
                    text: source[start..i].to_owned(),
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                out[i] = b' ';
                out[i + 1] = b' ';
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    start,
                    text: source[start..i].to_owned(),
                });
            }
            b'"' => {
                // Plain string literal: keep the quotes, blank the body.
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out[i] = b' ';
                            if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                                out[i + 1] = b' ';
                            }
                            i += 2;
                        }
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => i += 1,
                        _ => {
                            out[i] = b' ';
                            i += 1;
                        }
                    }
                }
            }
            b'r' if is_raw_string_start(bytes, i) => {
                // r"..." / r#"..."# — blank the body, keep delimiters.
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while j < bytes.len() {
                    if bytes[j..].starts_with(&closer) {
                        j += closer.len();
                        break;
                    }
                    if bytes[j] != b'\n' {
                        out[j] = b' ';
                    }
                    j += 1;
                }
                i = j;
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime is `'ident` not
                // followed by a closing quote; a char literal closes.
                if let Some(end) = char_literal_end(bytes, i) {
                    for k in i + 1..end {
                        if bytes[k] != b'\n' {
                            out[k] = b' ';
                        }
                    }
                    i = end + 1;
                } else {
                    i += 1; // lifetime: leave as-is
                }
            }
            _ => i += 1,
        }
    }
    // out only ever replaces ASCII bytes with spaces, so it stays UTF-8.
    (
        String::from_utf8(out).unwrap_or_else(|_| source.to_owned()),
        comments,
    )
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"` or `r#...#"`, and the `r` must not be part of an identifier
    // (e.g. the trailing r of `var`) — except for the `br`/`cr` raw
    // byte-/C-string prefixes, where the prefix byte itself must start
    // the token.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        let prefixed = (bytes[i - 1] == b'b' || bytes[i - 1] == b'c')
            && (i < 2 || !(bytes[i - 2].is_ascii_alphanumeric() || bytes[i - 2] == b'_'));
        if !prefixed {
            return false;
        }
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// If a `'` at `i` opens a char literal, return the offset of its
/// closing quote; `None` means it is a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: find the closing quote. Start past the escaped
        // character itself so `'\''` closes at the final quote, not at
        // the quote being escaped.
        let mut j = i + 3;
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j);
    }
    // `'x'` closes immediately; `'a` (lifetime) does not.
    if bytes.get(i + 2) == Some(&b'\'') && next != b'\'' {
        return Some(i + 2);
    }
    None
}

const DIRECTIVE: &str = "cellfi-lint:";

fn collect_directives(
    comments: &[Comment],
    masked: &str,
    line_starts: &[usize],
) -> (Vec<AllowDirective>, Vec<usize>) {
    let mut allows = Vec::new();
    let mut hot_markers = Vec::new();
    for c in comments {
        // Directives live in plain comments only; doc comments merely
        // *describe* the syntax (as this crate's own docs do).
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = c.text.find(DIRECTIVE) else {
            continue;
        };
        let rest = c.text[pos + DIRECTIVE.len()..].trim_start();
        let directive_line = line_of(line_starts, c.start);
        let applies_to_line = if line_has_code(masked, line_starts, directive_line) {
            directive_line
        } else {
            next_code_line(masked, line_starts, directive_line)
        };
        // `hot` marks the next fn item as a hot-path allocation root;
        // it has no rule list or reason, so it must not fall through to
        // allow parsing (which would flag it as malformed).
        if rest == "hot" || rest.starts_with("hot ") {
            hot_markers.push(applies_to_line);
            continue;
        }
        let (rules, reason) = parse_allow_body(rest);
        allows.push(AllowDirective {
            directive_line,
            applies_to_line,
            rules,
            reason,
        });
    }
    (allows, hot_markers)
}

/// Parse `allow(rule, rule) — reason`. Unparseable bodies yield an empty
/// rule list, which the rule engine reports as a malformed directive.
fn parse_allow_body(body: &str) -> (Vec<String>, String) {
    let Some(args) = body.strip_prefix("allow") else {
        return (Vec::new(), String::new());
    };
    let args = args.trim_start();
    let Some(open) = args.strip_prefix('(') else {
        return (Vec::new(), String::new());
    };
    let Some(close) = open.find(')') else {
        return (Vec::new(), String::new());
    };
    let rules: Vec<String> = open[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = open[close + 1..]
        .trim_start_matches([' ', '\t', '—', '-', '–', ':'])
        .trim()
        .to_owned();
    (rules, reason)
}

fn line_of(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

fn line_text<'a>(masked: &'a str, line_starts: &[usize], line: usize) -> &'a str {
    let start = line_starts[line - 1];
    let end = line_starts.get(line).copied().unwrap_or(masked.len());
    &masked[start..end]
}

fn line_has_code(masked: &str, line_starts: &[usize], line: usize) -> bool {
    line_text(masked, line_starts, line)
        .chars()
        .any(|c| !c.is_whitespace())
}

fn next_code_line(masked: &str, line_starts: &[usize], after: usize) -> usize {
    let mut line = after + 1;
    while line <= line_starts.len() {
        if line_has_code(masked, line_starts, line) {
            return line;
        }
        line += 1;
    }
    after
}

/// Find the 1-based line spans of items annotated `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]`, or `#[test]`.
///
/// After such an attribute the item body runs to the matching `}` of the
/// first top-level `{` (or to a `;` for brace-less items like `use`).
fn test_line_ranges(masked: &str, line_starts: &[usize]) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b'[') {
            i += 1;
            continue;
        }
        // Attribute content up to the matching `]`.
        let mut depth = 1usize;
        let content_start = j + 1;
        j += 1;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let content = &masked[content_start..j.saturating_sub(1)];
        if !attr_marks_test(content) {
            i = j;
            continue;
        }
        // Skip any further attributes/whitespace, then find the item end.
        let end = item_end(bytes, j);
        ranges.push((line_of(line_starts, attr_start), line_of(line_starts, end)));
        i = end + 1;
    }
    ranges
}

/// Whether attribute content (inside `#[...]`) marks test-only code.
fn attr_marks_test(content: &str) -> bool {
    let trimmed = content.trim();
    if trimmed == "test" {
        return true;
    }
    let Some(cfg_args) = trimmed.strip_prefix("cfg") else {
        return false;
    };
    has_word(cfg_args, "test")
}

/// Byte offset of the end of the item starting after offset `from`:
/// the matching `}` of the first top-level brace, or the first `;` seen
/// at zero bracket/paren depth.
fn item_end(bytes: &[u8], from: usize) -> usize {
    let mut i = from;
    let mut paren = 0isize;
    let mut bracket = 0isize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b';' if paren == 0 && bracket == 0 => return i,
            b'{' => {
                let mut depth = 1usize;
                i += 1;
                while i < bytes.len() && depth > 0 {
                    match bytes[i] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                return i.saturating_sub(1);
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len().saturating_sub(1)
}

/// Whether `word` appears in `text` as a whole identifier.
pub fn has_word(text: &str, word: &str) -> bool {
    find_word(text, word, 0).is_some()
}

/// Find `word` as a whole identifier at or after byte `from`.
pub fn find_word(text: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut start = from;
    while let Some(rel) = text.get(start..)?.find(word) {
        let pos = start + rel;
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}
