//! The parse-aware rule families (v2).
//!
//! Where the v1 catalogue ([`crate::rules`]) works from identifier
//! probes, these four families walk the parsed token stream
//! ([`crate::parse`]) with scope-tracked dataflow
//! ([`crate::dataflow`]). Each one proves an invariant the flat-slab
//! engine's headline claims rest on:
//!
//! * **`parallel`** — byte-identical replay across `CELLFI_THREADS`.
//!   Closures passed to the `parallel::for_each_chunk` /
//!   `for_each_row` / `map_indexed` fan-outs must not mutate captured
//!   state (cross-chunk writes alias between workers) or reach for
//!   scheduling-dependent synchronization (`Mutex`, atomics,
//!   `unsafe`); trace events inside them must go through a forked
//!   per-entity sink, and a fn that forks sinks must absorb them back
//!   (entity-index order) in the same fn.
//! * **`slab`** — one home for stride math. Index expressions that
//!   re-derive slab offsets (`base * stride + k`, multiply-add or
//!   multiply-range arithmetic inside `[...]`) are forbidden outside
//!   `crates/sim/src/slab.rs`; everything else goes through the
//!   `Slab2`/`Slab3` accessors, so a layout change cannot silently
//!   desynchronize hand-rolled offsets.
//! * **`hot`** — the steady-state subframe loop allocates nothing.
//!   Fns marked `// cellfi-lint: hot` (and everything they reach by
//!   direct same-file calls) may not allocate (`Vec::new`, `vec!`,
//!   `collect`, `push`, `format!`, `to_string`, `to_owned`,
//!   `to_vec`, `String::from`, `Box::new`) except into bindings whose
//!   path names a reserved `*scratch*` buffer, and may not `clone`
//!   slab-typed values.
//! * **`cachegen`** — generation-keyed caches never serve stale data.
//!   A fn that writes slab gain state (`self.lin_mw` /
//!   `self.static_mw` / `self.dl_mean_dbm` through a mutating
//!   accessor) must bump `gain_gen` in the same fn, and a write to the
//!   association table (`…assoc[ue] = …`) must bump `assoc_gen` — the
//!   `(generation, set_id)` keys of `TxSetTracker` /
//!   `InterferenceCache` / `CqiMemo` only invalidate when the
//!   generation moves.
//!
//! All four respect the shared test-code exclusion and
//! `// cellfi-lint: allow(<rule>) — <reason>` escape hatch via the v1
//! [`Sink`].

use crate::dataflow;
use crate::lexer::ScannedFile;
use crate::parse::{self, Closure, Parsed, TokKind};
use crate::rules::{FileContext, Sink};
use std::collections::BTreeMap;

/// The deterministic fan-out helpers whose worker closures the
/// `parallel` rule audits (see `crates/sim/src/parallel.rs`).
const FAN_OUT: &[&str] = &["for_each_chunk", "for_each_row", "map_indexed"];

/// Identifiers that imply scheduling-dependent shared state inside a
/// fan-out closure. `Atomic*` is matched by prefix.
const SYNC_TOKENS: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "unsafe",
];

/// The implementation homes the discipline rules trust: stride math
/// lives in the slab module, worker plumbing in the parallel module.
const SLAB_MODULE: &str = "crates/sim/src/slab.rs";
const PARALLEL_MODULE: &str = "crates/sim/src/parallel.rs";

/// Slab gain state: writes through these `self` fields feed the
/// `(gain_gen, …)` cache keys.
const GAIN_FIELDS: &[&str] = &["lin_mw", "static_mw", "dl_mean_dbm"];

/// Mutating accessors through which slab state is written.
const GAIN_MUT_METHODS: &[&str] = &[
    "set",
    "at_mut",
    "lane_mut",
    "row_mut",
    "as_mut_slice",
    "fill",
];

/// Allocation calls that are exempt when they land in a `*scratch*`
/// binding (reserving/refilling scratch is how the steady state stays
/// allocation-free); everything else in [`HOT_FORBIDDEN_METHODS`] and
/// the macro/qualified sets is flagged unconditionally.
const HOT_SCRATCH_EXEMPT: &[&str] = &["collect", "push", "extend", "insert"];

/// Method calls forbidden in hot fns (subject to the scratch
/// exemption above where listed).
const HOT_FORBIDDEN_METHODS: &[&str] = &[
    "collect",
    "push",
    "extend",
    "insert",
    "to_string",
    "to_owned",
    "to_vec",
];

/// Qualified constructors forbidden in hot fns. `Vec::new` and
/// `Vec::with_capacity` get the scratch exemption (reserving scratch);
/// the rest never do.
const HOT_QUALIFIED: &[(&str, &str, bool)] = &[
    ("Vec", "new", true),
    ("Vec", "with_capacity", true),
    ("String", "new", false),
    ("String", "from", false),
    ("String", "with_capacity", false),
    ("Box", "new", false),
];

/// Run every v2 family over one parsed file.
pub(crate) fn run(sink: &mut Sink, ctx: &FileContext, scanned: &ScannedFile, parsed: &Parsed) {
    if ctx.is_bin {
        return;
    }
    if !ctx.path.ends_with(PARALLEL_MODULE) {
        check_parallel(sink, scanned, parsed);
    }
    if !ctx.path.ends_with(SLAB_MODULE) {
        check_slab(sink, scanned, parsed);
    }
    check_hot(sink, scanned, parsed);
    check_cachegen(sink, scanned, parsed);
}

/// parallel: fan-out closures own their chunk; reductions merge in
/// entity-index order.
fn check_parallel(sink: &mut Sink, scanned: &ScannedFile, parsed: &Parsed) {
    let masked = &scanned.masked;
    let toks = &parsed.tokens;
    for f in &parsed.fns {
        let Some(body) = f.body else { continue };
        // Forked per-entity sinks must be merged back in the same fn:
        // the absorb loop is where entity-index order is re-imposed.
        let forks = parse::method_call_sites(toks, masked, body, "fork");
        let absorbs = parse::method_call_sites(toks, masked, body, "absorb");
        if let Some(&first) = forks.first() {
            if absorbs.is_empty() {
                sink.report(
                    "parallel",
                    toks[first].start,
                    format!(
                        "`{}` forks per-entity sinks but never absorbs them; \
                         absorb forked state back in entity-index order in the \
                         same fn so merged traces are schedule-independent",
                        f.name
                    ),
                );
            }
        }
        for name in FAN_OUT {
            for site in parse::call_sites(toks, masked, body, name) {
                let open = site + 1;
                let Some(close) = parse::match_delim(toks, masked, open) else {
                    continue;
                };
                let Some(cl) = parse::closure_in_args(toks, masked, open, close) else {
                    continue;
                };
                check_fanout_closure(sink, scanned, parsed, &cl, name);
            }
        }
    }
}

/// Audit one worker closure passed to a fan-out helper.
fn check_fanout_closure(
    sink: &mut Sink,
    scanned: &ScannedFile,
    parsed: &Parsed,
    cl: &Closure,
    fan: &str,
) {
    let masked = &scanned.masked;
    let toks = &parsed.tokens;
    let mut locals = dataflow::bindings_in(toks, masked, cl.body);
    for p in &cl.params {
        locals.insert(p);
    }
    for m in dataflow::mutations_in(toks, masked, cl.body) {
        if !locals.contains(&m.base) {
            sink.report(
                "parallel",
                toks[m.tok].start,
                format!(
                    "`{}` is captured state mutated inside a `{fan}` closure; \
                     cross-chunk writes alias between workers — write only \
                     through the closure's own chunk arguments and merge \
                     reductions in entity-index order after the fan-out",
                    m.base
                ),
            );
        }
    }
    for tok in &toks[cl.body.0..=cl.body.1.min(toks.len().saturating_sub(1))] {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let s = tok.text(masked);
        if SYNC_TOKENS.contains(&s) || s.starts_with("Atomic") {
            sink.report(
                "parallel",
                tok.start,
                format!(
                    "`{s}` inside a `{fan}` closure: scheduling-dependent \
                     synchronization breaks byte-identical replay — restructure \
                     so each chunk owns its slice and merge after the fan-out"
                ),
            );
        }
    }
    for site in parse::method_call_sites(toks, masked, cl.body, "emit") {
        let base = dataflow::path_base_before(toks, masked, site.saturating_sub(1));
        if base.is_some_and(|b| !locals.contains(&b)) {
            sink.report(
                "parallel",
                toks[site].start,
                format!(
                    "emitting through a captured sink inside a `{fan}` closure \
                     interleaves events in schedule order; fork a per-entity \
                     sink into the chunk and absorb it in entity-index order"
                ),
            );
        }
    }
}

/// slab: multiply-add / multiply-range arithmetic inside an index
/// expression re-derives slab strides.
fn check_slab(sink: &mut Sink, scanned: &ScannedFile, parsed: &Parsed) {
    let masked = &scanned.masked;
    let toks = &parsed.tokens;
    for k in 0..toks.len() {
        if !toks[k].is(masked, "[") {
            continue;
        }
        // Indexing context: `expr[...]`, i.e. the bracket follows a
        // value (identifier, literal, or a closed group). `vec![…]`,
        // attributes, array literals/types all follow punctuation.
        if k == 0 {
            continue;
        }
        let prev = toks[k - 1].text(masked);
        let indexing = matches!(toks[k - 1].kind, TokKind::Ident | TokKind::Num)
            && !matches!(prev, "return" | "in" | "break" | "match" | "else")
            || prev == ")"
            || prev == "]";
        if !indexing {
            continue;
        }
        let Some(close) = parse::match_delim(toks, masked, k) else {
            continue;
        };
        let mut has_mul = false;
        let mut has_add = false;
        let mut has_range = false;
        let mut q = k + 1;
        while q < close {
            let s = toks[q].text(masked);
            if s == "[" {
                // Nested index: audited on its own visit.
                q = parse::match_delim(toks, masked, q).map_or(q + 1, |c| c + 1);
                continue;
            }
            let binary = q > 0
                && (matches!(toks[q - 1].kind, TokKind::Ident | TokKind::Num)
                    || toks[q - 1].is(masked, ")")
                    || toks[q - 1].is(masked, "]"));
            match s {
                "*" if binary => has_mul = true,
                "+" if binary => has_add = true,
                ".." | "..=" => has_range = true,
                _ => {}
            }
            q += 1;
        }
        if has_mul && (has_add || has_range) {
            sink.report(
                "slab",
                toks[k].start,
                "raw stride arithmetic inside an index re-derives slab \
                 offsets; go through the Slab2/Slab3 accessors \
                 (crates/sim/src/slab.rs) so layout changes cannot \
                 desynchronize hand-rolled index math"
                    .to_owned(),
            );
        }
    }
}

/// hot: fns reachable from `// cellfi-lint: hot` roots stay
/// allocation-free outside reserved scratch.
fn check_hot(sink: &mut Sink, scanned: &ScannedFile, parsed: &Parsed) {
    if !parsed.fns.iter().any(|f| f.hot) {
        return;
    }
    let masked = &scanned.masked;
    let toks = &parsed.tokens;
    // Propagate hotness through direct same-file calls (callee-name
    // matching; duplicate names are all marked — conservative).
    let mut hot_root: BTreeMap<usize, String> = BTreeMap::new();
    let mut work: Vec<usize> = Vec::new();
    for (i, f) in parsed.fns.iter().enumerate() {
        if f.hot {
            hot_root.insert(i, f.name.clone());
            work.push(i);
        }
    }
    while let Some(i) = work.pop() {
        let Some(body) = parsed.fns[i].body else {
            continue;
        };
        let root = hot_root.get(&i).cloned().unwrap_or_default();
        for callee in parse::callee_names(toks, masked, body) {
            for (j, g) in parsed.fns.iter().enumerate() {
                if g.name == callee && !hot_root.contains_key(&j) {
                    hot_root.insert(j, root.clone());
                    work.push(j);
                }
            }
        }
    }
    for (&i, root) in &hot_root {
        let f = &parsed.fns[i];
        let Some(body) = f.body else { continue };
        check_hot_body(sink, scanned, parsed, i, root, body);
    }
}

/// Scan one hot fn body for allocation and slab-clone sites.
fn check_hot_body(
    sink: &mut Sink,
    scanned: &ScannedFile,
    parsed: &Parsed,
    fn_idx: usize,
    root: &str,
    body: (usize, usize),
) {
    let masked = &scanned.masked;
    let toks = &parsed.tokens;
    let f = &parsed.fns[fn_idx];
    let mut bindings = dataflow::bindings_in(toks, masked, body);
    for p in &f.params {
        bindings.insert_typed(&p.name, &p.ty);
    }
    let scratch_named = |idents: &[String]| idents.iter().any(|s| s.contains("scratch"));
    let hi = body.1.min(toks.len().saturating_sub(1));
    for k in body.0..=hi {
        if toks[k].kind != TokKind::Ident {
            continue;
        }
        let s = toks[k].text(masked);
        let next_is = |t: &str| toks.get(k + 1).is_some_and(|n| n.is(masked, t));
        // Allocating macros: `format!` always, `vec!` unless scratch.
        if s == "format" && next_is("!") {
            report_hot(sink, toks[k].start, root, "format! allocates a String");
            continue;
        }
        if s == "vec" && next_is("!") {
            if !scratch_named(&dataflow::assign_target_idents(toks, masked, k)) {
                report_hot(sink, toks[k].start, root, "vec! allocates");
            }
            continue;
        }
        // Qualified constructors: `Vec::new`, `Box::new`, …
        if let Some(&(ty, method, exemptable)) = HOT_QUALIFIED.iter().find(|&&(ty, method, _)| {
            ty == s && next_is("::") && toks.get(k + 2).is_some_and(|n| n.is(masked, method))
        }) {
            let exempt =
                exemptable && scratch_named(&dataflow::assign_target_idents(toks, masked, k));
            if !exempt {
                report_hot(
                    sink,
                    toks[k].start,
                    root,
                    &format!("{ty}::{method} allocates"),
                );
            }
            continue;
        }
        // Method calls: allocation set and slab clones.
        let is_method = k > 0 && toks[k - 1].is(masked, ".") && next_is("(");
        if !is_method {
            continue;
        }
        if HOT_FORBIDDEN_METHODS.contains(&s) {
            let exempt = if HOT_SCRATCH_EXEMPT.contains(&s) {
                // `push`/`extend`/`insert` refill their receiver;
                // `collect` lands in its assignment target.
                let idents = if s == "collect" {
                    dataflow::assign_target_idents(toks, masked, k)
                } else {
                    dataflow::path_idents_before(toks, masked, k - 1)
                };
                scratch_named(&idents)
            } else {
                false
            };
            if !exempt {
                report_hot(sink, toks[k].start, root, &format!(".{s}() allocates"));
            }
            continue;
        }
        if s == "clone" {
            let base = dataflow::path_base_before(toks, masked, k - 1);
            let slab_typed = base
                .as_deref()
                .and_then(|b| bindings.ty(b))
                .is_some_and(|ty| ty.contains("Slab2") || ty.contains("Slab3"));
            if slab_typed {
                report_hot(
                    sink,
                    toks[k].start,
                    root,
                    ".clone() on a slab copies the whole tensor",
                );
            }
        }
    }
}

fn report_hot(sink: &mut Sink, offset: usize, root: &str, what: &str) {
    sink.report(
        "hot",
        offset,
        format!(
            "{what} in a per-subframe hot path (reached from \
             `// cellfi-lint: hot` root `{root}`); steady-state subframes \
             must reuse reserved *_scratch buffers instead"
        ),
    );
}

/// cachegen: slab gain writes bump `gain_gen`; association writes bump
/// `assoc_gen` — in the same fn as the mutation.
fn check_cachegen(sink: &mut Sink, scanned: &ScannedFile, parsed: &Parsed) {
    let masked = &scanned.masked;
    let toks = &parsed.tokens;
    for f in &parsed.fns {
        let Some(body) = f.body else { continue };
        let hi = body.1.min(toks.len().saturating_sub(1));
        let bumps = |gen_name: &str| -> bool {
            (body.0..=hi).any(|k| {
                toks[k].kind == TokKind::Ident
                    && toks[k].is(masked, gen_name)
                    && toks
                        .get(k + 1)
                        .is_some_and(|n| n.is(masked, "+=") || n.is(masked, "="))
            })
        };
        let mut gain_sites = Vec::new();
        let mut assoc_sites = Vec::new();
        for k in body.0..=hi {
            if toks[k].kind != TokKind::Ident {
                continue;
            }
            let s = toks[k].text(masked);
            // `self.<gain field>.<mutating accessor>(…)` or a wholesale
            // `self.<gain field> = …` replacement.
            if s == "self"
                && toks.get(k + 1).is_some_and(|t| t.is(masked, "."))
                && toks
                    .get(k + 2)
                    .is_some_and(|t| GAIN_FIELDS.contains(&t.text(masked)))
            {
                let write = match toks.get(k + 3).map(|t| t.text(masked)) {
                    Some(".") => toks
                        .get(k + 4)
                        .is_some_and(|t| GAIN_MUT_METHODS.contains(&t.text(masked)))
                        .then_some(k + 4),
                    Some("=") => Some(k + 2),
                    _ => None,
                };
                if let Some(site) = write {
                    gain_sites.push((site, toks.get(k + 2).map_or("", |t| t.text(masked))));
                }
            }
            // `….assoc[ue] = …` association rewrites.
            if s == "assoc" && k > 0 && toks[k - 1].is(masked, ".") {
                if let Some(close) = toks
                    .get(k + 1)
                    .filter(|t| t.is(masked, "["))
                    .and_then(|_| parse::match_delim(toks, masked, k + 1))
                {
                    let writes = toks
                        .get(close + 1)
                        .is_some_and(|t| t.is(masked, "=") || t.is(masked, "+="));
                    if writes {
                        assoc_sites.push(k);
                    }
                }
            }
        }
        if !gain_sites.is_empty() && !bumps("gain_gen") {
            for (site, field) in gain_sites {
                sink.report(
                    "cachegen",
                    toks[site].start,
                    format!(
                        "`{}` writes slab gain state (`{field}`) without bumping \
                         `gain_gen`; the (gain_gen, set_id) cache keys would \
                         replay stale interference/CQI for the changed gains",
                        f.name
                    ),
                );
            }
        }
        if !assoc_sites.is_empty() && !bumps("assoc_gen") {
            for site in assoc_sites {
                sink.report(
                    "cachegen",
                    toks[site].start,
                    format!(
                        "`{}` rewrites the association table without bumping \
                         `assoc_gen`; the CQI memo would replay scans for the \
                         old association",
                        f.name
                    ),
                );
            }
        }
    }
}
