//! Finding type and output rendering (human text and JSON).

use std::fmt;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule family: `determinism`, `panic`, `units`, or `lint-allow`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Render findings as a JSON array (stable field order, no trailing ws).
///
/// Hand-rolled on purpose: the linter is dependency-free so it can run
/// before anything else in the workspace builds.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"rule\":{},", json_string(f.rule)));
        out.push_str(&format!("\"path\":{},", json_string(&f.path)));
        out.push_str(&format!("\"line\":{},", f.line));
        out.push_str(&format!("\"message\":{}", json_string(&f.message)));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        assert_eq!(to_json(&[]), "[]");
    }

    #[test]
    fn findings_render_with_stable_fields() {
        let f = Finding {
            rule: "panic",
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            message: "msg".into(),
        };
        let json = to_json(std::slice::from_ref(&f));
        assert!(json.contains("\"rule\":\"panic\""), "{json}");
        assert!(json.contains("\"line\":3"), "{json}");
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:3: [panic] msg");
    }
}
