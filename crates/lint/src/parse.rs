//! A lightweight recursive-descent parser over the masked token stream.
//!
//! The v2 rule families ([`crate::rules_v2`]) need more structure than
//! identifier probes: which `fn` a finding sits in, what a closure
//! binds, where a call's argument list ends. This module supplies
//! exactly that much syntax — no types, no name resolution, no AST —
//! by tokenizing the masked text from [`crate::lexer::mask_source`]
//! (so comments and string bodies are already spaces) and walking the
//! token stream with a few recursive-descent routines:
//!
//! * [`tokenize`] — idents, numbers, string/char/lifetime literals and
//!   punctuation (multi-byte operators like `::`, `..`, `+=` merged),
//!   each with its byte span so findings keep exact lines.
//! * [`parse`] — scans items for `fn` signatures (name, parameter
//!   names + type text, body token range) and attaches
//!   `// cellfi-lint: hot` markers to the fn they precede.
//! * [`closure_in_args`], [`call_sites`], [`method_call_sites`],
//!   [`callee_names`] — the expression-level probes rules compose.
//!
//! Everything is intra-file and conservative: unparseable corners are
//! skipped, never guessed at, so a weird construct can suppress a
//! finding but not invent one.

use crate::lexer::ScannedFile;

/// Token classes: just enough to tell identifiers from operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (possibly with suffix).
    Num,
    /// String literal (contents masked; quotes kept).
    Str,
    /// Char literal (contents masked).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation; multi-byte operators are one token.
    Punct,
}

/// One token with its byte span in the masked (= raw) source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text in the masked source.
    pub fn text<'a>(&self, masked: &'a str) -> &'a str {
        masked.get(self.start..self.end).unwrap_or("")
    }

    /// Whether the token's text equals `s`.
    pub fn is(&self, masked: &str, s: &str) -> bool {
        self.text(masked) == s
    }
}

/// Multi-byte operators merged into single tokens, longest first.
const PUNCT3: &[&str] = &["..=", "<<=", ">>="];
const PUNCT2: &[&str] = &[
    "::", "..", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
    "&&", "||",
];

/// Tokenize masked source text. Whitespace separates; comment bytes are
/// already spaces, so only code reaches the stream.
pub fn tokenize(masked: &str) -> Vec<Token> {
    let bytes = masked.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if b == b'_' || b.is_ascii_alphabetic() {
            i += 1;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                start,
                end: i,
            });
            continue;
        }
        if b.is_ascii_digit() {
            i += 1;
            while i < bytes.len() {
                let c = bytes[i];
                if is_ident_byte(c) {
                    i += 1;
                } else if c == b'.' && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                    // Float point, but not the start of a `..` range.
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Token {
                kind: TokKind::Num,
                start,
                end: i,
            });
            continue;
        }
        if b == b'"' {
            // Masked string body: spaces up to the kept closing quote.
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                i += 1;
            }
            i = (i + 1).min(bytes.len());
            toks.push(Token {
                kind: TokKind::Str,
                start,
                end: i,
            });
            continue;
        }
        if b == b'\'' {
            // Masked char literals are '<spaces>'; lifetimes are 'ident.
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            if j > i + 1 && bytes.get(j) == Some(&b'\'') {
                toks.push(Token {
                    kind: TokKind::Char,
                    start,
                    end: j + 1,
                });
                i = j + 1;
            } else {
                i += 1;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::Lifetime,
                    start,
                    end: i,
                });
            }
            continue;
        }
        let rest = masked.get(i..).unwrap_or("");
        let merged = PUNCT3
            .iter()
            .chain(PUNCT2.iter())
            .find(|p| rest.starts_with(**p));
        let len = merged.map_or(1, |p| p.len());
        toks.push(Token {
            kind: TokKind::Punct,
            start,
            end: i + len,
        });
        i += len;
    }
    toks
}

/// One parameter of a `fn` signature.
#[derive(Debug)]
pub struct Param {
    /// The bound name (`self` for receiver params).
    pub name: String,
    /// The type text as written (whitespace included).
    pub ty: String,
}

/// One `fn` item found in the file (nested fns included).
#[derive(Debug)]
pub struct FnItem {
    /// The fn's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Token indices of the body braces `(open, close)`, inclusive;
    /// `None` for trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether a `// cellfi-lint: hot` marker targets this fn.
    pub hot: bool,
}

/// The parsed view of one file.
#[derive(Debug)]
pub struct Parsed {
    /// The full token stream.
    pub tokens: Vec<Token>,
    /// Every fn item, in file order.
    pub fns: Vec<FnItem>,
}

/// Parse a scanned file: tokenize and scan for fn items, attaching hot
/// markers to the first fn at or after each marker's target line.
pub fn parse(scanned: &ScannedFile) -> Parsed {
    let masked = &scanned.masked;
    let tokens = tokenize(masked);
    let mut fns: Vec<FnItem> = Vec::new();
    let mut k = 0;
    while k < tokens.len() {
        if tokens[k].kind != TokKind::Ident || !tokens[k].is(masked, "fn") {
            k += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(k + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            // `fn(...)` pointer type, not an item.
            k += 1;
            continue;
        }
        let name = name_tok.text(masked).to_owned();
        let line = scanned.line_of(tokens[k].start);
        let mut j = k + 2;
        if tokens.get(j).is_some_and(|t| t.is(masked, "<")) {
            j = skip_angles(&tokens, masked, j);
        }
        if !tokens.get(j).is_some_and(|t| t.is(masked, "(")) {
            k += 1;
            continue;
        }
        let Some(params_close) = match_delim(&tokens, masked, j) else {
            k += 1;
            continue;
        };
        let params = parse_params(&tokens, masked, j + 1, params_close);
        // Signature tail (return type, where clause) up to the body
        // brace or a `;`, skipping bracketed groups like `-> [f64; 4]`.
        let mut b = params_close + 1;
        let mut body = None;
        while let Some(t) = tokens.get(b) {
            let s = t.text(masked);
            if s == "(" || s == "[" {
                b = match_delim(&tokens, masked, b).map_or(b + 1, |c| c + 1);
                continue;
            }
            if s == "{" {
                if let Some(end) = match_delim(&tokens, masked, b) {
                    body = Some((b, end));
                }
                break;
            }
            if s == ";" {
                break;
            }
            b += 1;
        }
        fns.push(FnItem {
            name,
            line,
            params,
            body,
            hot: false,
        });
        // Continue from just inside the body so nested items are seen.
        k = body.map_or(b, |(open, _)| open) + 1;
    }
    for &marker in &scanned.hot_markers {
        if let Some(f) = fns
            .iter_mut()
            .filter(|f| f.line >= marker)
            .min_by_key(|f| f.line)
        {
            f.hot = true;
        }
    }
    Parsed { tokens, fns }
}

/// Token index of the closer matching the `(`/`[`/`{` at `open`.
pub fn match_delim(tokens: &[Token], masked: &str, open: usize) -> Option<usize> {
    let (o, c) = match tokens.get(open)?.text(masked) {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        let s = t.text(masked);
        if s == o {
            depth += 1;
        } else if s == c {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Skip a balanced `<...>` generics group starting at `open`; returns
/// the index just past the closing `>`.
fn skip_angles(tokens: &[Token], masked: &str, open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < tokens.len() {
        match tokens[k].text(masked) {
            "<" => depth += 1,
            ">" => depth -= 1,
            _ => {}
        }
        k += 1;
        if depth <= 0 {
            return k;
        }
    }
    k
}

/// Split a parameter list (tokens strictly between the parens) at
/// top-level commas and extract (name, type) per parameter.
fn parse_params(tokens: &[Token], masked: &str, start: usize, close: usize) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut seg_start = start;
    for k in start..=close.min(tokens.len()) {
        let s = if k == close {
            ","
        } else {
            tokens[k].text(masked)
        };
        if s == "," && depth == 0 {
            if let Some(p) = param_of(tokens.get(seg_start..k).unwrap_or(&[]), masked) {
                params.push(p);
            }
            seg_start = k + 1;
            continue;
        }
        match s {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            _ => {}
        }
    }
    params
}

/// Extract one parameter from its token segment.
fn param_of(seg: &[Token], masked: &str) -> Option<Param> {
    if seg.is_empty() {
        return None;
    }
    let mut depth = 0i32;
    let mut colon = None;
    for (k, t) in seg.iter().enumerate() {
        match t.text(masked) {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            ":" if depth == 0 => {
                colon = Some(k);
                break;
            }
            _ => {}
        }
    }
    match colon {
        Some(c) => {
            let name = seg
                .get(..c)?
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && !t.is(masked, "mut"))
                .map(|t| t.text(masked).to_owned())?;
            let ty_start = seg.get(c + 1)?.start;
            let ty_end = seg.last()?.end;
            let ty = masked.get(ty_start..ty_end).unwrap_or("").trim().to_owned();
            Some(Param { name, ty })
        }
        None => seg.iter().any(|t| t.is(masked, "self")).then(|| Param {
            name: "self".to_owned(),
            ty: "self".to_owned(),
        }),
    }
}

/// A closure literal found in an argument list.
#[derive(Debug)]
pub struct Closure {
    /// Names bound by the closure head (pattern idents, types filtered
    /// only as far as `mut` — over-binding is conservative here).
    pub params: Vec<String>,
    /// Inclusive token range of the body.
    pub body: (usize, usize),
}

/// The last closure literal at the top level of a call's argument list
/// (`tokens[open]` is the call's `(`; `close` its `)`). Fan-out helpers
/// take the worker closure as their final argument.
pub fn closure_in_args(
    tokens: &[Token],
    masked: &str,
    open: usize,
    close: usize,
) -> Option<Closure> {
    let mut k = open + 1;
    let mut found = None;
    while k < close {
        let s = tokens[k].text(masked);
        match s {
            "(" | "[" | "{" => {
                k = match_delim(tokens, masked, k).map_or(k + 1, |c| c + 1);
                continue;
            }
            "||" => {
                if let Some(cl) = closure_at(tokens, masked, k, k, close) {
                    k = cl.body.1 + 1;
                    found = Some(cl);
                    continue;
                }
            }
            "|" => {
                // Parameter pipe: scan to the closing `|`, bailing out
                // if this is a bitwise-or (statement punctuation first).
                let mut p = k + 1;
                while p < close
                    && !tokens[p].is(masked, "|")
                    && !matches!(tokens[p].text(masked), ";" | "{" | "}" | "=" | "(" | ")")
                    && p - k < 40
                {
                    p += 1;
                }
                if p < close && tokens[p].is(masked, "|") {
                    if let Some(cl) = closure_at(tokens, masked, k, p, close) {
                        k = cl.body.1 + 1;
                        found = Some(cl);
                        continue;
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    found
}

/// Build a [`Closure`] whose head spans `start ..= params_end` (both
/// pipes, or one `||` token) inside a call ending at token `close`.
fn closure_at(
    tokens: &[Token],
    masked: &str,
    start: usize,
    params_end: usize,
    close: usize,
) -> Option<Closure> {
    let params = if start == params_end {
        Vec::new()
    } else {
        tokens
            .get(start + 1..params_end)?
            .iter()
            .filter(|t| t.kind == TokKind::Ident && !t.is(masked, "mut"))
            .map(|t| t.text(masked).to_owned())
            .collect()
    };
    let b = params_end + 1;
    let t = tokens.get(b)?;
    if t.is(masked, "{") {
        let end = match_delim(tokens, masked, b)?;
        return Some(Closure {
            params,
            body: (b, end),
        });
    }
    // Expression body: runs to the next top-level `,` or the call's `)`.
    let mut depth = 0i32;
    let mut k = b;
    while k < close {
        match tokens[k].text(masked) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    Some(Closure {
        params,
        body: (b, k.saturating_sub(1).max(b)),
    })
}

/// Indices of `name(...)` call sites (plain or method) in a token range.
pub fn call_sites(tokens: &[Token], masked: &str, range: (usize, usize), name: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for k in range.0..=range.1.min(tokens.len().saturating_sub(1)) {
        if tokens[k].kind == TokKind::Ident
            && tokens[k].is(masked, name)
            && tokens.get(k + 1).is_some_and(|t| t.is(masked, "("))
            && !(k > 0 && tokens[k - 1].is(masked, "fn"))
        {
            out.push(k);
        }
    }
    out
}

/// Indices of `.name(...)` method-call sites in a token range.
pub fn method_call_sites(
    tokens: &[Token],
    masked: &str,
    range: (usize, usize),
    name: &str,
) -> Vec<usize> {
    call_sites(tokens, masked, range, name)
        .into_iter()
        .filter(|&k| k > 0 && tokens[k - 1].is(masked, "."))
        .collect()
}

/// Names of everything called as `name(...)`, `.name(...)` or
/// `Self::name(...)` in a body range — the per-file call graph edge set
/// for hot-path propagation. Calls qualified by a foreign type
/// (`UeId::new(...)`) are excluded: matching those by bare name would
/// conflate every type's `new` with every other's.
pub fn callee_names(tokens: &[Token], masked: &str, range: (usize, usize)) -> Vec<String> {
    let mut out = Vec::new();
    for k in range.0..=range.1.min(tokens.len().saturating_sub(1)) {
        if tokens[k].kind == TokKind::Ident
            && tokens.get(k + 1).is_some_and(|t| t.is(masked, "("))
            && !(k > 0 && tokens[k - 1].is(masked, "fn"))
        {
            let foreign_qualified = k > 1
                && tokens[k - 1].is(masked, "::")
                && tokens[k - 2].kind == TokKind::Ident
                && !tokens[k - 2].is(masked, "Self");
            if !foreign_qualified {
                out.push(tokens[k].text(masked).to_owned());
            }
        }
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse_str(src: &str) -> Parsed {
        parse(&lexer::scan(src))
    }

    #[test]
    fn tokenizer_merges_multibyte_operators() {
        let toks = tokenize("a += b..c ..= d :: e");
        let texts: Vec<&str> = toks
            .iter()
            .map(|t| t.text("a += b..c ..= d :: e"))
            .collect();
        assert_eq!(
            texts,
            vec!["a", "+=", "b", "..", "c", "..=", "d", "::", "e"]
        );
    }

    #[test]
    fn tokenizer_separates_float_from_range() {
        let src = "1.5 + x[0..n]";
        let toks = tokenize(src);
        let texts: Vec<&str> = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(texts, vec!["1.5", "+", "x", "[", "0", "..", "n", "]"]);
    }

    #[test]
    fn fn_items_capture_name_params_and_body() {
        let p = parse_str(
            "impl X { pub fn go<T: Ord>(&mut self, n_sub: usize) -> [f64; 4] { [0.0; 4] } }",
        );
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "go");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "self");
        assert_eq!(f.params[1].name, "n_sub");
        assert_eq!(f.params[1].ty, "usize");
        assert!(f.body.is_some());
    }

    #[test]
    fn hot_marker_attaches_to_next_fn() {
        let p = parse_str("fn cold() {}\n// cellfi-lint: hot\nfn warm() {}\nfn later() {}\n");
        let hot: Vec<&str> = p
            .fns
            .iter()
            .filter(|f| f.hot)
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(hot, vec!["warm"]);
    }

    #[test]
    fn closure_in_args_finds_last_argument_closure() {
        let src = "fn f() { for_each_chunk(data, 8, 4, |u, block| { block[0] = u as f64; }); }";
        let p = parse_str(src);
        let sites = call_sites(&p.tokens, src, (0, p.tokens.len() - 1), "for_each_chunk");
        assert_eq!(sites.len(), 1);
        let close = match_delim(&p.tokens, src, sites[0] + 1).unwrap();
        let cl = closure_in_args(&p.tokens, src, sites[0] + 1, close).unwrap();
        assert_eq!(cl.params, vec!["u", "block"]);
    }
}
