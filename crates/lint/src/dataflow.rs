//! Scope-tracked intra-procedural dataflow over the token stream.
//!
//! The v2 rules need three questions answered about any expression in
//! a fn or closure body:
//!
//! 1. **What is bound locally?** ([`bindings_in`]) — `let` patterns
//!    (including `if let`/`while let`/`let-else`), `for` patterns and
//!    nested closure parameters, with type text recorded for simple
//!    `let name: Ty = …` ascriptions and fn parameters. The parallel
//!    rule uses this to separate a closure's own state from captures.
//! 2. **What is mutated?** ([`mutations_in`]) — `=`/compound
//!    assignments and calls to known mutating methods (`push`,
//!    `fill`, …), each resolved backwards through the receiver path
//!    (`a.b[i].c = …` mutates `a`) to its base identifier.
//! 3. **Where does an allocation land?** ([`assign_target_idents`]) —
//!    the identifier path an allocating expression is assigned into
//!    (`let mut hits_scratch = Vec::new()` → `hits_scratch`), so the
//!    hot-path rule can exempt reserved scratch buffers.
//!
//! All walks are token-local and bail out (returning nothing) on
//! constructs they do not model — conservative in the direction of
//! fewer findings, never more.

use crate::parse::{TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// Names (and, where visible, types) bound within a scope.
#[derive(Debug, Default)]
pub struct Bindings {
    names: BTreeSet<String>,
    types: BTreeMap<String, String>,
}

impl Bindings {
    /// Whether `name` is bound in this scope.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// The recorded type text for `name`, if an ascription was seen.
    pub fn ty(&self, name: &str) -> Option<&str> {
        self.types.get(name).map(String::as_str)
    }

    /// Bind `name` with no type information.
    pub fn insert(&mut self, name: &str) {
        self.names.insert(name.to_owned());
    }

    /// Bind `name` with its written type text.
    pub fn insert_typed(&mut self, name: &str, ty: &str) {
        self.names.insert(name.to_owned());
        self.types.insert(name.to_owned(), ty.to_owned());
    }
}

/// Keywords that can appear inside patterns or path walks but never
/// name a binding.
fn is_non_binding_keyword(s: &str) -> bool {
    matches!(
        s,
        "mut" | "ref" | "let" | "if" | "while" | "else" | "in" | "move" | "box"
    )
}

/// Collect names bound inside a token range (inclusive): `let`/`for`
/// patterns and nested closure parameters. Enum variants in patterns
/// over-bind (`Some(x)` binds both `Some` and `x`); that is the
/// conservative direction — an over-bound name can only suppress a
/// capture finding, not create one.
pub fn bindings_in(tokens: &[Token], masked: &str, range: (usize, usize)) -> Bindings {
    let mut b = Bindings::default();
    let hi = range.1.min(tokens.len().saturating_sub(1));
    let mut k = range.0;
    while k <= hi {
        let t = &tokens[k];
        if t.kind == TokKind::Ident && t.is(masked, "let") {
            k = collect_let(tokens, masked, k, hi, &mut b);
            continue;
        }
        if t.kind == TokKind::Ident && t.is(masked, "for") {
            let mut p = k + 1;
            while p <= hi && !tokens[p].is(masked, "in") && p - k < 24 {
                if tokens[p].kind == TokKind::Ident
                    && !is_non_binding_keyword(tokens[p].text(masked))
                {
                    b.insert(tokens[p].text(masked));
                }
                p += 1;
            }
            k = p;
            continue;
        }
        if t.is(masked, "|") {
            // A nested closure head: idents to the closing pipe. Bail on
            // statement punctuation so bitwise-or does not bind.
            let mut p = k + 1;
            let mut ok = false;
            while p <= hi && p - k < 40 {
                let s = tokens[p].text(masked);
                if s == "|" {
                    ok = true;
                    break;
                }
                if matches!(s, ";" | "{" | "}" | "=") {
                    break;
                }
                p += 1;
            }
            if ok {
                for tok in &tokens[k + 1..p] {
                    if tok.kind == TokKind::Ident && !is_non_binding_keyword(tok.text(masked)) {
                        b.insert(tok.text(masked));
                    }
                }
                k = p + 1;
                continue;
            }
        }
        k += 1;
    }
    b
}

/// Collect one `let` statement's pattern starting at the `let` token;
/// returns the index to resume scanning from.
fn collect_let(tokens: &[Token], masked: &str, at: usize, hi: usize, b: &mut Bindings) -> usize {
    let mut p = at + 1;
    let mut depth = 0i32;
    let mut colon: Option<usize> = None;
    let mut pat_ids: Vec<usize> = Vec::new();
    while p <= hi {
        let s = tokens[p].text(masked);
        if depth <= 0 && matches!(s, "=" | ";" | "else") {
            break;
        }
        match s {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            ":" if depth == 0 && colon.is_none() => colon = Some(p),
            _ => {
                if tokens[p].kind == TokKind::Ident && colon.is_none() && !is_non_binding_keyword(s)
                {
                    pat_ids.push(p);
                }
            }
        }
        p += 1;
    }
    for &id in &pat_ids {
        b.insert(tokens[id].text(masked));
    }
    if let (Some(c), [single]) = (colon, pat_ids.as_slice()) {
        // Simple `let name: Ty = …`: record the type text for the one
        // bound name so slab-typed receivers stay identifiable.
        if let (Some(f), Some(l)) = (tokens.get(c + 1), tokens.get(p.saturating_sub(1))) {
            if f.start <= l.end {
                let ty = masked.get(f.start..l.end).unwrap_or("").trim().to_owned();
                b.insert_typed(tokens[*single].text(masked), &ty);
            }
        }
    }
    p
}

/// A mutation site resolved to the base identifier of the written path.
#[derive(Debug)]
pub struct Mutation {
    /// The leftmost identifier of the assigned/mutated path (`self`
    /// for field writes through the receiver).
    pub base: String,
    /// Token index anchoring the finding.
    pub tok: usize,
}

/// Methods that mutate their receiver in place.
const MUT_METHODS: &[&str] = &[
    "push",
    "push_str",
    "pop",
    "clear",
    "extend",
    "extend_from_slice",
    "insert",
    "remove",
    "resize",
    "resize_with",
    "truncate",
    "fill",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "swap",
    "copy_from_slice",
    "clone_from",
    "drain",
    "retain",
];

/// Compound assignment operators (merged by the tokenizer).
const COMPOUND_ASSIGN: &[&str] = &["+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "<<=", ">>="];

/// Find direct mutations in a token range: assignments and mutating
/// method calls, each resolved to the mutated path's base identifier.
pub fn mutations_in(tokens: &[Token], masked: &str, range: (usize, usize)) -> Vec<Mutation> {
    let mut out = Vec::new();
    let hi = range.1.min(tokens.len().saturating_sub(1));
    for k in range.0..=hi {
        let s = tokens[k].text(masked);
        let is_assign = s == "="
            && tokens[k].kind == TokKind::Punct
            && !in_binding_statement(tokens, masked, range.0, k);
        let is_compound = COMPOUND_ASSIGN.contains(&s);
        if is_assign || is_compound {
            if let Some(base) = path_base_before(tokens, masked, k) {
                out.push(Mutation { base, tok: k });
            }
            continue;
        }
        if tokens[k].kind == TokKind::Ident
            && MUT_METHODS.contains(&s)
            && k > 0
            && tokens[k - 1].is(masked, ".")
            && tokens.get(k + 1).is_some_and(|t| t.is(masked, "("))
        {
            if let Some(base) = path_base_before(tokens, masked, k - 1) {
                out.push(Mutation { base, tok: k });
            }
        }
    }
    out
}

/// Whether the `=` at `eq` belongs to a `let`/`if let`/`while let`
/// binding rather than an assignment: scan back to the statement
/// boundary and look for a `let` keyword.
fn in_binding_statement(tokens: &[Token], masked: &str, lo: usize, eq: usize) -> bool {
    let mut k = eq;
    let mut steps = 0;
    while k > lo && steps < 64 {
        k -= 1;
        steps += 1;
        let s = tokens[k].text(masked);
        if matches!(s, ";" | "{" | "}") {
            return false;
        }
        if tokens[k].kind == TokKind::Ident && s == "let" {
            return true;
        }
    }
    false
}

/// Walk the path expression ending just before token `at` backwards to
/// its base identifier: `a.b[i].c` → `a`; `*slot` → `slot`;
/// `self.x.row_mut(i)` → `self`. `None` when no path precedes.
pub fn path_base_before(tokens: &[Token], masked: &str, at: usize) -> Option<String> {
    let mut k = at;
    let mut base: Option<usize> = None;
    while k > 0 {
        k -= 1;
        let t = &tokens[k];
        let s = t.text(masked);
        match s {
            "]" | ")" => {
                k = matching_open(tokens, masked, k)?;
                continue;
            }
            "." | "::" | "*" | "&" | "?" => continue,
            _ if t.kind == TokKind::Ident && !is_non_binding_keyword(s) => {
                base = Some(k);
                continue;
            }
            _ => break,
        }
    }
    base.map(|k| tokens[k].text(masked).to_owned())
}

/// All identifiers along the path expression ending just before token
/// `at` — `self.hit_scratch[u]` → `["self", "hit_scratch", "u"]`. Used
/// for name-convention checks like the scratch-buffer exemption.
pub fn path_idents_before(tokens: &[Token], masked: &str, at: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut k = at;
    while k > 0 {
        k -= 1;
        let t = &tokens[k];
        let s = t.text(masked);
        match s {
            "]" | ")" => {
                // Keep index identifiers: they are part of the written
                // path's text for naming purposes.
                let Some(open) = matching_open(tokens, masked, k) else {
                    break;
                };
                for tok in &tokens[open + 1..k] {
                    if tok.kind == TokKind::Ident {
                        out.push(tok.text(masked).to_owned());
                    }
                }
                k = open;
                continue;
            }
            "." | "::" | "*" | "&" | "?" => continue,
            _ if t.kind == TokKind::Ident && !is_non_binding_keyword(s) => {
                out.push(s.to_owned());
                continue;
            }
            _ => break,
        }
    }
    out
}

/// Token index of the opener matching the `)`/`]` at `close`.
fn matching_open(tokens: &[Token], masked: &str, close: usize) -> Option<usize> {
    let (o, c) = match tokens.get(close)?.text(masked) {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        "}" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0usize;
    let mut k = close + 1;
    while k > 0 {
        k -= 1;
        let s = tokens[k].text(masked);
        if s == c {
            depth += 1;
        } else if s == o {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// The identifier path an allocating expression at token `site` is
/// assigned into: the `let` binding, plain-assignment target, or
/// struct-literal field name. Empty when the allocation sits in
/// argument/expression position (not assigned anywhere nameable).
pub fn assign_target_idents(tokens: &[Token], masked: &str, site: usize) -> Vec<String> {
    // Walk back to the statement/field boundary at depth 0.
    let mut k = site;
    let mut depth = 0i32;
    let mut eq: Option<usize> = None;
    let mut boundary = 0usize;
    while k > 0 {
        k -= 1;
        let s = tokens[k].text(masked);
        match s {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                if depth > 0 {
                    depth -= 1;
                } else {
                    boundary = k + 1;
                    break;
                }
            }
            ";" | "," if depth == 0 => {
                boundary = k + 1;
                break;
            }
            "=" if depth == 0 && eq.is_none() => eq = Some(k),
            _ => {}
        }
    }
    let seg = tokens.get(boundary..site).unwrap_or(&[]);
    if seg.first().is_some_and(|t| t.is(masked, "let")) {
        // `let [mut] name …`
        return seg
            .iter()
            .skip(1)
            .find(|t| t.kind == TokKind::Ident && !is_non_binding_keyword(t.text(masked)))
            .map(|t| vec![t.text(masked).to_owned()])
            .unwrap_or_default();
    }
    if let Some(e) = eq {
        return path_idents_before(tokens, masked, e);
    }
    // Struct-literal field init: `name: <alloc>` right after a boundary.
    if seg.len() >= 2 && seg[0].kind == TokKind::Ident && seg[1].is(masked, ":") {
        return vec![seg[0].text(masked).to_owned()];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::tokenize;

    fn all(toks: &[Token]) -> (usize, usize) {
        (0, toks.len().saturating_sub(1))
    }

    #[test]
    fn let_and_for_patterns_bind() {
        let src = "let mut total = 0.0; for (i, v) in xs.iter().enumerate() { }";
        let toks = tokenize(src);
        let b = bindings_in(&toks, src, all(&toks));
        assert!(b.contains("total"));
        assert!(b.contains("i"));
        assert!(b.contains("v"));
        assert!(!b.contains("xs"));
    }

    #[test]
    fn typed_let_records_type_text() {
        let src = "let snap: Slab2 = other.clone();";
        let toks = tokenize(src);
        let b = bindings_in(&toks, src, all(&toks));
        assert_eq!(b.ty("snap"), Some("Slab2"));
    }

    #[test]
    fn mutations_resolve_to_path_base() {
        let src = "row.cqi[s] = v; *slot = 1.0; total += x; out.push(y);";
        let toks = tokenize(src);
        let muts = mutations_in(&toks, src, all(&toks));
        let bases: Vec<&str> = muts.iter().map(|m| m.base.as_str()).collect();
        assert_eq!(bases, vec!["row", "slot", "total", "out"]);
    }

    #[test]
    fn let_initializer_is_not_a_mutation() {
        let src = "let x = 3; if let Some(y) = opt { }";
        let toks = tokenize(src);
        assert!(mutations_in(&toks, src, all(&toks)).is_empty());
    }

    #[test]
    fn alloc_targets_cover_let_assign_and_field_init() {
        let src = "let mut hits_scratch = Vec::new();";
        let toks = tokenize(src);
        let site = toks
            .iter()
            .position(|t| t.is(src, "Vec"))
            .unwrap_or_default();
        assert_eq!(assign_target_idents(&toks, src, site), vec!["hits_scratch"]);

        let src2 = "Row { hits: Vec::new(), }";
        let toks2 = tokenize(src2);
        let site2 = toks2
            .iter()
            .position(|t| t.is(src2, "Vec"))
            .unwrap_or_default();
        assert_eq!(assign_target_idents(&toks2, src2, site2), vec!["hits"]);
    }
}
