//! Workspace file discovery.
//!
//! The scanned set is deliberately explicit rather than "every `.rs`
//! file we can find":
//!
//! * the root crate's `src/` and every `crates/<name>/src/` tree;
//! * **excluding** `vendor/` (third-party stand-ins), `target/`,
//!   `crates/bench/` (benchmark harness: wall clocks are its job),
//!   any directory named `tests`, `benches`, `examples`, or `fixtures`,
//!   and non-Rust files.
//!
//! `src/bin/` files **are** collected — rules decide per-file what
//! applies to a binary target (see `FileContext`).
//!
//! Results are sorted so output order is deterministic — the linter
//! holds itself to the determinism rule it enforces.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const EXCLUDED_DIRS: &[&str] = &[
    "vendor", "target", "tests", "benches", "examples", "fixtures",
];

/// Crates (by `crates/<name>`) excluded wholesale.
const EXCLUDED_CRATES: &[&str] = &["bench"];

/// Collect every lintable source file under a workspace root, sorted.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_dir(&root_src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if EXCLUDED_CRATES.contains(&name) {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                walk_dir(&src, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if EXCLUDED_DIRS.contains(&name) {
                continue;
            }
            walk_dir(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Whether a workspace-relative path would be collected. Mirrors
/// [`collect_files`] for paths passed explicitly on the command line.
pub fn is_lintable(rel_path: &str) -> bool {
    let norm = rel_path.replace('\\', "/");
    if !norm.ends_with(".rs") {
        return false;
    }
    let parts: Vec<&str> = norm.split('/').collect();
    if parts.iter().any(|p| EXCLUDED_DIRS.contains(p)) {
        return false;
    }
    match parts.first() {
        Some(&"src") => true,
        Some(&"crates") => {
            parts.get(1).is_some_and(|c| !EXCLUDED_CRATES.contains(c))
                && parts.get(2) == Some(&"src")
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lintable_paths() {
        assert!(is_lintable("src/lib.rs"));
        assert!(is_lintable("crates/core/src/hopping.rs"));
        assert!(is_lintable("crates/sim/src/bin/exp.rs"));
        assert!(!is_lintable("vendor/rand/src/lib.rs"));
        assert!(!is_lintable("crates/bench/src/lib.rs"));
        assert!(!is_lintable("crates/lint/tests/fixtures/bad.rs"));
        assert!(!is_lintable("crates/sim/examples/dbg_web.rs"));
        assert!(!is_lintable("tests/determinism.rs"));
        assert!(!is_lintable("README.md"));
    }
}
