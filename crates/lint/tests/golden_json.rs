//! Byte-exact golden for the fixture corpus's `--json` report.
//!
//! Every on-disk fixture is linted under a pseudo engine-crate path and
//! the concatenated findings are rendered through [`report::to_json`];
//! the result must match `tests/goldens/fixtures.json` byte for byte.
//! This pins rule names, messages, line numbers, *and* the JSON shape
//! downstream tooling (the tier-1 baseline gate) diffs against. After a
//! deliberate rule or fixture change, regenerate with:
//!
//! ```text
//! cargo run -p cellfi-lint --example regen_fixture_golden \
//!     > crates/lint/tests/goldens/fixtures.json
//! ```

use cellfi_lint::{lint_source, report};
use std::path::Path;

#[test]
fn fixture_corpus_json_matches_golden_byte_for_byte() {
    let base = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut entries: Vec<_> = std::fs::read_dir(base.join("tests/fixtures"))
        .expect("fixtures directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    assert!(entries.len() >= 20, "fixture sweep found {}", entries.len());
    let mut findings = Vec::new();
    for p in &entries {
        let name = p
            .file_name()
            .and_then(|n| n.to_str())
            .expect("fixture names are UTF-8");
        let src = std::fs::read_to_string(p).expect("fixture is readable");
        findings.extend(lint_source(&format!("crates/core/src/{name}"), &src));
    }
    let got = format!("{}\n", report::to_json(&findings));
    let golden = std::fs::read_to_string(base.join("tests/goldens/fixtures.json"))
        .expect("golden exists — regenerate with the regen_fixture_golden example");
    assert!(
        got == golden,
        "fixture JSON diverged from tests/goldens/fixtures.json; if the \
         change is deliberate, regenerate via the regen_fixture_golden \
         example\n--- got ---\n{got}\n--- golden ---\n{golden}"
    );
    // The golden must exercise all four v2 families, or the corpus has
    // rotted out from under the rules it documents.
    for family in ["parallel", "slab", "hot", "cachegen"] {
        assert!(
            golden.contains(&format!("\"rule\":\"{family}\"")),
            "golden lost its `{family}` coverage"
        );
    }
}
