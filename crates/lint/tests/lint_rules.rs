//! The linter's own verification suite: inline must-flag / must-pass
//! snippets per rule, on-disk fixtures, the allow-comment escape hatch,
//! and the guarantee that `vendor/` (and test code generally) is never
//! scanned.

use cellfi_lint::report::Finding;
use cellfi_lint::{lint_source, walk};
use std::path::{Path, PathBuf};

/// Lint a snippet as if it lived at an engine-crate library path.
fn lint_core(src: &str) -> Vec<Finding> {
    lint_source("crates/core/src/snippet.rs", src)
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- rule D

#[test]
fn determinism_flags_hash_collections_in_engine_crates() {
    let f = lint_core("use std::collections::HashMap;\n");
    assert_eq!(rules(&f), ["determinism"], "{f:?}");
    let f = lint_core("fn f(s: std::collections::HashSet<u32>) {}\n");
    assert_eq!(rules(&f), ["determinism"], "{f:?}");
}

#[test]
fn determinism_accepts_btree_collections() {
    let f = lint_core("use std::collections::{BTreeMap, BTreeSet};\n");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn determinism_hash_rule_is_scoped_to_order_sensitive_crates() {
    // propagation is not an engine-iteration crate; the collection rule
    // does not apply there (the clock/entropy rule still does).
    let f = lint_source(
        "crates/propagation/src/snippet.rs",
        "use std::collections::HashMap;\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn determinism_flags_wall_clocks_and_entropy_everywhere_but_bins() {
    for src in [
        "fn t() { let _ = std::time::Instant::now(); }\n",
        "fn t() { let _ = std::time::SystemTime::now(); }\n",
        "fn t() { let _ = thread_rng(); }\n",
        "fn t() { let _ = rand::rngs::StdRng::from_entropy(); }\n",
    ] {
        let f = lint_source("crates/types/src/snippet.rs", src);
        assert_eq!(rules(&f), ["determinism"], "{src}: {f:?}");
        let f = lint_source("crates/sim/src/bin/exp.rs", src);
        assert!(f.is_empty(), "bins may read clocks: {src}: {f:?}");
    }
}

#[test]
fn determinism_accepts_simulation_time_instants() {
    // cellfi_types::time::Instant has no now(); constructing and
    // comparing sim-time instants must not be flagged.
    let f = lint_core("fn t(i: Instant) -> u64 { i.as_micros() }\n");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn determinism_locks_spectrum_retry_paths_to_the_sim_clock() {
    // In crates/spectrum the rule is stricter than ::now() calls: the
    // lease lifecycle's backoff must replay byte-identically from the
    // run seed, so wall-clock types, real sleeps, and ambient entropy
    // are out even when merely named.
    for src in [
        "use std::time::Duration;\n",
        "fn f(d: std::time::Duration) { std::thread::sleep(d); }\n",
        "fn jitter() -> f64 { rand::random() }\n",
    ] {
        let f = lint_source("crates/spectrum/src/lifecycle.rs", src);
        assert!(
            rules(&f).contains(&"determinism"),
            "{src}: expected a determinism finding, got {f:?}"
        );
    }
}

#[test]
fn spectrum_sim_clock_rule_is_scoped_and_accepts_sim_time() {
    // Elsewhere the import alone stays legal (the global clock rule
    // still catches ::now() calls).
    let f = lint_core("use std::time::Duration;\n");
    assert!(f.is_empty(), "{f:?}");
    // And spectrum's own sim-clock idiom is clean: sim Instants plus a
    // SeedSeq-seeded RNG are exactly what the rule demands.
    let f = lint_source(
        "crates/spectrum/src/lifecycle.rs",
        "use cellfi_types::time::{Duration, Instant};\n\
         fn next(now: Instant, rng: &mut StdRng) -> Instant {\n\
             now + Duration::from_micros(rng.gen_range(0..1000))\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn spectrum_sim_clock_rule_covers_the_fleet_module() {
    // fleet.rs multiplexes every lifecycle's retry/backoff machinery
    // over the sharded backends, so the spectrum-wide sim-clock-only
    // rule must bind it exactly as it binds lifecycle.rs.
    for src in [
        "use std::time::Duration;\n",
        "fn pace(d: std::time::Duration) { std::thread::sleep(d); }\n",
        "fn jitter() -> f64 { rand::random() }\n",
    ] {
        let f = lint_source("crates/spectrum/src/fleet.rs", src);
        assert!(
            rules(&f).contains(&"determinism"),
            "{src}: expected a determinism finding, got {f:?}"
        );
    }
    // The fleet's real idiom — sim instants, seed-derived jitter — is
    // clean under the same rule.
    let f = lint_source(
        "crates/spectrum/src/fleet.rs",
        "use cellfi_types::time::{Duration, Instant};\n\
         fn activate(start: Instant, jitter_us: u64) -> Instant {\n\
             start + Duration::from_micros(jitter_us)\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

// ---------------------------------------------------------------- rule P

#[test]
fn panic_flags_unwrap_expect_and_macros() {
    let f = lint_core("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    assert_eq!(rules(&f), ["panic"], "{f:?}");
    let f = lint_core("fn f(x: Option<u32>) -> u32 { x.expect(\"no\") }\n");
    assert_eq!(rules(&f), ["panic"], "short expect message: {f:?}");
    let f = lint_core("fn f() { panic!(\"boom\"); }\n");
    assert_eq!(rules(&f), ["panic"], "{f:?}");
    let f = lint_core("fn f() { todo!() }\n");
    assert_eq!(rules(&f), ["panic"], "{f:?}");
    let f = lint_core("fn f() { unimplemented!() }\n");
    assert_eq!(rules(&f), ["panic"], "{f:?}");
}

#[test]
fn panic_accepts_invariant_expects_and_non_panicking_unwraps() {
    for src in [
        "fn f(x: Option<u32>) -> u32 { x.expect(\"grid rows are always square\") }\n",
        "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
        "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n",
        "fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }\n",
    ] {
        let f = lint_core(src);
        assert!(f.is_empty(), "{src}: {f:?}");
    }
}

#[test]
fn panic_ignores_strings_comments_and_test_code() {
    let f = lint_core("fn f() -> &'static str { \"do not panic!(now)\" }\n");
    assert!(f.is_empty(), "string contents are opaque: {f:?}");
    let f = lint_core("// a comment may say .unwrap() freely\nfn f() {}\n");
    assert!(f.is_empty(), "comments are opaque: {f:?}");
    let f = lint_core(
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n",
    );
    assert!(f.is_empty(), "test modules are exempt: {f:?}");
    let f = lint_core("#[test]\nfn t() { None::<u32>.unwrap(); }\n");
    assert!(f.is_empty(), "#[test] items are exempt: {f:?}");
}

#[test]
fn panic_flags_outcome_phrased_expects() {
    // Long enough, but names the failure instead of the invariant.
    let f = lint_core("fn f(x: Option<u32>) -> u32 { x.expect(\"bad channel number\") }\n");
    assert_eq!(rules(&f), ["panic"], "{f:?}");
}

#[test]
fn panic_accepts_curated_invariant_phrasing() {
    for msg in [
        "grants are always in the plan",
        "non-empty by construction",
        "bootstrap channel comes straight from the grant list",
        "callers only pass attached UEs",
    ] {
        let src = format!("fn f(x: Option<u32>) -> u32 {{ x.expect(\"{msg}\") }}\n");
        let f = lint_core(&src);
        assert!(f.is_empty(), "{msg}: {f:?}");
    }
}

#[test]
fn panic_rule_skips_binaries() {
    let f = lint_source(
        "crates/sim/src/bin/exp.rs",
        "fn main() { std::fs::read(\"x\").unwrap(); }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

// ---------------------------------------------------------------- rule U

#[test]
fn units_flags_raw_db_to_linear_conversions() {
    for src in [
        "fn f(x: f64) -> f64 { 10f64.powf(x / 10.0) }\n",
        "fn f(x: f64) -> f64 { 10.0_f64.powf(x / 10.0) }\n",
        "fn f(x: f64) -> f64 { 10_f64.powf(x / 20.0) }\n",
    ] {
        let f = lint_core(src);
        assert_eq!(rules(&f), ["units"], "{src}: {f:?}");
    }
}

#[test]
fn units_accepts_non_decibel_powf_and_newtype_conversions() {
    for src in [
        "fn f(x: f64) -> f64 { 2f64.powf(x) }\n",
        "fn f(x: f64) -> f64 { x.powf(2.0) }\n",
        "fn f(d: Dbm) -> f64 { d.to_milliwatts().value() }\n",
        "fn f(g: Db) -> f64 { g.to_linear() }\n",
    ] {
        let f = lint_core(src);
        assert!(f.is_empty(), "{src}: {f:?}");
    }
}

#[test]
fn units_flags_scaling_of_decibel_bindings() {
    let f = lint_core("fn f(snr_db: f64) -> f64 { snr_db * 2.0 }\n");
    assert_eq!(rules(&f), ["units"], "{f:?}");
    let f = lint_core("fn f(p_dbm: f64) -> f64 { p_dbm / 2.0 }\n");
    assert_eq!(rules(&f), ["units"], "{f:?}");
}

#[test]
fn units_accepts_additive_decibel_arithmetic() {
    let f = lint_core("fn f(tx_dbm: f64, gain_db: f64) -> f64 { tx_dbm + gain_db }\n");
    assert!(f.is_empty(), "{f:?}");
    let f = lint_core("fn f(a_db: f64, b_db: f64) -> f64 { a_db - b_db }\n");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn units_taint_propagates_through_simple_let_chains() {
    // One hop: a binding assigned from dB arithmetic is itself dB.
    let f = lint_core("fn f(snr_db: f64) -> f64 { let margin = snr_db - 3.0; margin * 2.0 }\n");
    assert_eq!(rules(&f), ["units"], "{f:?}");
    // Two hops: the chain reaches a fixpoint.
    let f = lint_core("fn f(snr_db: f64) -> f64 { let a = snr_db + 1.0; let b = a; b / 2.0 }\n");
    assert_eq!(rules(&f), ["units"], "{f:?}");
}

#[test]
fn units_taint_stops_at_calls_and_conversions() {
    for src in [
        // A conversion call may change the unit: no taint.
        "fn f(snr_db: Db) -> f64 { let lin = snr_db.to_linear(); lin * 2.0 }\n",
        // Constructor syntax likewise.
        "fn f(x_db: f64) -> f64 { let v = mw(x_db); v * 2.0 }\n",
        // Additive use of the tainted binding stays fine.
        "fn f(a_db: f64, b_db: f64) -> f64 { let m = a_db - b_db; m + 1.0 }\n",
    ] {
        let f = lint_core(src);
        assert!(f.is_empty(), "{src}: {f:?}");
    }
}

#[test]
fn units_module_itself_is_exempt() {
    let f = lint_source(
        "crates/types/src/units.rs",
        "pub fn to_linear(db: f64) -> f64 { 10f64.powf(db / 10.0) }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

// ---------------------------------------------------------------- rule O

#[test]
fn obs_flags_allocation_inside_emit() {
    for src in [
        "fn f(t: &mut Tracer) { t.emit(now, Event::L { s: format!(\"x{}\", 1) }); }\n",
        "fn f(t: &mut Tracer) { t.emit(now, Event::L { s: name.to_string() }); }\n",
        "fn f(t: &mut Tracer) { t.emit(now, Event::L { s: name.to_owned() }); }\n",
        "fn f(t: &mut Tracer) { t.emit(now, Event::L { v: xs.clone() }); }\n",
        "fn f(t: &mut Tracer) { t.emit(now, Event::L { v: Vec::new() }); }\n",
        "fn f(t: &mut Tracer) { t.emit(now, Event::L { v: vec![1, 2] }); }\n",
    ] {
        let f = lint_core(src);
        assert_eq!(rules(&f), ["obs"], "{src}: {f:?}");
    }
}

#[test]
fn obs_accepts_numeric_payloads_and_unrelated_allocations() {
    for src in [
        "fn f(t: &mut Tracer) { t.emit(now, Event::Hop { cell: 1, from: 2, to: 3 }); }\n",
        // Allocation outside the emit argument list is not this rule's
        // business (panic/determinism rules own their own territory).
        "fn f(t: &mut Tracer) { let s = make(); t.emit(now, Event::Hop { cell: s.id }); }\n",
        // emit as a free function or a definition is not an event call.
        "fn emit(x: u32) -> u32 { x }\n",
    ] {
        let f = lint_core(src);
        assert!(f.is_empty(), "{src}: {f:?}");
    }
}

// ---------------------------------------------------------------- rule S

#[test]
fn structure_flags_oversized_engine_files() {
    let big = "// filler\n".repeat(cellfi_lint::rules::MAX_ENGINE_FILE_LINES + 1);
    let f = lint_source("crates/sim/src/engine/mac.rs", &big);
    assert_eq!(rules(&f), ["structure"], "{f:?}");
    assert!(f[0].message.contains("cap"), "message names the cap: {f:?}");
}

#[test]
fn structure_accepts_engine_files_at_the_cap() {
    let at_cap = "// filler\n".repeat(cellfi_lint::rules::MAX_ENGINE_FILE_LINES);
    let f = lint_source("crates/sim/src/engine/mac.rs", &at_cap);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn structure_rule_is_scoped_to_the_engine_directory() {
    let big = "// filler\n".repeat(cellfi_lint::rules::MAX_ENGINE_FILE_LINES + 100);
    for path in [
        "crates/sim/src/experiments/fig9.rs",
        "crates/core/src/manager.rs",
        "crates/sim/src/engine.rs", // a sibling *file*, not the directory
    ] {
        let f = lint_source(path, &big);
        assert!(f.is_empty(), "{path}: {f:?}");
    }
}

#[test]
fn structure_counts_test_code_and_ignores_allows() {
    // The cap covers the whole file — a test module at the bottom does
    // not buy headroom, and an allow directive cannot waive it.
    let mut src = "// cellfi-lint: allow(structure) — grandfathered\n".to_owned();
    src.push_str("#[cfg(test)]\nmod tests {\n");
    src.push_str(&"    // filler\n".repeat(cellfi_lint::rules::MAX_ENGINE_FILE_LINES));
    src.push_str("}\n");
    let f = lint_source("crates/sim/src/engine/tests.rs", &src);
    let r = rules(&f);
    assert!(r.contains(&"structure"), "cap still applies: {f:?}");
    assert!(
        r.contains(&"lint-allow"),
        "the ineffective allow is flagged as unused: {f:?}"
    );
}

// ------------------------------------------------------ rule v2: parallel

#[test]
fn parallel_flags_captured_mutation_in_fanout_closures() {
    let f = lint_core(
        "fn s(rows: &mut [f64], out: &mut Vec<f64>) {\n\
         \x20   for_each_chunk(rows, 4, 16, |_i, chunk| {\n\
         \x20       out.push(chunk[0]);\n\
         \x20   });\n\
         }\n",
    );
    assert_eq!(rules(&f), ["parallel"], "{f:?}");
}

#[test]
fn parallel_accepts_chunk_local_writes_and_locals() {
    let f = lint_core(
        "fn s(rows: &mut [f64]) {\n\
         \x20   for_each_chunk(rows, 4, 16, |_i, chunk| {\n\
         \x20       let mut acc = 0.0;\n\
         \x20       for v in chunk.iter_mut() {\n\
         \x20           *v += 1.0;\n\
         \x20           acc += *v;\n\
         \x20       }\n\
         \x20       chunk[0] = acc;\n\
         \x20   });\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn parallel_flags_sync_primitives_in_fanout_closures() {
    let f = lint_core(
        "fn s(rows: &mut [f64], n: &AtomicU64) {\n\
         \x20   for_each_row(rows, 8, |_i, row| {\n\
         \x20       n.fetch_add(1, Ordering::Relaxed);\n\
         \x20       *row = 0.0;\n\
         \x20   });\n\
         }\n",
    );
    assert!(rules(&f).contains(&"parallel"), "{f:?}");
}

#[test]
fn parallel_flags_captured_sink_emission_but_not_forked_sinks() {
    let f = lint_core(
        "fn s(rows: &mut [f64], t: &mut EventSink, now: Instant) {\n\
         \x20   for_each_row(rows, 8, |ue, row| {\n\
         \x20       *row = 0.0;\n\
         \x20       t.emit(now, Event::Hop { cell: ue as u32 });\n\
         \x20   });\n\
         }\n",
    );
    assert_eq!(rules(&f), ["parallel"], "{f:?}");
    // A sink living inside the per-entity row struct is local discipline.
    let f = lint_core(
        "fn s(rows: &mut [Row], now: Instant) {\n\
         \x20   for_each_row(rows, 8, |_ue, row| {\n\
         \x20       row.sink.emit(now, Event::Hop { cell: 0 });\n\
         \x20   });\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn parallel_requires_fork_and_absorb_in_the_same_fn() {
    let f = lint_core(
        "fn s(t: &mut EventSink) -> EventSink {\n\
         \x20   t.fork()\n\
         }\n",
    );
    assert_eq!(rules(&f), ["parallel"], "{f:?}");
    let f = lint_core(
        "fn s(t: &mut EventSink) {\n\
         \x20   let s = t.fork();\n\
         \x20   t.absorb(s);\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn parallel_rule_exempts_the_parallel_module_itself() {
    let f = lint_source(
        "crates/sim/src/parallel.rs",
        "fn s(rows: &mut [f64], out: &mut Vec<f64>) {\n\
         \x20   for_each_chunk(rows, 4, 16, |_i, chunk| { out.push(chunk[0]); });\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

// ---------------------------------------------------------- rule v2: slab

#[test]
fn slab_flags_stride_arithmetic_in_index_expressions() {
    let f = lint_core("fn f(d: &[f64], c: usize, i: usize, j: usize) -> f64 { d[i * c + j] }\n");
    assert_eq!(rules(&f), ["slab"], "multiply-add: {f:?}");
    let f = lint_core("fn f(d: &[f64], c: usize, i: usize) -> &[f64] { &d[i * c..(i + 1) * c] }\n");
    assert_eq!(rules(&f), ["slab"], "multiply-range: {f:?}");
}

#[test]
fn slab_accepts_plain_offsets_ranges_and_array_literals() {
    for src in [
        "fn f(d: &[f64], i: usize) -> f64 { d[i + 1] }\n",
        "fn f(d: &[f64], i: usize, j: usize) -> &[f64] { &d[i..j] }\n",
        "fn f(d: &[f64], i: usize) -> f64 { d[i] * 2.0 }\n",
        "fn f(i: usize) -> [usize; 2] { return [i * 2 + 1, i]; }\n",
        "fn f(s: &Slab3, u: usize, a: usize, k: usize) -> f64 { s.lane(u, a)[k] }\n",
    ] {
        let f = lint_core(src);
        assert!(f.is_empty(), "{src}: {f:?}");
    }
}

#[test]
fn slab_rule_exempts_the_slab_module_itself() {
    let f = lint_source(
        "crates/sim/src/slab.rs",
        "fn at(d: &[f64], c: usize, i: usize, j: usize) -> f64 { d[i * c + j] }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

// ----------------------------------------------------------- rule v2: hot

#[test]
fn hot_flags_allocation_in_marked_roots() {
    let f = lint_core(
        "// cellfi-lint: hot\n\
         fn refresh(xs: &[f64]) -> Vec<f64> {\n\
         \x20   xs.iter().map(|v| v * 2.0).collect()\n\
         }\n",
    );
    assert_eq!(rules(&f), ["hot"], "{f:?}");
    let f = lint_core(
        "// cellfi-lint: hot\n\
         fn label(id: u32) -> String {\n\
         \x20   format!(\"ue{}\", id)\n\
         }\n",
    );
    assert_eq!(rules(&f), ["hot"], "{f:?}");
}

#[test]
fn hot_propagates_through_direct_same_file_calls() {
    let f = lint_core(
        "// cellfi-lint: hot\n\
         fn tick(log: &mut Vec<f64>) {\n\
         \x20   record(log);\n\
         }\n\
         fn record(log: &mut Vec<f64>) {\n\
         \x20   log.push(0.0);\n\
         }\n",
    );
    assert_eq!(rules(&f), ["hot"], "{f:?}");
    assert!(f[0].message.contains("root `tick`"), "{f:?}");
}

#[test]
fn hot_does_not_propagate_through_foreign_type_constructors() {
    // `UeId::new(...)` must not mark this file's own `new` as hot.
    let f = lint_core(
        "// cellfi-lint: hot\n\
         fn tick(u: usize) -> UeId {\n\
         \x20   UeId::new(u as u32)\n\
         }\n\
         fn new(n: usize) -> Vec<f64> {\n\
         \x20   vec![0.0; n]\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn hot_exempts_scratch_buffer_refills_and_cold_fns() {
    let f = lint_core(
        "// cellfi-lint: hot\n\
         fn refresh(row_scratch: &mut Vec<f64>, xs: &[f64]) {\n\
         \x20   row_scratch.clear();\n\
         \x20   for &x in xs {\n\
         \x20       row_scratch.push(x);\n\
         \x20   }\n\
         \x20   row_scratch.extend_from_slice(xs);\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
    // Unmarked fns allocate freely.
    let f = lint_core("fn build(n: usize) -> Vec<f64> { vec![0.0; n] }\n");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn hot_flags_slab_clones() {
    let f = lint_core(
        "// cellfi-lint: hot\n\
         fn snap(g: &Slab3) -> Slab3 {\n\
         \x20   g.clone()\n\
         }\n",
    );
    assert_eq!(rules(&f), ["hot"], "{f:?}");
    // clone_from reuses the destination's capacity: distinct ident.
    let f = lint_core(
        "// cellfi-lint: hot\n\
         fn save(dst: &mut Vec<usize>, src: &Vec<usize>) {\n\
         \x20   dst.clone_from(src);\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

// ------------------------------------------------------ rule v2: cachegen

#[test]
fn cachegen_flags_gain_writes_without_a_generation_bump() {
    let f = lint_core(
        "impl Engine {\n\
         \x20   fn poke(&mut self, u: usize, a: usize) {\n\
         \x20       self.lin_mw.lane_mut(u, a).fill(0.0);\n\
         \x20   }\n\
         }\n",
    );
    assert_eq!(rules(&f), ["cachegen"], "{f:?}");
    let f = lint_core(
        "impl Engine {\n\
         \x20   fn set_mean(&mut self, u: usize, a: usize, v: f64) {\n\
         \x20       self.dl_mean_dbm.set(u, a, v);\n\
         \x20   }\n\
         }\n",
    );
    assert_eq!(rules(&f), ["cachegen"], "{f:?}");
}

#[test]
fn cachegen_flags_assoc_writes_without_a_generation_bump() {
    let f = lint_core(
        "impl Engine {\n\
         \x20   fn rehome(&mut self, ue: usize, ap: usize) {\n\
         \x20       self.scenario.assoc[ue] = ap;\n\
         \x20   }\n\
         }\n",
    );
    assert_eq!(rules(&f), ["cachegen"], "{f:?}");
}

#[test]
fn cachegen_accepts_writes_paired_with_their_bump() {
    let f = lint_core(
        "impl Engine {\n\
         \x20   fn rebuild(&mut self, u: usize, a: usize) {\n\
         \x20       self.gain_gen += 1;\n\
         \x20       self.lin_mw.lane_mut(u, a).fill(0.0);\n\
         \x20   }\n\
         \x20   fn rehome(&mut self, ue: usize, ap: usize) {\n\
         \x20       self.assoc_gen += 1;\n\
         \x20       self.scenario.assoc[ue] = ap;\n\
         \x20   }\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
    // Reads of gain state and of the association are unconstrained.
    let f = lint_core(
        "impl Engine {\n\
         \x20   fn read(&self, u: usize, a: usize, s: usize) -> f64 {\n\
         \x20       self.lin_mw.at(u, a, s) + (self.scenario.assoc[u] as f64)\n\
         \x20   }\n\
         }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

// ------------------------------------------------------- allow directives

#[test]
fn allow_comment_suppresses_on_the_same_line() {
    let f = lint_core(
        "use std::collections::HashMap; // cellfi-lint: allow(determinism) — lookups only\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn allow_comment_suppresses_on_the_next_line() {
    let f = lint_core(
        "// cellfi-lint: allow(panic) — fixture-proven infallible\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn allow_without_reason_does_not_suppress() {
    let f = lint_core("fn f(x: Option<u32>) -> u32 { x.unwrap() } // cellfi-lint: allow(panic)\n");
    let r = rules(&f);
    assert!(r.contains(&"panic"), "violation must survive: {f:?}");
    assert!(
        r.contains(&"lint-allow"),
        "and the bare allow is flagged: {f:?}"
    );
}

#[test]
fn allow_for_a_different_rule_does_not_suppress() {
    let f = lint_core(
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // cellfi-lint: allow(units) — wrong rule\n",
    );
    let r = rules(&f);
    assert!(r.contains(&"panic"), "{f:?}");
    assert!(
        r.contains(&"lint-allow"),
        "unused allow(units) is flagged: {f:?}"
    );
}

#[test]
fn unknown_rule_and_unused_allow_are_flagged() {
    let f = lint_core("fn f() {} // cellfi-lint: allow(sorcery) — hm\n");
    assert_eq!(rules(&f), ["lint-allow"], "{f:?}");
    let f = lint_core("fn f() {} // cellfi-lint: allow(panic) — nothing here panics\n");
    assert_eq!(rules(&f), ["lint-allow"], "{f:?}");
}

// ---------------------------------------------------------------- fixtures

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Every `must_flag_<rule>_*.rs` fixture produces at least one finding of
/// its named rule; every `must_pass_*.rs` fixture produces none.
#[test]
fn disk_fixtures_behave_as_named() {
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("fixture names are UTF-8")
            .to_owned();
        let src = std::fs::read_to_string(&path).expect("fixture is readable");
        // Fixtures are linted as engine-crate library code.
        let findings = lint_core(&src);
        if let Some(rest) = name.strip_prefix("must_flag_") {
            let rule = rest.split('_').next().expect("fixture name carries a rule");
            assert!(
                findings.iter().any(|f| f.rule == rule),
                "{name}: expected a `{rule}` finding, got {findings:?}"
            );
        } else if name.starts_with("must_pass_") {
            assert!(
                findings.is_empty(),
                "{name}: expected clean, got {findings:?}"
            );
        } else {
            panic!("fixture {name} must start with must_flag_ or must_pass_");
        }
        checked += 1;
    }
    assert!(checked >= 6, "fixture sweep found only {checked} files");
}

// ------------------------------------------------------------- exclusions

/// The workspace walker never descends into `vendor/`, `target/`, test
/// trees, benches, examples, or the bench crate.
#[test]
fn vendor_and_test_trees_are_never_scanned() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let files = walk::collect_files(&root).expect("workspace walk succeeds");
    assert!(!files.is_empty());
    for f in &files {
        let rel = f
            .strip_prefix(&root)
            .expect("collected files live under the root")
            .to_string_lossy()
            .replace('\\', "/");
        for banned in [
            "vendor/",
            "target/",
            "/tests/",
            "/benches/",
            "/examples/",
            "crates/bench/",
        ] {
            assert!(
                !rel.contains(banned),
                "{rel} must not be scanned (matched {banned})"
            );
        }
    }
    // Spot-check that real engine files are in the scanned set.
    let rels: Vec<String> = files
        .iter()
        .map(|f| {
            f.strip_prefix(&root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/")
        })
        .collect();
    for expected in [
        "crates/sim/src/engine/mac.rs",
        "crates/spectrum/src/selection.rs",
        "crates/types/src/units.rs",
        "src/lib.rs",
    ] {
        assert!(
            rels.iter().any(|r| r == expected),
            "{expected} missing from scan"
        );
    }
}

/// The shipped workspace itself stays lint-clean: every remaining
/// violation carries a reasoned allow, so the tier-1 gate holds.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let (findings, scanned) = cellfi_lint::lint_workspace(&root).expect("workspace lints");
    assert!(
        scanned > 50,
        "expected to scan the whole workspace, got {scanned}"
    );
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean: {findings:#?}"
    );
}
