//! Fixture: fleet renewal desynchronization drawing per-AP jitter from
//! ambient entropy instead of the run seed — replay would diverge.

pub fn renewal_jitter_us(spread_us: u64) -> u64 {
    let mut rng = thread_rng();
    rng.gen_range(0..spread_us)
}
