// Emitting through a captured sink inside a fan-out closure interleaves
// trace events in schedule order; workers must fork per-entity sinks
// and the caller absorbs them back in entity-index order.

fn scan(rows: &mut [f64], tracer: &mut EventSink, now: Instant) {
    for_each_row(rows, 8, |ue, row| {
        *row = 0.0;
        tracer.emit(now, Event::Hop { cell: ue as u32 });
    });
}
