// Allocation in a fn *reached* from a hot root through a direct
// same-file call: hotness propagates along the per-file call graph, so
// the helper's `push` into a non-scratch buffer is still a violation.

// cellfi-lint: hot
fn tick(log: &mut Vec<f64>, x: f64) {
    record(log, x);
}

fn record(log: &mut Vec<f64>, x: f64) {
    log.push(x);
}
