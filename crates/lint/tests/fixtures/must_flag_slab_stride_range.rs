// Raw multiply-range stride arithmetic inside an index expression: a
// hand-rolled row slice that silently desynchronizes if the slab's
// layout (stride, padding) ever changes.

fn row(data: &[f64], cols: usize, i: usize) -> &[f64] {
    &data[i * cols..(i + 1) * cols]
}
