// Forked per-entity sinks that are never absorbed: the events die with
// the workers (or merge in whatever order drops fall), so the trace is
// not schedule-independent.

fn scan(tracer: &mut EventSink, n: usize) -> Vec<EventSink> {
    let mut sinks = Vec::new();
    for _ in 0..n {
        sinks.push(tracer.fork());
    }
    sinks
}
