// The neighbor-indirection layer is still slab stride math: resolving
// a (ue, neighbor-slot) pair against the flat candidate table by hand
// re-derives IndexSlab's layout. Outside crates/sim/src/slab.rs the
// lookup must go through IndexSlab::at / row / position.

fn candidate(nbr: &[u32], max_neighbors: usize, ue: usize, slot: usize) -> u32 {
    nbr[ue * max_neighbors + slot]
}
