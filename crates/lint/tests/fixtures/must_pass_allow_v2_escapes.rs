// Each v2 rule family honours the reasoned allow escape hatch, and each
// allow below suppresses a real violation (an unused allow would itself
// be flagged by lint-allow hygiene).

fn flat(data: &[f64], cols: usize, i: usize, j: usize) -> f64 {
    // cellfi-lint: allow(slab) — fixture exercises the documented escape hatch
    data[i * cols + j]
}

fn scan(rows: &mut [f64], count: &mut usize) {
    for_each_chunk(rows, 4, 16, |_i, chunk| {
        chunk[0] = 1.0;
        // cellfi-lint: allow(parallel) — chunks are provably disjoint here
        *count += 1;
    });
}

// cellfi-lint: hot
fn tick(totals: &mut Vec<f64>) {
    // cellfi-lint: allow(hot) — warm-up growth, measured and bounded
    totals.push(0.0);
}

impl Engine {
    fn poke(&mut self, u: usize, a: usize) {
        // cellfi-lint: allow(cachegen) — the sole caller bumps the generation
        self.lin_mw.lane_mut(u, a).fill(0.0);
    }
}
