//! Rule U: decibel-ness propagates through simple `let` chains; scaling
//! the derived binding is the same log/linear mixup as scaling the
//! original.

pub fn margin_scaling(snr_db: f64, floor_db: f64) -> f64 {
    let margin = snr_db - floor_db;
    let headroom = margin;
    headroom / 2.0
}
