//! Fixture: wall-clock reads and OS entropy in library code.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn jitter() -> u64 {
    let _rng = thread_rng();
    0
}
