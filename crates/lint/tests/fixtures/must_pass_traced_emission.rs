//! Clean observability idiom: numeric payloads in `.emit(...)`, a
//! dB-derived binding used additively, and an invariant-phrased expect.

pub fn good_emit(tracer: &mut Tracer, now: Instant, snr_db: f64, cell: u32) {
    let margin = snr_db - 3.0;
    tracer.emit(now, Event::PrachHeard { cell, ue: 7, snr_db: margin + 1.0 });
}

pub fn good_expect(x: Option<u32>) -> u32 {
    x.expect("callers only pass attached UEs")
}
