// Allocation directly inside a hot-marked root: `collect` lands in a
// plain binding, not a reserved scratch buffer, so every steady-state
// subframe pays a fresh heap allocation.

// cellfi-lint: hot
fn refresh(values: &mut [f64]) -> f64 {
    let doubled: Vec<f64> = values.iter().map(|v| v * 2.0).collect();
    doubled.iter().sum()
}
