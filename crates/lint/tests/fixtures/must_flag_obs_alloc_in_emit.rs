//! Rule obs: event emission must not allocate in its argument list —
//! the disabled path has to cost exactly one branch.

pub fn bad_emit(tracer: &mut Tracer, now: Instant, name: &str) {
    tracer.emit(now, Event::Label { text: name.to_owned() });
}
