// Scheduling-dependent synchronization inside a fan-out closure: the
// atomic's observed order varies run to run, breaking byte-identical
// replay across CELLFI_THREADS settings.

fn scan(rows: &mut [f64], progress: &AtomicUsize) {
    for_each_row(rows, 8, |_i, row| {
        progress.fetch_add(1, Ordering::Relaxed);
        *row += 1.0;
    });
}
