// A slab gain write with no `gain_gen` bump in the same fn: the
// (gain_gen, set_id) cache keys never move, so the interference cache
// and CQI memo replay results computed for the old gains.

impl Engine {
    fn poke(&mut self, u: usize, a: usize) {
        self.lin_mw.lane_mut(u, a).fill(0.0);
    }
}
