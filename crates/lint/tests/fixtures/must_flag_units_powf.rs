//! Fixture: raw dB/linear mixing.
pub fn to_linear(snr_db: f64) -> f64 {
    10f64.powf(snr_db / 10.0)
}

pub fn half_power(level_dbm: f64) -> f64 {
    level_dbm / 2.0
}
