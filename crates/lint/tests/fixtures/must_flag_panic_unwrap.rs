//! Fixture: panic-hygiene violations.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    // Message too short to state an invariant.
    *xs.get(1).expect("bad")
}

pub fn third() -> u32 {
    panic!("boom");
}
