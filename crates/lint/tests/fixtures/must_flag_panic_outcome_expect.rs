//! Rule P: a long-enough `.expect()` message that merely names the
//! failure, without invariant phrasing, must still be flagged.

pub fn pick(x: Option<u32>) -> u32 {
    x.expect("bad channel number")
}
