//! Clean monitor idiom: registered checks compute plain numerics from
//! the fact sheet and return Option<f64> without allocating.

pub fn good_register(reg: &mut MonitorRegistry) {
    reg.register("cache_hit_floor", 0.5, |facts, thr| {
        let probes = facts.cache_hits + facts.cache_misses;
        if probes < 1024 {
            return None;
        }
        let rate = facts.cache_hits as f64 / probes as f64;
        if rate < thr {
            Some(rate)
        } else {
            None
        }
    });
}
