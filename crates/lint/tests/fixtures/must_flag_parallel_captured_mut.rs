// A fan-out worker closure mutating captured state: `totals` aliases
// across chunks, so the merged result depends on worker scheduling.

fn scan(rows: &mut [f64], totals: &mut Vec<f64>) {
    for_each_chunk(rows, 4, 16, |_i, chunk| {
        for v in chunk.iter_mut() {
            *v += 1.0;
        }
        totals.push(chunk[0]);
    });
}
