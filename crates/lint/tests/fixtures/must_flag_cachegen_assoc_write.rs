// An association-table rewrite with no `assoc_gen` bump in the same
// fn: the CQI memo keys on (gain_gen, assoc_gen, set ids), so a silent
// re-association replays scans for the old serving cell.

impl Engine {
    fn rehome(&mut self, ue: usize, ap: usize) {
        self.scenario.assoc[ue] = ap;
    }
}
