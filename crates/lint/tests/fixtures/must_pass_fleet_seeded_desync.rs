//! Clean fleet idiom: shard assignment and renewal desynchronization
//! are pure functions of the run seed — a SplitMix64 finalizer for the
//! AP→shard hash and per-AP jitter drawn from an indexed seed stream,
//! all on the simulation clock.

pub fn shard_of(ap: u64, assign_seed: u64, n_shards: u64) -> u64 {
    let mut x = ap ^ assign_seed;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)) % n_shards
}

pub fn activation(start: Instant, seeds: &SeedSeq, ap: u64, spread: Duration) -> Instant {
    let jitter = seeds.seed_indexed("renew-jitter", ap) % spread.as_micros().max(1);
    start + Duration::from_micros(jitter)
}
