// The reserved-scratch idiom the hot rule exists to enforce: refills of
// `*scratch*`-named buffers (and `extend_from_slice`, which reuses
// capacity) are the allocation-free steady state.

// cellfi-lint: hot
fn refresh(totals_scratch: &mut Vec<f64>, xs: &[f64]) {
    totals_scratch.clear();
    for &x in xs {
        totals_scratch.push(x * 2.0);
    }
}

// cellfi-lint: hot
fn replay(row_scratch: &mut Vec<f64>, saved: &[f64]) {
    row_scratch.clear();
    row_scratch.extend_from_slice(saved);
}
