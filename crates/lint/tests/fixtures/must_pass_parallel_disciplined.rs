// The disciplined fan-out shape: the worker closure writes only its own
// chunk, events go through forked per-entity sinks, and the caller
// absorbs them back in entity-index order in the same fn.

fn scan(rows: &mut [f64], tracer: &mut EventSink) {
    let mut sinks = Vec::new();
    for _ in 0..2 {
        sinks.push(tracer.fork());
    }
    for_each_chunk(rows, 4, 16, |_i, chunk| {
        for v in chunk.iter_mut() {
            *v *= 2.0;
        }
    });
    for sink in sinks {
        tracer.absorb(sink);
    }
}
