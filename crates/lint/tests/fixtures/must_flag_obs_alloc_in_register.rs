//! Rule obs: monitor check closures registered on the registry run on
//! every armed tick — their bodies must not allocate.

pub fn bad_register(reg: &mut MonitorRegistry) {
    reg.register("rlf_rate", 30.0, |facts, thr| {
        let label = format!("rlf at {}", facts.tick_us);
        if label.len() > thr as usize { Some(1.0) } else { None }
    });
}
