//! Fixture: every violation is waived by a reasoned allow directive.
use std::collections::HashMap; // cellfi-lint: allow(determinism) — keyed lookups only, never iterated

pub struct Cache {
    // cellfi-lint: allow(determinism) — keyed lookups only, never iterated
    inner: HashMap<u32, f64>,
}

impl Cache {
    pub fn get(&self, k: u32) -> f64 {
        // cellfi-lint: allow(panic) — fixture demonstrating the escape hatch
        *self.inner.get(&k).unwrap()
    }
}

pub fn voltage_ratio(gain_db: f64) -> f64 {
    // cellfi-lint: allow(units) — amplitude conversion uses 10^(dB/20), a
    // form the units newtypes deliberately do not offer
    10f64.powf(gain_db / 20.0)
}
