//! Fixture: idiomatic engine code that every rule accepts.
use std::collections::BTreeMap;

pub struct Registry {
    by_id: BTreeMap<u32, String>,
}

impl Registry {
    pub fn names(&self) -> Vec<&String> {
        self.by_id.values().collect()
    }

    pub fn first(&self) -> Option<&String> {
        self.by_id.values().next()
    }
}

pub fn combine_gains(a_db: f64, b_db: f64) -> f64 {
    // Adding decibel gains is legal log-domain arithmetic.
    a_db + b_db
}

pub fn amplitude(x: f64) -> f64 {
    // powf with a non-10 base is not a dB conversion.
    2f64.powf(x)
}

pub fn checked(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

pub fn invariant(xs: &[u32]) -> u32 {
    *xs.first().expect("caller guarantees a non-empty slice")
}

#[cfg(test)]
mod tests {
    // Test code may unwrap and use HashMap freely.
    use std::collections::HashMap;

    #[test]
    fn unwrap_is_fine_here() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(*m.get(&1).unwrap(), 2);
    }
}
