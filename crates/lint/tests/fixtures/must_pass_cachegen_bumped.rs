// Gain and association writes paired with their generation bumps in the
// same fn — the invariant the cachegen rule proves.

impl Engine {
    fn rebuild(&mut self, u: usize, a: usize) {
        self.gain_gen += 1;
        self.lin_mw.lane_mut(u, a).fill(0.0);
    }

    fn rehome(&mut self, ue: usize, ap: usize) {
        self.assoc_gen += 1;
        self.scenario.assoc[ue] = ap;
    }
}
