// Slab reads through the accessor API, plus the index shapes the slab
// rule must keep accepting: additive offsets and plain ranges carry no
// stride information.

fn read(s: &Slab3, ue: usize, ap: usize, sub: usize) -> f64 {
    s.at(ue, ap, sub) + s.lane(ue, ap)[sub]
}

fn window(data: &[f64], i: usize) -> f64 {
    data[i + 1] + data[i..i + 2][0]
}

fn doubled(data: &[f64], i: usize) -> f64 {
    // Multiplication *outside* the index is ordinary arithmetic.
    data[i] * 2.0
}

fn neighbor(nbr: &IndexSlab, counts: &[u32], ue: usize, ap: u32) -> Option<usize> {
    // Neighbor-slot lookups go through the IndexSlab accessors; no
    // stride arithmetic leaks out of the slab module.
    let count = counts[ue] as usize;
    let _ = nbr.at(ue, 0);
    nbr.position(ue, count, ap)
}
