// Raw multiply-add stride arithmetic inside an index expression:
// re-derives the slab layout by hand instead of going through the
// Slab2/Slab3 accessors.

fn at(data: &[f64], cols: usize, i: usize, j: usize) -> f64 {
    data[i * cols + j]
}
