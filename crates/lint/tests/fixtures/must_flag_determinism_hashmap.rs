//! Fixture: HashMap in order-sensitive engine code must be flagged.
use std::collections::HashMap;

pub struct Registry {
    by_id: HashMap<u32, String>,
}

impl Registry {
    pub fn names(&self) -> Vec<&String> {
        // Iteration order here is randomized per process — the exact bug
        // class that breaks byte-identical replay.
        self.by_id.values().collect()
    }
}
