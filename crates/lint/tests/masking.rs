//! Regression tests for the lexer's source masking: raw-string
//! prefixes (`r#"…"#`, `br#"…"#`, `cr"…"`), escaped-quote char
//! literals, and nested block comments must all mask to a same-length
//! text with the following code intact — a mis-scanned literal extent
//! desynchronizes every byte offset (and thus line number) after it.

use cellfi_lint::lexer::{mask_source, scan};

#[test]
fn nested_block_comments_mask_to_spaces() {
    let src = "let a = 1; /* x /* y */ z */ let b = 2;";
    let (masked, comments) = mask_source(src);
    assert_eq!(masked.len(), src.len());
    assert_eq!(
        masked,
        format!(
            "let a = 1; {} let b = 2;",
            " ".repeat("/* x /* y */ z */".len())
        )
    );
    assert_eq!(comments.len(), 1, "one nested comment, one extent");
    assert_eq!(comments[0].text, "/* x /* y */ z */");
}

#[test]
fn raw_string_body_masks_but_comment_lookalikes_outside_do_not() {
    let src = r###"let s = r#"a "b" // c"#; s2();"###;
    let (masked, comments) = mask_source(src);
    assert_eq!(masked.len(), src.len());
    assert_eq!(
        masked,
        format!(
            r###"let s = r#"{}"#; s2();"###,
            " ".repeat(r#"a "b" // c"#.len())
        )
    );
    assert!(
        comments.is_empty(),
        "the // inside the literal is not a comment"
    );
}

#[test]
fn byte_and_c_string_raw_prefixes_are_recognized() {
    // Before `br`/`cr` support, the `"` after the hash opened a *plain*
    // string whose scan ran to the next quote inside the body, leaving
    // the literal extent wrong and the trailing code half-masked.
    let src = r###"let b = br#"x " y"#; let keep = after();"###;
    let (masked, _) = mask_source(src);
    assert_eq!(masked.len(), src.len());
    assert_eq!(
        masked,
        format!(
            r###"let b = br#"{}"#; let keep = after();"###,
            " ".repeat(r#"x " y"#.len())
        )
    );

    let src = r#"let c = cr"q//q"; done();"#;
    let (masked, comments) = mask_source(src);
    assert_eq!(masked, format!(r#"let c = cr"{}"; done();"#, " ".repeat(4)));
    assert!(comments.is_empty());
}

#[test]
fn identifier_ending_in_r_is_not_a_raw_string_prefix() {
    // `configr` ends in `r` but the `r` is part of the identifier; the
    // next token must scan as an ordinary expression, not a raw string.
    let src = "let configr = 1; let s = \"a\"; tail();";
    let (masked, _) = mask_source(src);
    assert_eq!(masked, "let configr = 1; let s = \" \"; tail();");
}

#[test]
fn escaped_quote_char_literal_closes_at_final_quote() {
    // `'\''` previously closed at the *escaped* quote, leaving a stray
    // quote in the masked text that swallowed the rest of the line.
    let src = "let q = '\\''; let keep = 1; // note";
    let (masked, comments) = mask_source(src);
    assert_eq!(masked.len(), src.len());
    assert_eq!(masked, "let q = '  '; let keep = 1;        ");
    assert_eq!(comments.len(), 1);
    assert_eq!(comments[0].text, "// note");
}

#[test]
fn lifetimes_survive_masking_unchanged() {
    let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
    let (masked, _) = mask_source(src);
    assert_eq!(masked, src);
}

#[test]
fn hot_marker_targets_next_code_line_and_is_not_a_malformed_allow() {
    let src = "// cellfi-lint: hot\nfn fast() {}\n";
    let sf = scan(src);
    assert_eq!(sf.hot_markers, vec![2]);
    assert!(
        sf.allows.is_empty(),
        "hot is a marker, not an allow directive"
    );
}
