//! PAWS protocol messages (RFC 7545 subset).
//!
//! "We leverage this observation and build an ETSI-compliant TVWS
//! database client using the PAWS protocol" (§4.2). PAWS is JSON-RPC; we
//! model the message bodies the CellFi client actually exchanges:
//! `INIT_REQ/RESP`, `AVAIL_SPECTRUM_REQ/RESP` and `SPECTRUM_USE_NOTIFY`.
//! All types round-trip through `serde_json`, so the wire format is real
//! even though transport here is an in-process call.
//!
//! One CellFi-specific wrinkle from §4.2: "there is a single database
//! client that manages both the access point and all its mobile clients,
//! and all mobile clients have the same generic location parameters,
//! determined from the access point's location" — represented by
//! [`DeviceDescriptor::master_with_clients`].

use cellfi_types::geo::Point;
use cellfi_types::time::Instant;
use cellfi_types::ChannelId;
use serde::{Deserialize, Serialize};

/// Device type under ETSI EN 301 598.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceType {
    /// Fixed master device (the CellFi access point, GPS-located).
    FixedMaster,
    /// Slave device operating under a master's grant (CellFi clients).
    Slave,
}

/// Identifies a device to the database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDescriptor {
    /// Manufacturer serial number.
    pub serial: String,
    /// Regulatory device type.
    pub device_type: DeviceType,
    /// Number of slave clients this master answers for (CellFi: the AP
    /// queries once for itself and all its UEs).
    pub client_count: u32,
}

impl DeviceDescriptor {
    /// A CellFi access point answering for `clients` mobile devices.
    pub fn master_with_clients(serial: &str, clients: u32) -> DeviceDescriptor {
        DeviceDescriptor {
            serial: serial.to_owned(),
            device_type: DeviceType::FixedMaster,
            client_count: clients,
        }
    }
}

/// Geolocation with uncertainty, as PAWS requires. CellFi uses the AP's
/// GPS fix; clients inherit it with a generous uncertainty (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoLocation {
    /// Position in the simulation plane (stands in for lat/lon).
    pub x: f64,
    /// North coordinate.
    pub y: f64,
    /// Uncertainty radius in metres.
    pub uncertainty: f64,
}

impl GeoLocation {
    /// Location from a GPS fix at `p`.
    pub fn gps(p: Point) -> GeoLocation {
        GeoLocation {
            x: p.x,
            y: p.y,
            uncertainty: 10.0,
        }
    }

    /// The generic client location derived from the AP's fix: same point,
    /// uncertainty inflated to the cell radius.
    pub fn generic_client(ap: Point, cell_radius: f64) -> GeoLocation {
        GeoLocation {
            x: ap.x,
            y: ap.y,
            uncertainty: cell_radius,
        }
    }

    /// As a plain point.
    pub fn point(&self) -> Point {
        Point::new(self.x, self.y)
    }
}

/// `INIT_REQ`: first contact with the database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InitReq {
    /// Requesting device.
    pub device: DeviceDescriptor,
    /// Its location.
    pub location: GeoLocation,
}

/// `INIT_RESP`: database capabilities and cadence rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InitResp {
    /// How long (seconds) availability answers may be cached.
    pub max_polling_secs: u64,
    /// Ruleset identifier (e.g. "ETSI-EN-301-598-1.1.1").
    pub ruleset: String,
}

/// `AVAIL_SPECTRUM_REQ`: ask for usable channels at a location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailSpectrumReq {
    /// Requesting device (master, covering its clients).
    pub device: DeviceDescriptor,
    /// Where the spectrum would be used.
    pub location: GeoLocation,
    /// Request time (simulation clock, µs).
    pub request_time_us: u64,
}

/// One granted channel in an `AVAIL_SPECTRUM_RESP`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectrumGrant {
    /// The TV channel.
    pub channel: ChannelId,
    /// Maximum permitted EIRP, dBm.
    pub max_eirp_dbm: f64,
    /// Lease expiry (simulation clock, µs).
    pub expires_us: u64,
}

/// `AVAIL_SPECTRUM_RESP`: the grants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailSpectrumResp {
    /// Granted channels (possibly empty).
    pub grants: Vec<SpectrumGrant>,
    /// When the answer was computed (µs).
    pub response_time_us: u64,
}

/// `SPECTRUM_USE_NOTIFY`: device tells the database what it actually
/// transmits on (required by ETSI before operation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumUseNotify {
    /// Notifying device.
    pub device: DeviceDescriptor,
    /// Channel now in use.
    pub channel: ChannelId,
    /// EIRP in use, dBm.
    pub eirp_dbm: f64,
}

impl SpectrumGrant {
    /// Whether the grant is valid at `now`.
    pub fn valid_at(&self, now: Instant) -> bool {
        now.as_micros() < self.expires_us
    }
}

/// A PAWS wire-format failure.
///
/// Malformed JSON from a spectrum database is a *protocol* failure, not
/// a programming error: an AP must survive it (keep the old grants,
/// re-query later), so parsing returns this instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PawsError {
    /// Which PAWS message failed to parse or serialize.
    pub message_type: &'static str,
    /// The underlying JSON error, rendered.
    pub detail: String,
}

impl std::fmt::Display for PawsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PAWS {}: {}", self.message_type, self.detail)
    }
}

impl std::error::Error for PawsError {}

/// Implement the fallible wire codec for a PAWS message type.
macro_rules! paws_wire {
    ($ty:ident) => {
        impl $ty {
            /// Parse from the PAWS JSON wire form.
            pub fn from_json(json: &str) -> Result<$ty, PawsError> {
                serde_json::from_str(json).map_err(|e| PawsError {
                    message_type: stringify!($ty),
                    detail: e.to_string(),
                })
            }

            /// Serialize to the PAWS JSON wire form.
            pub fn to_json(&self) -> Result<String, PawsError> {
                serde_json::to_string(self).map_err(|e| PawsError {
                    message_type: stringify!($ty),
                    detail: e.to_string(),
                })
            }
        }
    };
}

paws_wire!(InitReq);
paws_wire!(InitResp);
paws_wire!(AvailSpectrumReq);
paws_wire!(AvailSpectrumResp);
paws_wire!(SpectrumUseNotify);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_masters_cover_clients() {
        let d = DeviceDescriptor::master_with_clients("cellfi-ap-001", 12);
        assert_eq!(d.device_type, DeviceType::FixedMaster);
        assert_eq!(d.client_count, 12);
    }

    #[test]
    fn generic_client_location_inherits_ap_point() {
        let ap = Point::new(100.0, 200.0);
        let loc = GeoLocation::generic_client(ap, 1_000.0);
        assert_eq!(loc.point(), ap);
        assert_eq!(loc.uncertainty, 1_000.0);
    }

    #[test]
    fn grant_validity_window() {
        let g = SpectrumGrant {
            channel: ChannelId::new(30),
            max_eirp_dbm: 36.0,
            expires_us: Instant::from_secs(3_600).as_micros(),
        };
        assert!(g.valid_at(Instant::from_secs(3_599)));
        assert!(!g.valid_at(Instant::from_secs(3_600)));
    }

    #[test]
    fn avail_spectrum_round_trips_json() {
        let req = AvailSpectrumReq {
            device: DeviceDescriptor::master_with_clients("ap", 3),
            location: GeoLocation::gps(Point::new(1.0, 2.0)),
            request_time_us: 55,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: AvailSpectrumReq = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn response_round_trips_json() {
        let resp = AvailSpectrumResp {
            grants: vec![SpectrumGrant {
                channel: ChannelId::new(38),
                max_eirp_dbm: 36.0,
                expires_us: 1_000_000,
            }],
            response_time_us: 10,
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: AvailSpectrumResp = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
        assert!(json.contains("38"), "channel id on the wire: {json}");
    }

    #[test]
    fn notify_round_trips_json() {
        let n = SpectrumUseNotify {
            device: DeviceDescriptor::master_with_clients("ap", 0),
            channel: ChannelId::new(40),
            eirp_dbm: 30.0,
        };
        let back: SpectrumUseNotify =
            serde_json::from_str(&serde_json::to_string(&n).unwrap()).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn wire_codec_round_trips() {
        let resp = AvailSpectrumResp {
            grants: vec![SpectrumGrant {
                channel: ChannelId::new(38),
                max_eirp_dbm: 36.0,
                expires_us: 1_000_000,
            }],
            response_time_us: 10,
        };
        let json = resp.to_json().expect("wire serialization is total");
        let back = AvailSpectrumResp::from_json(&json).expect("round trip");
        assert_eq!(back, resp);
    }

    #[test]
    fn malformed_wire_json_is_an_error_not_a_panic() {
        let err = AvailSpectrumResp::from_json("{not json").unwrap_err();
        assert_eq!(err.message_type, "AvailSpectrumResp");
        assert!(!err.detail.is_empty());
        // A truncated but syntactically plausible message also errors.
        assert!(AvailSpectrumResp::from_json("{}").is_err());
        assert!(InitResp::from_json("[1,2,3]").is_err());
    }

    #[test]
    fn init_messages_round_trip() {
        let req = InitReq {
            device: DeviceDescriptor::master_with_clients("ap", 1),
            location: GeoLocation::gps(Point::ORIGIN),
        };
        let back: InitReq = serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back, req);
        let resp = InitResp {
            max_polling_secs: 900,
            ruleset: "ETSI-EN-301-598-1.1.1".into(),
        };
        let back: InitResp = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
    }
}
