//! Primary spectrum users (incumbents).
//!
//! "TVWS spectrum is available to unlicensed devices (secondary users)
//! only in the absence of incumbents (TV and wireless microphones, also
//! called primary users)" (§2). The database's whole job is protecting
//! these. Two kinds matter:
//!
//! * **TV stations** — permanent, with a protected contour around the
//!   transmitter (simplified here to a protection radius; real rules use
//!   field-strength contours plus separation distances).
//! * **Wireless microphones** — scheduled: "the channel is allocated to
//!   the incumbents such as wireless microphones for special events",
//!   with "granularity ... in hours and days" (§6.2).

use cellfi_types::geo::Point;
use cellfi_types::time::Instant;
use cellfi_types::ChannelId;

/// A primary user registered in the database.
#[derive(Debug, Clone, PartialEq)]
pub enum Incumbent {
    /// A TV broadcast transmitter, always on.
    TvStation {
        /// Channel it broadcasts on.
        channel: ChannelId,
        /// Transmitter site.
        location: Point,
        /// Radius (m) within which secondaries must not use the channel.
        protected_radius: f64,
    },
    /// A licensed wireless microphone with reserved time windows.
    WirelessMic {
        /// Channel it reserves.
        channel: ChannelId,
        /// Venue location.
        location: Point,
        /// Protection radius (m) around the venue.
        protected_radius: f64,
        /// Reserved `[start, end)` windows.
        events: Vec<(Instant, Instant)>,
    },
}

impl Incumbent {
    /// The channel this incumbent protects.
    pub fn channel(&self) -> ChannelId {
        match self {
            Incumbent::TvStation { channel, .. } | Incumbent::WirelessMic { channel, .. } => {
                *channel
            }
        }
    }

    /// Whether this incumbent blocks secondary use of its channel at
    /// `location` and `time`.
    pub fn blocks(&self, location: Point, time: Instant) -> bool {
        match self {
            Incumbent::TvStation {
                location: site,
                protected_radius,
                ..
            } => site.distance(location).value() <= *protected_radius,
            Incumbent::WirelessMic {
                location: venue,
                protected_radius,
                events,
                ..
            } => site_active(events, time) && venue.distance(location).value() <= *protected_radius,
        }
    }

    /// For an incumbent currently blocking, when the blockage ends (mic
    /// event end), or `None` for permanent blockage (TV station) or a mic
    /// that is not currently active.
    pub fn blocked_until(&self, time: Instant) -> Option<Instant> {
        match self {
            Incumbent::TvStation { .. } => None,
            Incumbent::WirelessMic { events, .. } => events
                .iter()
                .find(|(s, e)| *s <= time && time < *e)
                .map(|&(_, e)| e),
        }
    }
}

fn site_active(events: &[(Instant, Instant)], time: Instant) -> bool {
    events.iter().any(|&(s, e)| s <= time && time < e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv() -> Incumbent {
        Incumbent::TvStation {
            channel: ChannelId::new(30),
            location: Point::new(0.0, 0.0),
            protected_radius: 10_000.0,
        }
    }

    fn mic() -> Incumbent {
        Incumbent::WirelessMic {
            channel: ChannelId::new(40),
            location: Point::new(500.0, 0.0),
            protected_radius: 1_000.0,
            events: vec![(Instant::from_secs(100), Instant::from_secs(200))],
        }
    }

    #[test]
    fn tv_station_blocks_inside_contour_forever() {
        let tv = tv();
        assert!(tv.blocks(Point::new(5_000.0, 0.0), Instant::ZERO));
        assert!(tv.blocks(Point::new(5_000.0, 0.0), Instant::from_secs(1_000_000)));
        assert_eq!(tv.blocked_until(Instant::ZERO), None);
    }

    #[test]
    fn tv_station_clear_outside_contour() {
        assert!(!tv().blocks(Point::new(20_000.0, 0.0), Instant::ZERO));
    }

    #[test]
    fn mic_blocks_only_during_event() {
        let m = mic();
        let venue_edge = Point::new(500.0, 900.0);
        assert!(!m.blocks(venue_edge, Instant::from_secs(99)));
        assert!(m.blocks(venue_edge, Instant::from_secs(100)));
        assert!(m.blocks(venue_edge, Instant::from_secs(199)));
        assert!(
            !m.blocks(venue_edge, Instant::from_secs(200)),
            "end is exclusive"
        );
    }

    #[test]
    fn mic_event_distance_check() {
        let m = mic();
        assert!(!m.blocks(Point::new(2_000.0, 0.0), Instant::from_secs(150)));
    }

    #[test]
    fn mic_blocked_until_reports_event_end() {
        let m = mic();
        assert_eq!(
            m.blocked_until(Instant::from_secs(150)),
            Some(Instant::from_secs(200))
        );
        assert_eq!(m.blocked_until(Instant::from_secs(50)), None);
    }

    #[test]
    fn channel_accessor() {
        assert_eq!(tv().channel(), ChannelId::new(30));
        assert_eq!(mic().channel(), ChannelId::new(40));
    }

    #[test]
    fn boundary_is_inclusive() {
        let tv = tv();
        assert!(tv.blocks(Point::new(10_000.0, 0.0), Instant::ZERO));
        assert!(!tv.blocks(Point::new(10_000.1, 0.0), Instant::ZERO));
    }
}
