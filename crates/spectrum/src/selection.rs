//! CellFi's channel-selection component.
//!
//! Given the database's grants, the component "uses standard LTE
//! mechanisms such as network listen to find an idle channel from the
//! ones offered by the database, if such exists. If not, CellFi tries to
//! find a channel that is used by other CellFi cells (rather than other
//! non-LTE wireless technologies), as its intra-channel interference
//! mechanism allows it to gracefully share the channel between other
//! CellFi nodes" (§4.2).
//!
//! Preference order, within each class lowest observed energy first:
//! 1. idle channels;
//! 2. channels occupied by other CellFi (LTE) cells;
//! 3. channels occupied by foreign technologies — last resort only.
//!
//! The paper also has the AP "quer\[y\] for available spectrum for downlink
//! and uplink independently, and then select the best TV channel that is
//! available for both": [`ChannelSelector::choose`] takes both grant
//! lists and intersects them.

use crate::paws::SpectrumGrant;
use crate::plan::ChannelPlan;
use cellfi_types::time::Instant;
use cellfi_types::units::{Dbm, Hertz};
use cellfi_types::ChannelId;
use std::collections::BTreeMap;

/// What network-listen heard on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OccupantKind {
    /// No secondary user detected.
    Idle,
    /// Another CellFi/LTE cell detected (PSS/SSS found).
    CellFi,
    /// Energy present but no LTE sync signals: foreign technology
    /// (e.g. 802.11af).
    Foreign,
}

/// One network-listen measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ListenObservation {
    /// Channel observed.
    pub channel: ChannelId,
    /// Median received energy over the listen window.
    pub energy: Dbm,
    /// Classified occupant.
    pub occupant: OccupantKind,
}

/// The selected channel, ready to hand to the LTE stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelChoice {
    /// The TV channel.
    pub channel: ChannelId,
    /// Its centre frequency (the LTE stack derives the EARFCN from this).
    pub centre: Hertz,
    /// Granted maximum EIRP.
    pub max_eirp_dbm: f64,
    /// Grant expiry.
    pub expires: Instant,
    /// What was occupying the channel when chosen.
    pub occupant: OccupantKind,
}

/// The channel-selection component of the CellFi access point.
#[derive(Debug, Clone, Copy)]
pub struct ChannelSelector {
    plan: ChannelPlan,
}

impl ChannelSelector {
    /// Selector over a channel plan.
    pub fn new(plan: ChannelPlan) -> ChannelSelector {
        ChannelSelector { plan }
    }

    /// Choose the best channel granted for **both** directions.
    ///
    /// `downlink`/`uplink` are the database's grant lists from the two
    /// independent queries; `listen` is the network-listen survey. A
    /// channel missing from `listen` is assumed idle at the noise floor.
    pub fn choose(
        &self,
        downlink: &[SpectrumGrant],
        uplink: &[SpectrumGrant],
        listen: &[ListenObservation],
        now: Instant,
    ) -> Option<ChannelChoice> {
        let ul: BTreeMap<ChannelId, &SpectrumGrant> =
            uplink.iter().map(|g| (g.channel, g)).collect();
        let obs: BTreeMap<ChannelId, &ListenObservation> =
            listen.iter().map(|o| (o.channel, o)).collect();

        let mut candidates: Vec<ChannelChoice> = downlink
            .iter()
            .filter(|g| g.valid_at(now))
            .filter_map(|g| {
                let ul_grant = ul.get(&g.channel)?;
                if !ul_grant.valid_at(now) {
                    return None;
                }
                let ch = self.plan.channel(g.channel.0)?;
                let occupant = obs
                    .get(&g.channel)
                    .map(|o| o.occupant)
                    .unwrap_or(OccupantKind::Idle);
                Some(ChannelChoice {
                    channel: g.channel,
                    centre: ch.centre,
                    max_eirp_dbm: g.max_eirp_dbm.min(ul_grant.max_eirp_dbm),
                    expires: Instant::from_micros(g.expires_us.min(ul_grant.expires_us)),
                    occupant,
                })
            })
            .collect();

        candidates.sort_by(|a, b| {
            let class = |c: &ChannelChoice| match c.occupant {
                OccupantKind::Idle => 0u8,
                OccupantKind::CellFi => 1,
                OccupantKind::Foreign => 2,
            };
            let energy = |c: &ChannelChoice| {
                obs.get(&c.channel)
                    .map(|o| o.energy)
                    .unwrap_or(Dbm::FLOOR)
                    .value()
            };
            class(a)
                .cmp(&class(b))
                .then(energy(a).total_cmp(&energy(b)))
                .then(a.channel.cmp(&b.channel))
        });
        candidates.into_iter().next()
    }
}

/// An aggregated selection: a run of contiguous TV channels wide enough
/// for a larger LTE carrier (§7 "Channel aggregation and power
/// optimization", left as future work in the paper and implemented here).
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateChoice {
    /// The contiguous channels, ascending.
    pub channels: Vec<ChannelId>,
    /// Centre frequency of the aggregate block.
    pub centre: Hertz,
    /// Total width of the block.
    pub width: Hertz,
    /// The binding (minimum) EIRP cap across the block.
    pub max_eirp_dbm: f64,
    /// The earliest expiry across the block.
    pub expires: Instant,
}

impl ChannelSelector {
    /// Find the best run of `n_channels` contiguous TV channels granted
    /// in **both** directions — enough spectrum for a wider LTE carrier
    /// (e.g. 2 × 6 MHz US channels fit a 10 MHz carrier). Among eligible
    /// runs, prefers the one whose worst (highest-energy, most-occupied)
    /// member is best, i.e. maximize the minimum quality.
    pub fn choose_aggregate(
        &self,
        downlink: &[SpectrumGrant],
        uplink: &[SpectrumGrant],
        listen: &[ListenObservation],
        n_channels: u32,
        now: Instant,
    ) -> Option<AggregateChoice> {
        assert!(n_channels >= 1);
        let ul: BTreeMap<ChannelId, &SpectrumGrant> =
            uplink.iter().map(|g| (g.channel, g)).collect();
        let obs: BTreeMap<ChannelId, &ListenObservation> =
            listen.iter().map(|o| (o.channel, o)).collect();
        // Channels granted in both directions, with their grants.
        let mut eligible: BTreeMap<u32, (&SpectrumGrant, &SpectrumGrant)> = BTreeMap::new();
        for g in downlink.iter().filter(|g| g.valid_at(now)) {
            if let Some(u) = ul.get(&g.channel) {
                if u.valid_at(now) && self.plan.channel(g.channel.0).is_some() {
                    eligible.insert(g.channel.0, (g, u));
                }
            }
        }
        // Score of a single channel: lower is better (class, then energy).
        let score = |n: u32| -> (u8, f64) {
            match obs.get(&ChannelId::new(n)) {
                Some(o) => {
                    let class = match o.occupant {
                        OccupantKind::Idle => 0u8,
                        OccupantKind::CellFi => 1,
                        OccupantKind::Foreign => 2,
                    };
                    (class, o.energy.value())
                }
                None => (0, Dbm::FLOOR.value()),
            }
        };
        // Scan all runs of length n_channels; maximize the minimum.
        // (class, energy) scores are totally ordered via total_cmp, so no
        // NaN energy can panic the selector — it just sorts last.
        let cmp_score = |a: &(u8, f64), b: &(u8, f64)| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1));
        let nums: Vec<u32> = eligible.keys().copied().collect();
        let mut best: Option<(Vec<u32>, (u8, f64))> = None;
        for w in nums.windows(n_channels as usize) {
            let (first, last) = (w[0], w[w.len() - 1]);
            if last - first != n_channels - 1 {
                continue; // not contiguous
            }
            let worst = w
                .iter()
                .map(|&n| score(n))
                .max_by(cmp_score)
                .expect("windows() slices are non-empty");
            if best
                .as_ref()
                .is_none_or(|(_, b)| cmp_score(&worst, b) == std::cmp::Ordering::Less)
            {
                best = Some((w.to_vec(), worst));
            }
        }
        let (run, _) = best?;
        let chans: Vec<_> = run
            .iter()
            .map(|&n| self.plan.channel(n).expect("eligible implies in plan"))
            .collect();
        let first = chans.first().expect("runs are non-empty");
        let last = chans.last().expect("runs are non-empty");
        let lo_edge = first.centre.value() - first.width.value() / 2.0;
        let hi_edge = last.centre.value() + last.width.value() / 2.0;
        let mut max_eirp = f64::INFINITY;
        let mut expires = u64::MAX;
        for &n in &run {
            let (d, u) = eligible[&n];
            max_eirp = max_eirp.min(d.max_eirp_dbm.min(u.max_eirp_dbm));
            expires = expires.min(d.expires_us.min(u.expires_us));
        }
        Some(AggregateChoice {
            channels: run.into_iter().map(ChannelId::new).collect(),
            centre: Hertz((lo_edge + hi_edge) / 2.0),
            width: Hertz(hi_edge - lo_edge),
            max_eirp_dbm: max_eirp,
            expires: Instant::from_micros(expires),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(ch: u32) -> SpectrumGrant {
        SpectrumGrant {
            channel: ChannelId::new(ch),
            max_eirp_dbm: 36.0,
            expires_us: Instant::from_secs(3600).as_micros(),
        }
    }

    fn obs(ch: u32, energy: f64, occupant: OccupantKind) -> ListenObservation {
        ListenObservation {
            channel: ChannelId::new(ch),
            energy: Dbm(energy),
            occupant,
        }
    }

    fn sel() -> ChannelSelector {
        ChannelSelector::new(ChannelPlan::Eu)
    }

    #[test]
    fn prefers_idle_over_occupied() {
        let dl = [grant(30), grant(31)];
        let ul = [grant(30), grant(31)];
        let listen = [
            obs(30, -60.0, OccupantKind::CellFi),
            obs(31, -95.0, OccupantKind::Idle),
        ];
        let c = sel().choose(&dl, &ul, &listen, Instant::ZERO).unwrap();
        assert_eq!(c.channel, ChannelId::new(31));
        assert_eq!(c.occupant, OccupantKind::Idle);
    }

    #[test]
    fn prefers_cellfi_over_foreign_when_no_idle() {
        // §4.2: share with other CellFi cells rather than 802.11af.
        let dl = [grant(30), grant(31)];
        let ul = [grant(30), grant(31)];
        let listen = [
            obs(30, -70.0, OccupantKind::Foreign),
            obs(31, -60.0, OccupantKind::CellFi), // stronger, still preferred
        ];
        let c = sel().choose(&dl, &ul, &listen, Instant::ZERO).unwrap();
        assert_eq!(c.channel, ChannelId::new(31));
    }

    #[test]
    fn lowest_energy_wins_within_class() {
        let dl = [grant(30), grant(31), grant(32)];
        let ul = [grant(30), grant(31), grant(32)];
        let listen = [
            obs(30, -80.0, OccupantKind::CellFi),
            obs(31, -90.0, OccupantKind::CellFi),
            obs(32, -70.0, OccupantKind::CellFi),
        ];
        let c = sel().choose(&dl, &ul, &listen, Instant::ZERO).unwrap();
        assert_eq!(c.channel, ChannelId::new(31));
    }

    #[test]
    fn requires_grant_in_both_directions() {
        let dl = [grant(30), grant(31)];
        let ul = [grant(31)];
        let c = sel().choose(&dl, &ul, &[], Instant::ZERO).unwrap();
        assert_eq!(c.channel, ChannelId::new(31));
    }

    #[test]
    fn unlistened_channel_assumed_idle() {
        let dl = [grant(30), grant(31)];
        let ul = [grant(30), grant(31)];
        let listen = [obs(30, -60.0, OccupantKind::CellFi)];
        let c = sel().choose(&dl, &ul, &listen, Instant::ZERO).unwrap();
        assert_eq!(c.channel, ChannelId::new(31));
    }

    #[test]
    fn no_grants_no_choice() {
        assert!(sel().choose(&[], &[], &[], Instant::ZERO).is_none());
        let dl = [grant(30)];
        assert!(sel().choose(&dl, &[], &[], Instant::ZERO).is_none());
    }

    #[test]
    fn expired_grants_ignored() {
        let mut g = grant(30);
        g.expires_us = 10;
        let c = sel().choose(&[g], &[g], &[], Instant::from_secs(1));
        assert!(c.is_none());
    }

    #[test]
    fn choice_carries_centre_frequency_and_caps() {
        let mut ul_grant = grant(38);
        ul_grant.max_eirp_dbm = 30.0; // tighter uplink cap wins
        let c = sel()
            .choose(&[grant(38)], &[ul_grant], &[], Instant::ZERO)
            .unwrap();
        assert!((c.centre.mhz() - 610.0).abs() < 1e-9);
        assert!((c.max_eirp_dbm - 30.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_finds_contiguous_run() {
        // Grants for 30,31,33,34,35: the only 3-run is 33-35.
        let chans = [30u32, 31, 33, 34, 35];
        let dl: Vec<_> = chans.iter().map(|&c| grant(c)).collect();
        let a = sel()
            .choose_aggregate(&dl, &dl, &[], 3, Instant::ZERO)
            .unwrap();
        assert_eq!(
            a.channels,
            vec![ChannelId::new(33), ChannelId::new(34), ChannelId::new(35)]
        );
        // EU channels are 8 MHz: 3 contiguous = 24 MHz centred on ch34.
        assert!((a.width.mhz() - 24.0).abs() < 1e-9);
        let ch34_centre = ChannelPlan::Eu.channel(34).unwrap().centre;
        assert!((a.centre.value() - ch34_centre.value()).abs() < 1e-6);
    }

    #[test]
    fn aggregate_prefers_cleanest_run() {
        let chans = [30u32, 31, 32, 40, 41, 42];
        let dl: Vec<_> = chans.iter().map(|&c| grant(c)).collect();
        // 30-32 contains a foreign occupant; 40-42 is clean.
        let listen = [obs(31, -60.0, OccupantKind::Foreign)];
        let a = sel()
            .choose_aggregate(&dl, &dl, &listen, 3, Instant::ZERO)
            .unwrap();
        assert_eq!(a.channels[0], ChannelId::new(40));
    }

    #[test]
    fn aggregate_none_when_no_run_exists() {
        let chans = [30u32, 32, 34, 36];
        let dl: Vec<_> = chans.iter().map(|&c| grant(c)).collect();
        assert!(sel()
            .choose_aggregate(&dl, &dl, &[], 2, Instant::ZERO)
            .is_none());
    }

    #[test]
    fn aggregate_carries_binding_caps() {
        let mut dl = vec![grant(30), grant(31)];
        dl[1].max_eirp_dbm = 30.0;
        let mut ul = dl.clone();
        ul[0].expires_us = 1_000;
        let a = sel()
            .choose_aggregate(&dl, &ul, &[], 2, Instant::ZERO)
            .unwrap();
        assert!((a.max_eirp_dbm - 30.0).abs() < 1e-9);
        assert_eq!(a.expires, Instant::from_micros(1_000));
    }

    #[test]
    fn aggregate_of_one_matches_eligibility() {
        let dl = [grant(38)];
        let a = sel()
            .choose_aggregate(&dl, &dl, &[], 1, Instant::ZERO)
            .unwrap();
        assert_eq!(a.channels, vec![ChannelId::new(38)]);
        assert!((a.width.mhz() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn foreign_is_last_resort_but_still_usable() {
        let dl = [grant(30)];
        let ul = [grant(30)];
        let listen = [obs(30, -55.0, OccupantKind::Foreign)];
        let c = sel().choose(&dl, &ul, &listen, Instant::ZERO).unwrap();
        assert_eq!(c.occupant, OccupantKind::Foreign);
    }
}
